#!/usr/bin/env python3
"""Delayed failures: data that survives the fault but dies later.

The paper observes that power faults corrupt data "in a period of time
(which cannot be determined clearly) after completion of the request" (§I).
One mechanism behind the fuzziness: pages programmed inside the PSU
discharge window are *marginal* — they decode today, but their threshold
margins are thin, so retention leakage pushes them past the ECC budget long
after the verification pass declared them healthy.

This example runs one fault against a busy drive, verifies (everything that
decodes now passes), then simulates weeks of retention and re-verifies: the
marginal pages surface as new data failures.  A drive with read-retry
firmware (LDPC preset) recovers some of them.

Run:
    python examples/delayed_failure_retention.py
"""

from repro.analysis import ascii_table
from repro.core.analyzer import Analyzer
from repro.host import HostSystem
from repro.rand import RandomStreams
from repro.ssd import models
from repro.units import GIB
from repro.workload import IOGenerator, WorkloadSpec


def run_drive(config, seed):
    host = HostSystem(config=config, seed=seed)
    host.boot()
    analyzer = Analyzer(host)
    generator = IOGenerator(
        host, WorkloadSpec(wss_bytes=8 * GIB, outstanding=16), RandomStreams(seed)
    )
    generator.start()
    host.run_for_ms(900)
    host.cut_power()  # flusher drains onto the sagging rail -> marginal pages
    host.wait_until_dead()
    generator.stop()
    host.run_for_ms(1000)
    host.restore_power()
    host.wait_until_ready()

    writes, _, failed = generator.drain_ledgers()
    inflight = list(generator.packets.values())
    generator.packets.clear()
    immediate = analyzer.verify_cycle(0, writes, list(failed) + inflight)

    weak_pages = sum(
        1 for rec in host.ssd.chip.pages.values() if rec.quality < 1.0
    )
    # Months on the shelf.
    newly_bad = host.ssd.chip.age_retention(hours=2000.0)
    aged = analyzer.verify_cycle(1, writes, [])
    return {
        "drive": config.name,
        "writes verified": len(writes),
        "immediate failures": len(immediate.records),
        "marginal pages": weak_pages,
        "pages lost to retention": newly_bad,
        "failures after retention": len(aged.records),
        "read retries used": host.ssd.chip.read_retries,
    }


def main() -> None:
    rows = []
    for config, seed in ((models.ssd_a(), 201), (models.ssd_b(), 202)):
        print(f"running {config.name} ...")
        rows.append(run_drive(config, seed))
    headers = list(rows[0].keys())
    print()
    print(
        ascii_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title="one fault, verify now, then 2000 h of retention, verify again",
        )
    )
    print()
    print(
        "Marginal (discharge-window) pages pass the immediate check but\n"
        "their thin threshold margins leak away: the second verification\n"
        "finds failures the first one could not — the paper's 'cannot be\n"
        "determined clearly' window.  The LDPC drive's read-retry path\n"
        "(Read_Retry_Invocations) claws some pages back."
    )


if __name__ == "__main__":
    main()
