#!/usr/bin/env python3
"""Failure forensics: follow one power fault through the whole stack.

Injects a single fault while a write burst is in flight and then walks the
evidence the way the paper's Analyzer does — blktrace events, btt per-IO
records, checksum comparisons — plus the simulator-only ground truth
(cache drop, torn programs, stranded map updates) that a hardware testbed
can only infer.

Run:
    python examples/failure_forensics.py
"""

from repro.core.analyzer import Analyzer, FailureKind
from repro.host import HostSystem
from repro.ssd.device import SsdConfig
from repro.trace.blkparse import format_event
from repro.units import GIB, MSEC
from repro.workload.packet import DataPacket


def main() -> None:
    host = HostSystem(config=SsdConfig(capacity_bytes=4 * GIB), seed=77)
    analyzer = Analyzer(host)
    host.boot()

    # A burst of small writes: acknowledged fast, durable slowly.
    packets = []
    for index in range(24):
        packet = DataPacket(
            packet_id=index + 1,
            address_lpn=index * 64,
            page_count=4,
            is_write=True,
            queue_time=host.kernel.now,
        )
        analyzer.snapshot_initial_checksums(packet)

        def stamp(request, packet=packet):
            packet.complete_time = request.complete_time

        host.write(packet.address_lpn, packet.data_checksums, on_done=stamp)
        packets.append(packet)
    host.run_for_ms(30)

    acked = [p for p in packets if p.acked]
    print(f"ACKed before the fault : {len(acked)}/{len(packets)} requests")
    print(f"dirty pages in DRAM    : {host.ssd.cache.dirty_count}")
    print(f"volatile map updates   : {host.ssd.ftl.journal.pending_count}")

    print("\n--- injecting the fault (Off command via Arduino/ATX) ---")
    host.cut_power()
    host.wait_until_dead()
    damage = host.ssd.last_damage
    print(f"commands errored at detach      : {damage.commands_errored}")
    print(f"dirty pages lost at brownout    : {damage.dirty_pages_lost}")
    print(f"in-flight programs torn         : {damage.inflight_pages_torn}")
    print(f"paired-page collateral          : {damage.collateral_pages_corrupted}")
    print(f"stranded map updates            : {damage.stranded_map_updates}")

    host.run_for_ms(1000)
    host.restore_power()
    host.wait_until_ready()
    recovery = host.ssd.last_recovery
    print("\n--- power restored, FTL recovery ---")
    print(f"stranded updates resolved : {recovery.stranded_updates}")
    print(f"recovered by OOB scan     : {recovery.recovered_updates}")
    print(f"lost (rolled back)        : {recovery.lost_updates}")

    print("\n--- blktrace evidence (first six events) ---")
    for event in list(host.tracer.events())[:6]:
        print(" ", format_event(event))
    summary = host.btt.summary(host.kernel.now)
    print(f"\nbtt summary: {summary}")

    print("\n--- Analyzer verdicts (checksum comparison, §III-B) ---")
    outcome = analyzer.verify_cycle(0, acked, [p for p in packets if not p.acked])
    for kind in FailureKind:
        print(f"  {kind.value:18s}: {outcome.count(kind)}")
    for record in outcome.records[:8]:
        print(
            f"    packet #{record.packet_id} at LPN {record.lpn}: {record.kind.value}"
            f" (expected {record.expected_token}, observed {record.observed_token})"
        )


if __name__ == "__main__":
    main()
