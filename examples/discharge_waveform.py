#!/usr/bin/env python3
"""Reproduce the paper's Fig. 4: the PSU discharge waveform.

Captures the simulated 5 V rail with an oscilloscope-style probe during a
power cut, unloaded (Fig. 4a) and with one SSD attached (Fig. 4b), and
renders both waveforms as ASCII plots with the paper's three anchors marked:

- unloaded full discharge ~1400 ms,
- loaded full discharge ~900 ms,
- host-detach crossing (4.5 V) at ~40 ms under load.

Run:
    python examples/discharge_waveform.py
"""

from repro.core.experiment import run_discharge_capture


def plot(waveform, title, width=64):
    print(f"\n{title}")
    print("-" * len(title))
    step = max(1, len(waveform) // 24)
    for t_ms, volts in waveform[::step]:
        bar = "#" * round(width * volts / 5.0)
        print(f"{t_ms:7.0f} ms | {bar} {volts:.2f} V")


def first_below(waveform, volts):
    for t_ms, v in waveform:
        if v < volts:
            return t_ms
    return None


def main() -> None:
    print("capturing Fig. 4a (no load on the rail)...")
    unloaded = run_discharge_capture(with_device=False, sample_interval_us=10_000)
    print("capturing Fig. 4b (one SSD attached)...")
    loaded = run_discharge_capture(with_device=True, sample_interval_us=10_000)

    plot(unloaded, "Fig. 4a — unloaded PSU output after PS_ON# deasserts")
    plot(loaded, "Fig. 4b — PSU output with one SSD on the rail")

    print()
    print(f"unloaded full discharge : {first_below(unloaded, 0.06):7.0f} ms (paper: ~1400 ms)")
    print(f"loaded full discharge   : {first_below(loaded, 0.06):7.0f} ms (paper:  ~900 ms)")
    print(f"loaded 4.5 V crossing   : {first_below(loaded, 4.5):7.0f} ms (paper:   ~40 ms)")
    print()
    print(
        "The ~40 ms of regulated hold-up followed by hundreds of\n"
        "milliseconds of decay is the window prior transistor-based\n"
        "testbeds never exercised — and where marginal programs happen."
    )


if __name__ == "__main__":
    main()
