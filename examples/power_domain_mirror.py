#!/usr/bin/env python3
"""Storage-architecture consequence: mirroring vs power domains.

The paper's data shows SSDs lose acknowledged data under power faults; the
architectural question for a storage designer is *where redundancy must
live*.  This example runs the same experiment on two RAID-1 mirrors:

- mirror A: both drives behind **one shared PSU** (typical single-PDU rack);
- mirror B: each drive on its **own power domain**.

A deliberately fragile drive model (always-volatile map, no recovery scan)
makes every fault lose recent writes, so the difference is stark: the
shared-domain mirror loses data exactly like a single drive — both replicas
fail together — while the split-domain mirror always has a healthy replica
and can repair the other.

Run:
    python examples/power_domain_mirror.py
"""

import dataclasses

from repro.analysis import ascii_table
from repro.ftl import FtlConfig
from repro.raid import MirrorPair
from repro.ssd.device import SsdConfig
from repro.units import GIB, MSEC


def fragile_config():
    return SsdConfig(
        capacity_bytes=2 * GIB,
        init_time_us=50 * MSEC,
        ftl=FtlConfig(
            journal_commit_interval_us=10_000 * MSEC,  # effectively never commits
            page_recovery_prob=0.0,
            extent_recovery_prob=0.0,
        ),
    )


def run_mirror(shared_power: bool, seed: int, rounds: int = 6):
    mirror = MirrorPair(config=fragile_config(), shared_power=shared_power, seed=seed)
    mirror.boot()
    lost = 0
    repaired = 0
    for round_index in range(rounds):
        lpn = round_index * 64
        tokens = [round_index * 10 + offset + 1 for offset in range(4)]
        mirror.write(lpn, tokens)
        mirror.run_for_ms(300)  # data on flash, map update still volatile
        mirror.fault_domain(None if shared_power else round_index % 2)
        mirror.run_for_ms(1500)
        mirror.restore_all()
        result = mirror.read_verified(lpn, 4, expected=tokens)
        if not result.data_available or result.tokens != tokens:
            lost += 1
        repaired += result.repaired_pages
        mirror.run_for_ms(200)
    return {
        "layout": "shared PSU" if shared_power else "split domains",
        "faults": rounds,
        "writes lost": lost,
        "pages repaired": repaired,
    }


def main() -> None:
    rows = []
    for shared, seed in ((True, 91), (False, 92)):
        label = "shared PSU" if shared else "split domains"
        print(f"running mirror with {label} ...")
        rows.append(run_mirror(shared, seed))
    headers = list(rows[0].keys())
    print()
    print(
        ascii_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title="RAID-1 under power faults (fragile drive model)",
        )
    )
    print()
    print(
        "The shared-PSU mirror loses recent writes on every fault — both\n"
        "replicas see the same outage, so RAID-1 buys nothing against it.\n"
        "Splitting the power domains keeps one replica healthy each time\n"
        "and the verified-read path repairs its partner: the paper's\n"
        "device-level findings translate directly into a placement rule."
    )


if __name__ == "__main__":
    main()
