#!/usr/bin/env python3
"""Vendor comparison: the paper's Table I drive population under fire.

Runs the same write workload against all six simulated units (two each of
models A, B, C) plus two extension devices — an enterprise drive with
power-loss-protection capacitors and an HDD-like control — and compares
their failure profiles, echoing the paper's finding (and Zheng et al.'s)
that essentially every consumer drive loses data under power faults while
protected designs do not.

The population runs as one engine fleet: eight single-shard campaign plans
with disjoint seeds, executed serially or across worker processes
(``--jobs``) with identical results either way.

Run:
    python examples/vendor_comparison.py            # serial
    python examples/vendor_comparison.py --jobs 4   # parallel fleet
"""

import sys

from repro import WorkloadSpec
from repro.analysis import ascii_table
from repro.core.fleet import run_fleet
from repro.ssd import models
from repro.units import GIB


def main() -> None:
    jobs = (
        int(sys.argv[sys.argv.index("--jobs") + 1]) if "--jobs" in sys.argv else 1
    )
    spec = WorkloadSpec(wss_bytes=8 * GIB, read_fraction=0.0, outstanding=16)
    population = dict(models.table_one_units())
    population["enterprise-plp"] = models.ssd_enterprise_supercap()
    population["hdd-control"] = models.hdd_like_control()

    results = run_fleet(
        population,
        spec,
        faults=5,
        base_seed=3000,
        jobs=jobs,
        progress=lambda name, result: print(f"  finished {name}"),
    )

    rows = []
    for name in sorted(population):
        config, result = population[name], results[name]
        rows.append(
            [
                name,
                config.cell.name,
                config.ecc.name,
                "yes" if config.supercap else "no",
                result.total_data_loss,
                result.fwa_failures,
                result.io_errors,
                f"{result.data_loss_per_fault:.2f}",
            ]
        )

    print()
    print(
        ascii_table(
            ["device", "cell", "ECC", "PLP", "data loss", "FWA", "IO err", "loss/fault"],
            rows,
            title="five power faults per device, identical write workload",
        )
    )
    print()
    print(
        "Expected pattern: every Table I unit loses data (the paper tested\n"
        "six drives and none was immune), the supercap-protected enterprise\n"
        "drive destages its buffer and keeps its map, and the HDD-like\n"
        "control shows only the unavoidable IO errors."
    )


if __name__ == "__main__":
    main()
