#!/usr/bin/env python3
"""Vendor comparison: the paper's Table I drive population under fire.

Runs the same write workload against all six simulated units (two each of
models A, B, C) plus two extension devices — an enterprise drive with
power-loss-protection capacitors and an HDD-like control — and compares
their failure profiles, echoing the paper's finding (and Zheng et al.'s)
that essentially every consumer drive loses data under power faults while
protected designs do not.

Run:
    python examples/vendor_comparison.py
"""

from repro import Campaign, CampaignConfig, TestPlatform, WorkloadSpec
from repro.analysis import ascii_table
from repro.ssd import models
from repro.units import GIB


def main() -> None:
    spec = WorkloadSpec(wss_bytes=8 * GIB, read_fraction=0.0, outstanding=16)
    population = dict(models.table_one_units())
    population["enterprise-plp"] = models.ssd_enterprise_supercap()
    population["hdd-control"] = models.hdd_like_control()

    rows = []
    for index, (name, config) in enumerate(sorted(population.items())):
        platform = TestPlatform(spec, config=config, seed=3000 + index)
        result = Campaign(platform, CampaignConfig(faults=5)).run(name)
        rows.append(
            [
                name,
                config.cell.name,
                config.ecc.name,
                "yes" if config.supercap else "no",
                result.total_data_loss,
                result.fwa_failures,
                result.io_errors,
                f"{result.data_loss_per_fault:.2f}",
            ]
        )
        print(f"  finished {name}")

    print()
    print(
        ascii_table(
            ["device", "cell", "ECC", "PLP", "data loss", "FWA", "IO err", "loss/fault"],
            rows,
            title="five power faults per device, identical write workload",
        )
    )
    print()
    print(
        "Expected pattern: every Table I unit loses data (the paper tested\n"
        "six drives and none was immune), the supercap-protected enterprise\n"
        "drive destages its buffer and keeps its map, and the HDD-like\n"
        "control shows only the unavoidable IO errors."
    )


if __name__ == "__main__":
    main()
