#!/usr/bin/env python3
"""Application-level operations under power faults.

The paper's related-work section (§II) lists "type of application level
operations" among the workload parameters prior studies neglected.  This
example studies it: a journaling filesystem (repro.fs) runs three
application patterns on the simulated SSD —

- ``append-sync``   : log-style appends with fsync after every record,
- ``overwrite``     : database-style in-place page overwrites, no sync,
- ``create-many``   : metadata-heavy small-file creation,

— then the power is cut mid-workload, the filesystem remounts, and the
crash-consistency audit reports what each pattern lost.

Run:
    python examples/filesystem_crash_test.py
"""

from repro.analysis import ascii_table
from repro.fs import FileSystem, FileVerdict, FsExpectation, audit_filesystem
from repro.host import HostSystem
from repro.ssd import models
from repro.units import GIB


def run_pattern(label, seed, workload):
    host = HostSystem(config=models.ssd_a(), seed=seed)
    host.boot()
    fs = FileSystem(host)
    fs.format()
    expectations = workload(fs)

    host.cut_power()
    host.run_for_ms(1500)
    host.restore_power()
    host.wait_until_ready()

    fresh = FileSystem(host, cas=fs.cas)
    report = fresh.mount()
    audit = audit_filesystem(fresh, expectations)
    return {
        "pattern": label,
        "files": len(expectations),
        "replayed": report.transactions_replayed,
        "discarded": report.transactions_discarded,
        "intact": audit.count(FileVerdict.INTACT),
        "rolled back": audit.count(FileVerdict.ROLLED_BACK),
        "lost synced": audit.durability_violations,
        "corrupt": audit.count(FileVerdict.CORRUPT),
    }


def append_sync_workload(fs):
    expectations = []
    for index in range(6):
        name = f"log{index}.dat"
        fs.create(name)
        expect = FsExpectation(name)
        content = b""
        for record in range(3):
            content = content + bytes([index * 16 + record]) * 4096
            fs.write_file(name, content, sync=True)
            expect.note_write(content)
            expect.note_sync()
        expectations.append(expect)
    return expectations


def overwrite_workload(fs):
    expectations = []
    for index in range(6):
        name = f"table{index}.db"
        fs.create(name)
        expect = FsExpectation(name)
        fs.write_file(name, bytes([index]) * 8192, sync=True)
        expect.note_write(bytes([index]) * 8192)
        expect.note_sync()
        # Unsynced in-place overwrite right before the fault.
        fs.write_file(name, bytes([index + 100]) * 8192)
        expect.note_write(bytes([index + 100]) * 8192)
        expectations.append(expect)
    return expectations


def create_many_workload(fs):
    expectations = []
    for index in range(24):
        name = f"tiny{index:03d}"
        fs.create(name)
        expect = FsExpectation(name)
        fs.write_file(name, bytes([index % 256]) * 512)
        expect.note_write(bytes([index % 256]) * 512)
        expectations.append(expect)
    return expectations


def main() -> None:
    rows = []
    for label, seed, workload in (
        ("append-sync", 81, append_sync_workload),
        ("overwrite", 82, overwrite_workload),
        ("create-many", 83, create_many_workload),
    ):
        print(f"running {label} ...")
        rows.append(run_pattern(label, seed, workload))
    headers = list(rows[0].keys())
    print()
    print(
        ascii_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title="power fault mid-workload, then remount + audit",
        )
    )
    print()
    print(
        "Reading the table:\n"
        "- fsync'd state survives (the FLUSH barrier checkpoints both the\n"
        "  FS journal and the FTL's volatile map);\n"
        "- unsynced overwrites and fresh files may roll back — that is the\n"
        "  crash-consistency contract, not a bug;\n"
        "- 'lost synced' or 'corrupt' entries would indicate the paper's\n"
        "  failure classes reaching through the filesystem."
    )


if __name__ == "__main__":
    main()
