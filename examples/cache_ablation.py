#!/usr/bin/env python3
"""Cache ablation: is the volatile DRAM buffer the whole story?

The paper's §V conclusion: "failures in SSDs are not only due to volatile
DRAM cache but also we observe similar failures in SSDs with disabled
internal cache."  This example runs three variants of the same drive —

1. stock write-back cache,
2. cache disabled (write-through: durable before ACK),
3. cache + supercap power-loss protection,

— under identical faults and shows where each failure class comes from.

Run:
    python examples/cache_ablation.py
"""

import dataclasses

from repro import Campaign, CampaignConfig, TestPlatform, WorkloadSpec
from repro.analysis import ascii_table
from repro.cache import SupercapBackup
from repro.ssd import models
from repro.units import GIB


def main() -> None:
    spec = WorkloadSpec(wss_bytes=8 * GIB, read_fraction=0.0, outstanding=16)
    base = models.ssd_a()
    variants = {
        "write-back (stock)": base,
        "cache disabled": models.ssd_cache_disabled(base),
        "cache + supercap": dataclasses.replace(base, supercap=SupercapBackup()),
    }

    rows = []
    for index, (name, config) in enumerate(variants.items()):
        platform = TestPlatform(spec, config=config, seed=4000 + index)
        result = Campaign(platform, CampaignConfig(faults=6)).run(name)
        saved = sum(c.supercap_pages_saved for c in result.cycles)
        rows.append(
            [
                name,
                result.data_failures,
                result.fwa_failures,
                result.io_errors,
                f"{result.data_loss_per_fault:.2f}",
                saved,
            ]
        )
        print(f"  finished: {name}")

    print()
    print(
        ascii_table(
            ["variant", "data failures", "FWA", "IO errors", "loss/fault", "supercap pages saved"],
            rows,
            title="six power faults per variant",
        )
    )
    print()
    print(
        "Reading the table:\n"
        "- disabling the cache does NOT eliminate loss: the mapping table\n"
        "  is still volatile and programs still land on a sagging rail\n"
        "  (the paper's central §IV-A observation);\n"
        "- the supercap variant destages its buffer and checkpoints the\n"
        "  map on the way down, which is why high-end drives carry one."
    )


if __name__ == "__main__":
    main()
