#!/usr/bin/env python3
"""Record/replay + diskchecker workflow on the simulated testbed.

Shows the two downstream-user features beyond the paper's experiments:

1. **Trace capture & replay** — run any workload once, capture its request
   stream from the block-layer tracer, persist it, and replay it bit-exact
   on a different device model.
2. **Durable write ledger + standalone checker** — the writer appends every
   acknowledged request to a JSON-lines ledger (as diskchecker-style
   scripts do on a second machine); after the power fault and reboot, the
   checker replays the ledger against the device with the paper's §III-B
   taxonomy.

Run:
    python examples/trace_replay_checker.py
"""

import tempfile
from pathlib import Path

from repro.core.analyzer import FailureKind
from repro.core.ledger_io import check_ledger, load_ledger, save_ledger
from repro.host import HostSystem
from repro.rand import RandomStreams
from repro.ssd import models
from repro.units import GIB
from repro.workload import IOGenerator, WorkloadSpec
from repro.workload.replay import TraceReplayer, capture_trace


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-replay-"))
    trace_path = workdir / "workload.trace.jsonl"
    ledger_path = workdir / "writes.ledger.jsonl"

    # ---- 1. capture a workload on drive A --------------------------------
    print("capturing a 150 ms write burst on ssd-a ...")
    source = HostSystem(config=models.ssd_a(), seed=51)
    source.boot()
    generator = IOGenerator(
        source, WorkloadSpec(wss_bytes=4 * GIB, outstanding=8), RandomStreams(5)
    )
    generator.start()
    source.run_for_ms(150)
    generator.stop()
    trace = capture_trace(source.tracer)
    trace.save(trace_path)
    print(f"  captured {len(trace)} requests "
          f"({trace.write_fraction:.0%} writes) -> {trace_path.name}")

    # ---- 2. replay it on drive B, logging a durable ledger ---------------
    print("replaying the trace on ssd-b, journaling every request ...")
    target = HostSystem(config=models.ssd_b(), seed=52)
    target.boot()
    replayer = TraceReplayer(target, trace)
    replayer.start()
    target.run_for(trace.duration_us + 50_000)
    save_ledger(replayer.packets, ledger_path)
    print(f"  {len(replayer.acked_writes)}/{len(trace)} writes ACKed; "
          f"ledger -> {ledger_path.name}")

    # ---- 3. power fault + reboot ------------------------------------------
    print("cutting power mid-workload aftermath ...")
    target.cut_power()
    target.run_for_ms(1500)
    target.restore_power()
    target.wait_until_ready()

    # ---- 4. the standalone checker ---------------------------------------
    print("running the diskchecker-style verification pass ...")
    outcome = check_ledger(target.ssd.peek, load_ledger(ledger_path))
    print(f"  packets checked : {outcome.packets_checked}")
    for kind in FailureKind:
        print(f"  {kind.value:18s}: {outcome.count(kind)}")
    if outcome.records:
        sample = outcome.records[0]
        print(
            f"  e.g. packet #{sample.packet_id} at LPN {sample.lpn}: "
            f"{sample.kind.value}"
        )
    print(f"\nartifacts kept in {workdir}")


if __name__ == "__main__":
    main()
