#!/usr/bin/env python3
"""Quickstart: one fault-injection campaign, end to end.

Builds the paper's test platform around a generic SSD, runs a small
campaign of realistic power faults against a random write workload, and
prints the failure taxonomy the Analyzer produced — data failures, False
Write-Acknowledges, and IO errors, exactly the three classes of §III-B.

Run:
    python examples/quickstart.py
"""

from repro import Campaign, CampaignConfig, TestPlatform, WorkloadSpec
from repro.analysis import ascii_table
from repro.units import GIB


def main() -> None:
    # A workload like the paper's common configuration: uniform-random
    # writes, request sizes 4 KiB - 1 MiB, on a 16 GiB working set.
    spec = WorkloadSpec(
        wss_bytes=16 * GIB,
        read_fraction=0.0,
        outstanding=16,
    )
    platform = TestPlatform(spec, seed=2024)
    print(f"platform: {platform.describe()}")
    print("injecting 8 power faults (PSU discharge, detach at 4.5 V)...")

    result = Campaign(platform, CampaignConfig(faults=8)).run("quickstart")

    print()
    print(
        ascii_table(
            ["cycle", "fault t (s)", "completed", "data failures", "FWA", "IO errors"],
            [
                [
                    c.cycle_index,
                    f"{c.fault_time_us / 1e6:.2f}",
                    c.requests_completed,
                    c.data_failures,
                    c.fwa_failures,
                    c.io_errors,
                ]
                for c in result.cycles
            ],
            title="per-fault results",
        )
    )
    print()
    summary = result.summary()
    print(f"total requests completed : {summary['requests_completed']}")
    print(f"data failures            : {summary['data_failures']}")
    print(f"false write-acks (FWA)   : {summary['fwa']}")
    print(f"IO errors                : {summary['io_errors']}")
    print(f"data loss per power fault: {summary['loss_per_fault']}")
    print()
    print(
        "The paper's write-heavy experiments observed roughly two data\n"
        "failures per power fault (§IV-B); the simulated drive should land\n"
        "in the same ballpark."
    )


if __name__ == "__main__":
    main()
