#!/usr/bin/env python3
"""Quickstart: one fault-injection campaign, end to end.

Declares a :class:`CampaignPlan` for the paper's test platform around a
generic SSD, runs a small campaign of realistic power faults against a
random write workload through the execution engine, and prints the failure
taxonomy the Analyzer produced — data failures, False Write-Acknowledges,
and IO errors, exactly the three classes of §III-B.

The engine shards the fault budget deterministically, so the results below
are identical whether the campaign runs serially or across worker
processes.

Run:
    python examples/quickstart.py            # serial
    python examples/quickstart.py --jobs 4   # four worker processes
"""

import sys

from repro import WorkloadSpec
from repro.analysis import ascii_table
from repro.engine import CampaignPlan, ConsoleProgress, run_plan
from repro.units import GIB


def main() -> None:
    jobs = (
        int(sys.argv[sys.argv.index("--jobs") + 1]) if "--jobs" in sys.argv else 1
    )
    # A workload like the paper's common configuration: uniform-random
    # writes, request sizes 4 KiB - 1 MiB, on a 16 GiB working set.
    spec = WorkloadSpec(
        wss_bytes=16 * GIB,
        read_fraction=0.0,
        outstanding=16,
    )
    plan = CampaignPlan(
        spec=spec,
        faults=8,
        base_seed=2024,
        label="quickstart",
        shard_faults=2,  # 4 independent shards, disjoint deterministic seeds
    )
    print(f"plan: {plan.display_label()} ({plan.shard_count()} shards, jobs={jobs})")
    print("injecting 8 power faults (PSU discharge, detach at 4.5 V)...")

    result = run_plan(plan, jobs=jobs, progress=ConsoleProgress())

    print()
    print(
        ascii_table(
            ["cycle", "fault t (s)", "completed", "data failures", "FWA", "IO errors"],
            [
                [
                    c.cycle_index,
                    f"{c.fault_time_us / 1e6:.2f}",
                    c.requests_completed,
                    c.data_failures,
                    c.fwa_failures,
                    c.io_errors,
                ]
                for c in result.cycles
            ],
            title="per-fault results",
        )
    )
    print()
    summary = result.summary()
    print(f"total requests completed : {summary['requests_completed']}")
    print(f"data failures            : {summary['data_failures']}")
    print(f"false write-acks (FWA)   : {summary['fwa']}")
    print(f"IO errors                : {summary['io_errors']}")
    print(f"data loss per power fault: {summary['loss_per_fault']}")
    print()
    print(
        "The paper's write-heavy experiments observed roughly two data\n"
        "failures per power fault (§IV-B); the simulated drive should land\n"
        "in the same ballpark.  Re-run with --jobs 4: the engine's shard\n"
        "plan is fixed, so the numbers do not change."
    )


if __name__ == "__main__":
    main()
