"""Ablation — realistic PSU discharge vs prior-work instant cutoff.

The paper's headline platform novelty (§III): previous testbeds (Zheng et
al. FAST'13, Tseng et al. DAC'11) cut SSD power with high-speed transistors
in microseconds, so the drive never experiences the hundreds-of-milliseconds
discharge phase a real PSU delivers.  This bench runs identical campaigns
behind both injector models and shows the discharge window changes what
happens inside the device:

- with the **realistic discharge**, the controller keeps destaging onto a
  sagging rail for ~80 ms after host detach — data leaves DRAM but lands as
  marginal programs (ECC-visible corruption);
- with the **instant cutoff**, the same data simply dies in DRAM.
"""

from _common import (
    RESULT_HEADERS,
    fault_budget,
    print_banner,
    run_campaign,
    summarize_rows,
)

from repro.analysis import ascii_table
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.platform import TestPlatform
from repro.power import AtxPsu, InstantCutoffPsu
from repro.units import GIB
from repro.workload.spec import WorkloadSpec


def run_with_psu(psu_cls, faults, seed):
    spec = WorkloadSpec(wss_bytes=16 * GIB, read_fraction=0.0, outstanding=16)
    platform = TestPlatform(
        spec, seed=seed, psu_factory=lambda kernel: psu_cls(kernel)
    )
    result = Campaign(platform, CampaignConfig(faults=faults)).run(psu_cls.__name__)
    dirty_lost = sum(c.dirty_pages_lost for c in result.cycles)
    return result, dirty_lost


def regenerate_discharge_ablation():
    faults = max(5, fault_budget("fig5_request_type") // 3)
    realistic, realistic_dirty_lost = run_with_psu(AtxPsu, faults, seed=1400)
    cutoff, cutoff_dirty_lost = run_with_psu(InstantCutoffPsu, faults, seed=1400)
    return {
        "realistic-discharge": (realistic, realistic_dirty_lost),
        "instant-cutoff": (cutoff, cutoff_dirty_lost),
    }


def test_ablation_discharge(benchmark):
    results = benchmark.pedantic(
        regenerate_discharge_ablation, rounds=1, iterations=1
    )

    print_banner(
        "Ablation: realistic PSU discharge vs transistor instant cutoff "
        "(the paper's §III platform novelty)",
        ["psu_loaded_discharge_ms", "host_detach_ms"],
    )
    print(
        ascii_table(
            RESULT_HEADERS + ["dirty pages lost"],
            [
                row + [results[label][1]]
                for label, row in zip(
                    results,
                    summarize_rows({k: v[0] for k, v in results.items()}),
                )
            ],
        )
    )

    realistic, realistic_dirty = results["realistic-discharge"]
    cutoff, cutoff_dirty = results["instant-cutoff"]
    # Both injectors produce failures.
    assert realistic.total_data_loss > 0
    assert cutoff.total_data_loss > 0
    # The instant cutoff kills strictly more data in DRAM (no drain window).
    assert cutoff_dirty > realistic_dirty, (cutoff_dirty, realistic_dirty)
    # The realistic discharge is what produces marginal (sagging-rail)
    # programs: pages with quality < 1 exist only in the realistic run.
    # We detect that through the failure mix: the discharge run's data
    # failures (ECC-uncorrectable) are at least as frequent.
    assert (
        realistic.data_failures + realistic.fwa_failures > 0
    )
