"""Fig. 7 — Impact of request size on data failures.

Paper: constant-size uniform-random writes, size per experiment in
{4, 16, 64, 256, 1024} KiB; ≥800 faults over 64 000+ requests.  Small
requests fail far more per fault (the 4 KiB point dominates, up to tens of
failures per fault) and the 4 KiB failures are mostly **FWA** — the ACK
came from DRAM/volatile map state that never became durable.
"""

from _common import (
    RESULT_HEADERS,
    fault_budget,
    print_banner,
    run_campaign,
    summarize_rows,
)

from repro.analysis import ascii_bar_series, ascii_table
from repro.analysis.stats import is_monotone_decreasing
from repro.units import GIB, KIB
from repro.workload.spec import WorkloadSpec

SIZES_KIB = [4, 16, 64, 256, 1024]


def regenerate_fig7():
    faults = max(8, fault_budget("fig7_request_size") // len(SIZES_KIB))
    results = {}
    for index, size_kib in enumerate(SIZES_KIB):
        spec = WorkloadSpec(
            wss_bytes=32 * GIB,
            read_fraction=0.0,
            size_min_bytes=size_kib * KIB,
            size_max_bytes=size_kib * KIB,
            outstanding=16,
        )
        results[size_kib] = run_campaign(
            spec, faults=faults, seed=700 + index, label=f"{size_kib}KiB"
        )
    return results


def test_fig7_request_size(benchmark):
    results = benchmark.pedantic(regenerate_fig7, rounds=1, iterations=1)

    print_banner("Fig. 7: impact of request size", [])
    rows = summarize_rows({f"{k}KiB": v for k, v in results.items()})
    print(ascii_table(RESULT_HEADERS, rows))
    losses = [results[k].data_loss_per_fault for k in SIZES_KIB]
    print()
    print(
        ascii_bar_series(
            [f"{k}KiB" for k in SIZES_KIB],
            losses,
            title="data loss per power fault vs request size (paper: 4KiB >> 1MiB)",
        )
    )
    print(f"\nFWA fraction at 4KiB: {results[4].fwa_fraction:.2f} "
          f"(paper: 'most of the failures ... from FWA type')")

    # Shape 1: small requests lose far more per fault.  Aggregate bands
    # damp the per-point noise of scaled-down campaigns: the fault instant
    # within the map-commit period makes single points high-variance.
    small = (losses[0] + losses[1]) / 2  # 4 & 16 KiB
    mid = losses[2]  # 64 KiB
    large = (losses[3] + losses[4]) / 2  # 256 KiB & 1 MiB
    assert small > 1.5 * mid > 0, losses
    assert small > 4 * large, losses
    assert mid > large, losses
    # Shape 2: the large-request tail is itself ordered (with slack).
    assert is_monotone_decreasing(losses[2:], slack=0.5), losses
    # Shape 3: the 4 KiB losses are dominated by FWA.
    assert results[4].fwa_fraction > 0.5
    # Shape 4: small-request per-fault loss reaches the tens (paper: ~40).
    assert small >= 8.0
