"""§IV-D — Impact of request access pattern (random vs sequential).

Paper: two independent write-only workloads (4 KiB-1 MiB, WSS 64 GiB),
one fully random, one fully sequential; ≥300 faults over 24 000 requests.
Because the FTL "only keeps the first address in the mapping table" for
sequential runs, losing one (volatile) map entry orphans a whole run —
sequential workloads lose about **14 % more** data than random ones.
"""

from _common import (
    RESULT_HEADERS,
    fault_budget,
    print_banner,
    run_campaign,
    summarize_rows,
)

from repro.analysis import ascii_table, paper_vs_measured
from repro.units import GIB
from repro.workload.spec import AccessPattern, WorkloadSpec


def regenerate_sec4d():
    faults = max(6, fault_budget("sec4d_pattern"))
    results = {}
    for index, pattern in enumerate((AccessPattern.RANDOM, AccessPattern.SEQUENTIAL)):
        spec = WorkloadSpec(
            wss_bytes=64 * GIB,
            read_fraction=0.0,
            pattern=pattern,
            outstanding=16,
        )
        results[pattern.value] = run_campaign(
            spec, faults=faults, seed=450 + index, label=pattern.value
        )
    return results


def test_sec4d_access_pattern(benchmark):
    results = benchmark.pedantic(regenerate_sec4d, rounds=1, iterations=1)

    print_banner(
        "§IV-D: random vs sequential access pattern",
        ["sequential_excess_percent"],
    )
    print(ascii_table(RESULT_HEADERS, summarize_rows(results)))
    random_loss = results["random"].data_loss_per_fault
    seq_loss = results["sequential"].data_loss_per_fault
    excess = (seq_loss / random_loss - 1) * 100 if random_loss else float("inf")
    print()
    print(
        paper_vs_measured(
            [["sequential excess (%)", "+14", f"{excess:+.0f}", "shape"]]
        )
    )

    # Shape 1: both patterns lose data.
    assert random_loss > 0 and seq_loss > 0
    # Shape 2: sequential loses more (the extent-entry mechanism), in the
    # right magnitude band — more than random but not an order of magnitude.
    assert seq_loss > random_loss, (seq_loss, random_loss)
    assert seq_loss <= 3.0 * random_loss, (seq_loss, random_loss)
