"""Fig. 4 — PSU output voltage during the discharge phase.

Paper: (a) unloaded PSU discharges within ~1400 ms; (b) with one SSD the
discharge takes ~900 ms and crosses the 4.5 V host-detach threshold after
~40 ms.  This bench captures both waveforms from the simulated rail and
checks every anchor.
"""

from _common import print_banner

from repro.analysis import ascii_table, paper_vs_measured
from repro.core.experiment import run_discharge_capture


def first_time_below(waveform, volts):
    for t_ms, v in waveform:
        if v < volts:
            return t_ms
    return None


def regenerate_fig4():
    unloaded = run_discharge_capture(with_device=False, sample_interval_us=1000)
    loaded = run_discharge_capture(with_device=True, sample_interval_us=1000)
    return {
        "unloaded_full_ms": first_time_below(unloaded, 0.06),
        "loaded_full_ms": first_time_below(loaded, 0.06),
        "loaded_detach_ms": first_time_below(loaded, 4.5),
        "unloaded_waveform": unloaded,
        "loaded_waveform": loaded,
    }


def test_fig4_psu_discharge(benchmark):
    measured = benchmark.pedantic(regenerate_fig4, rounds=1, iterations=1)

    print_banner(
        "Fig. 4: PSU discharge waveform",
        ["psu_unloaded_discharge_ms", "psu_loaded_discharge_ms", "host_detach_ms"],
    )
    # Downsampled waveform table (the figure's series).
    for name in ("unloaded_waveform", "loaded_waveform"):
        samples = measured[name][:: max(1, len(measured[name]) // 12)]
        print(
            ascii_table(
                ["t (ms)", "V"],
                [[f"{t:.0f}", f"{v:.2f}"] for t, v in samples],
                title=f"\n{name}",
            )
        )
    print()
    print(
        paper_vs_measured(
            [
                ["unloaded full discharge (ms)", 1400, f"{measured['unloaded_full_ms']:.0f}", "shape"],
                ["loaded full discharge (ms)", 900, f"{measured['loaded_full_ms']:.0f}", "shape"],
                ["loaded 4.5 V crossing (ms)", 40, f"{measured['loaded_detach_ms']:.0f}", "shape"],
            ]
        )
    )

    assert 1250 <= measured["unloaded_full_ms"] <= 1550
    assert 800 <= measured["loaded_full_ms"] <= 1000
    assert 25 <= measured["loaded_detach_ms"] <= 60
    # Load shortens the discharge (the paper's Fig. 4a vs 4b contrast).
    assert measured["loaded_full_ms"] < measured["unloaded_full_ms"]
