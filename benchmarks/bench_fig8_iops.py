"""Fig. 8 — Impact of requested IOPS on responded IOPS and failures.

Paper: workloads with requested IOPS from 1 200 to 30 000; ≥600 faults.
Responded IOPS tracks requested IOPS until it saturates around **6 900**;
data failures grow with requested IOPS until the same saturation point and
then flatten, because the fault can only hit as much data as the device
actually responds to.

(The paper's text says 4 KiB-1 MiB request sizes, but a ~6 900 IOPS
saturation is only reachable with small commands on SATA — we use 4 KiB
requests, which is the regime the saturation number describes.)
"""

from _common import fault_budget, print_banner, run_campaign

from repro.analysis import ascii_table, saturation_point
from repro.analysis.stats import is_monotone_increasing
from repro.units import GIB, KIB
from repro.workload.spec import WorkloadSpec

REQUESTED_IOPS = [1200, 2400, 6000, 12000, 30000]


def regenerate_fig8():
    faults = max(6, fault_budget("fig8_iops") // len(REQUESTED_IOPS))
    results = {}
    for index, iops in enumerate(REQUESTED_IOPS):
        spec = WorkloadSpec(
            wss_bytes=32 * GIB,
            read_fraction=0.0,
            size_min_bytes=4 * KIB,
            size_max_bytes=4 * KIB,
            requested_iops=float(iops),
        )
        results[iops] = run_campaign(
            spec, faults=faults, seed=800 + index, label=f"iops={iops}"
        )
    return results


def test_fig8_requested_iops(benchmark):
    results = benchmark.pedantic(regenerate_fig8, rounds=1, iterations=1)

    print_banner(
        "Fig. 8: requested IOPS vs responded IOPS and failures",
        ["responded_iops_saturation"],
    )
    responded = [results[k].responded_iops for k in REQUESTED_IOPS]
    losses = [results[k].data_loss_per_fault for k in REQUESTED_IOPS]
    print(
        ascii_table(
            ["requested IOPS", "responded IOPS", "data loss/fault"],
            [
                [k, f"{r:.0f}", f"{l:.2f}"]
                for k, r, l in zip(REQUESTED_IOPS, responded, losses)
            ],
        )
    )

    # Shape 1: below saturation the device keeps up (within pacing noise).
    assert responded[0] <= 1.15 * REQUESTED_IOPS[0]
    assert responded[0] >= 0.75 * REQUESTED_IOPS[0]
    # Shape 2: responded IOPS saturates near the paper's ~6900.
    peak = max(responded)
    assert 5000 <= peak <= 8500, responded
    # The two over-saturation points respond the same.
    assert abs(responded[-1] - responded[-2]) <= 0.15 * peak
    sat = saturation_point(REQUESTED_IOPS, responded, tolerance=0.10)
    assert sat is not None and sat <= 12000
    # Shape 3: failures grow with requested IOPS up to saturation...
    assert is_monotone_increasing(losses[:3], slack=0.35), losses
    assert losses[0] < min(losses[-2:]), losses
    # ...and stop growing with *requested* IOPS once responded IOPS is
    # capped: the over-saturation points stay within each other's noise
    # band instead of scaling with the 2.5x requested-rate step.
    over_lo, over_hi = sorted(losses[-2:])
    assert over_hi <= 2.5 * over_lo + 2.0, losses
