"""Table I — The experimental drive population (six units, three models).

Paper: two units each of model A (256 GB MLC, 2013), B (120 GB TLC with
LDPC, 2015), and C (120 GB MLC, year N/A); every model suffered failures
under power faults (echoing Zheng et al.'s 13-of-15 result).  The bench
runs the same write workload across all six simulated units and regenerates
a per-model results table.
"""

from _common import fault_budget, print_banner, run_campaign

from repro.analysis import ascii_table
from repro.ssd import models
from repro.units import GIB
from repro.workload.spec import WorkloadSpec


def regenerate_table1():
    faults = max(3, fault_budget("fig5_request_type") // 6)
    spec = WorkloadSpec(wss_bytes=16 * GIB, read_fraction=0.0, outstanding=16)
    results = {}
    for index, (unit_name, config) in enumerate(sorted(models.table_one_units().items())):
        results[unit_name] = run_campaign(
            spec, faults=faults, seed=1100 + index, config=config, label=unit_name
        )
    return results


def test_table1_devices(benchmark):
    results = benchmark.pedantic(regenerate_table1, rounds=1, iterations=1)

    print_banner("Table I: six units, three drive models", [])
    configs = models.table_one_units()
    print(
        ascii_table(
            ["unit", "size", "cell", "ECC", "year", "faults", "data loss", "loss/fault"],
            [
                [
                    name,
                    f"{configs[name].capacity_bytes // GIB}G",
                    configs[name].cell.name,
                    configs[name].ecc.name,
                    configs[name].release_year or "N/A",
                    r.faults,
                    r.total_data_loss,
                    f"{r.data_loss_per_fault:.2f}",
                ]
                for name, r in results.items()
            ],
        )
    )

    by_model = {}
    for name, result in results.items():
        model = name.split("#")[0]
        by_model.setdefault(model, []).append(result)

    # Shape 1: every unit of every model loses data under power faults.
    for name, result in results.items():
        assert result.total_data_loss > 0, name
    # Shape 2: the two units of each model behave consistently (same
    # firmware): within a loose band of each other.
    for model, pair in by_model.items():
        a, b = (p.data_loss_per_fault for p in pair)
        assert min(a, b) > 0
        assert max(a, b) <= 4.0 * min(a, b) + 2.0, (model, a, b)
    # Shape 3: model C (weakest recovery scan) loses at least as much as A
    # (merged over both units to damp noise).
    merged = {
        model: pair[0].merged_with(pair[1]) for model, pair in by_model.items()
    }
    assert (
        merged["ssd-c"].data_loss_per_fault
        >= 0.8 * merged["ssd-a"].data_loss_per_fault
    )
