"""Dirty-power-cycle stress bench: the qualification loop as a perf family.

Not a figure from the paper — this regenerates the NVMe-rig version of its
experiment (repeated fault -> power-on -> recover -> verify with per-LBA
classification via command-log replay, see ``repro.stress``) at bench
scale, both as a perf record (``repro bench run dirty_cycle``) and as a
shape test:

- every acknowledged write is classified: intact + FWA + data-failure
  counts re-add to the acked-write count, cycle by cycle;
- the device's unsafe-shutdown SMART counter equals the dirty cycles
  injected (the in-harness audit would have raised otherwise);
- the recovery-fault cycles (power loss during FTL recovery) complete and
  count one extra unsafe shutdown each.
"""

from _common import fault_budget, print_banner, run_engine_plan, BENCH_SHARD_FAULTS

from repro.analysis import ascii_table
from repro.ssd import models
from repro.stress import DirtyCyclePlan
from repro.units import GIB, KIB
from repro.workload.spec import WorkloadSpec

RECOVERY_FAULT_EVERY = 5


def regenerate_dirty_cycle():
    cycles = max(4, fault_budget("dirty_cycle"))
    spec = WorkloadSpec(
        wss_bytes=4 * GIB,
        read_fraction=0.0,
        size_min_bytes=4 * KIB,
        size_max_bytes=64 * KIB,
    )
    plan = DirtyCyclePlan(
        spec=spec,
        faults=cycles,
        device=models.by_name("ssd-a"),
        base_seed=7,
        label="dirty_cycle ssd-a",
        shard_faults=min(BENCH_SHARD_FAULTS, cycles),
        qdepth=32,
        recovery_fault_every=RECOVERY_FAULT_EVERY,
    )
    return {"ssd-a": run_engine_plan(plan)}


def test_dirty_cycle_stress(benchmark):
    results = benchmark.pedantic(regenerate_dirty_cycle, rounds=1, iterations=1)
    result = results["ssd-a"]

    print_banner(
        "Dirty power cycles: acked-write audit + SMART agreement",
        ["unsafe_shutdowns_per_dirty_cycle"],
    )
    print(
        ascii_table(
            ["cycles", "acked writes", "intact", "FWA", "data loss", "unsafe"],
            [
                [
                    result.faults,
                    sum(c.writes_completed for c in result.cycles),
                    result.intact_writes,
                    result.fwa_failures,
                    result.data_failures,
                    result.unsafe_shutdowns,
                ]
            ],
        )
    )

    # Every acked write is classified, cycle by cycle: the audit partition
    # (intact | FWA | data failure) covers the acked set exactly.
    for cycle in result.cycles:
        assert (
            cycle.intact_writes + cycle.fwa_failures + cycle.data_failures
            == cycle.writes_completed
        ), cycle
    # SMART agreement: one unsafe shutdown per dirty cycle plus one extra
    # for each recovery-fault cycle (the shard-level audit already asserted
    # the device's own counters; this checks the merged bookkeeping).
    expected_unsafe = result.faults + result.faults // RECOVERY_FAULT_EVERY
    assert result.unsafe_shutdowns == expected_unsafe
    # A write-back consumer drive under dirty cycles shows acked-write loss.
    assert result.total_data_loss > 0
