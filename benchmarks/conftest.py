"""Pytest configuration for the reproduction benches.

Benches print the regenerated tables/figures; ``-s`` is implied by running
``pytest benchmarks/ --benchmark-only`` with output capture left on — the
rendered tables are still written to stdout and shown for failed assertions;
pass ``-s`` to see them live.
"""

import sys
from pathlib import Path

# Allow `from _common import ...` regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
