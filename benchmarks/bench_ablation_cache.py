"""Ablation — internal write cache enabled vs disabled.

Paper (§IV-A, §V): "failures in SSDs are not only due to volatile DRAM
cache but also we observe similar failures in SSDs with disabled internal
cache."  The bench runs the same workload with the cache write-back (stock)
and disabled (write-through) and shows data loss persists without the
cache — through the volatile mapping table and marginal programs — while
the cache-on device loses at least as much.
"""

from _common import (
    RESULT_HEADERS,
    fault_budget,
    print_banner,
    run_campaign,
    summarize_rows,
)

from repro.analysis import ascii_table
from repro.ssd import models
from repro.units import GIB
from repro.workload.spec import WorkloadSpec


def regenerate_cache_ablation():
    faults = max(5, fault_budget("fig5_request_type") // 3)
    spec = WorkloadSpec(wss_bytes=16 * GIB, read_fraction=0.0, outstanding=16)
    base = models.ssd_a()
    results = {
        "cache-enabled": run_campaign(
            spec, faults=faults, seed=1300, config=base, label="cache-enabled"
        ),
        "cache-disabled": run_campaign(
            spec,
            faults=faults,
            seed=1301,
            config=models.ssd_cache_disabled(base),
            label="cache-disabled",
        ),
    }
    return results


def test_ablation_cache(benchmark):
    results = benchmark.pedantic(regenerate_cache_ablation, rounds=1, iterations=1)

    print_banner(
        "Ablation: internal volatile cache enabled vs disabled "
        "(paper: failures persist with cache off)",
        [],
    )
    print(ascii_table(RESULT_HEADERS, summarize_rows(results)))

    enabled = results["cache-enabled"]
    disabled = results["cache-disabled"]
    # The paper's conclusion: the cache is NOT the only failure source.
    assert disabled.total_data_loss > 0
    # FWA persists without the cache (stranded map updates).
    assert disabled.fwa_failures > 0
    # And the write-back device is at least as exposed.
    assert enabled.total_data_loss >= disabled.total_data_loss * 0.5
