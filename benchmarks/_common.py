"""Shared helpers for the reproduction benches.

Every bench regenerates one table or figure of the paper: it runs the
corresponding campaign(s), prints the measured rows next to the paper's
anchors, and asserts the *shape* claims (who wins, roughly by what factor,
where crossovers fall) — absolute counts are not expected to match a
hardware testbed.

Scaling: the paper's campaigns run 200-800 faults per experiment.  Set
``REPRO_BENCH_SCALE`` (default 0.04) to scale the *fault count*; the cycle
length is never scaled because per-fault statistics need the stranded-update
population at steady state (see ``repro.core.calibration``).

Parallelism: campaigns execute through :mod:`repro.engine`.  Set
``REPRO_BENCH_JOBS=N`` to run each campaign's shards over N worker
processes (paper-scale budgets are embarrassingly parallel).  The shard
plan is fixed at ``BENCH_SHARD_FAULTS`` faults per shard regardless of
job count, so bench results depend only on the scale — never on how many
workers executed them.  Campaigns of ``<= BENCH_SHARD_FAULTS`` faults
(every family at the default smoke scale) are a single shard seeded
exactly like the legacy serial runner, so historical numbers are
unchanged.  ``REPRO_BENCH_WORKERS=HOST:PORT`` instead serves shards to
``repro worker`` processes over TCP (see :func:`bench_listen`) — same
numbers, other people's machines.

Fault tolerance: campaigns run under the engine's shard supervisor.
``REPRO_BENCH_MAX_RETRIES`` bounds per-shard retries (default 2),
``REPRO_BENCH_SHARD_TIMEOUT`` (seconds) arms the wedged-worker timeout,
and ``REPRO_BENCH_CHECKPOINT`` names a directory of per-campaign shard
journals so a killed paper-scale sweep resumes instead of restarting —
none of these affect result numbers (retried shards are deterministic).

Profiling: ``REPRO_BENCH_TRACE`` names a directory of per-campaign
telemetry traces (``<dir>/<label-slug>.trace.jsonl``, one JSONL record
per shard event); feed any of them to ``repro trace report`` to find the
stragglers, retries, and checkpoint lag of a paper-scale sweep — or
watch the whole sweep live from one terminal with ``repro trace report
--follow <dir>`` (directory mode multiplexes every trace and discovers
new campaigns as they start).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.core import calibration
from repro.core.results import CampaignResult
from repro.engine import CampaignPlan, run_plan, TraceWriter
from repro.ssd.device import SsdConfig
from repro.workload.spec import WorkloadSpec


def bench_scale() -> float:
    """Campaign scale factor from the environment (paper scale = 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))


BENCH_SHARD_FAULTS = 25
"""Fixed engine shard size for benches (jobs-independent, so results are
identical for any ``REPRO_BENCH_JOBS``; paper-scale budgets of 200-800
faults split into 8-32 parallelisable shards)."""


def bench_jobs() -> int:
    """Engine worker count from the environment (default serial)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def bench_listen() -> Optional[str]:
    """Distributed-coordinator address (``REPRO_BENCH_WORKERS``).

    Set ``REPRO_BENCH_WORKERS=HOST:PORT`` to serve every bench campaign's
    shards to ``repro worker --connect HOST:PORT`` processes over TCP
    instead of executing locally (port 0 picks a free port, printed to
    stderr).  Results are identical to local runs — the shard plan and
    seeds never depend on who executes them — so a paper-scale sweep can
    borrow machines without changing a single number.
    """
    return os.environ.get("REPRO_BENCH_WORKERS") or None


def bench_shard_timeout() -> Optional[float]:
    """Per-shard timeout in seconds (``REPRO_BENCH_SHARD_TIMEOUT``, off by default)."""
    raw = os.environ.get("REPRO_BENCH_SHARD_TIMEOUT")
    return float(raw) if raw else None


def bench_max_retries() -> int:
    """Retry budget per shard (``REPRO_BENCH_MAX_RETRIES``, default 2)."""
    return max(0, int(os.environ.get("REPRO_BENCH_MAX_RETRIES", "2")))


def bench_checkpoint_dir() -> Optional[str]:
    """Journal directory for paper-scale runs (``REPRO_BENCH_CHECKPOINT``).

    When set, every bench campaign journals its shards to
    ``<dir>/<label-slug>.jsonl`` and transparently resumes from it, so a
    killed paper-scale sweep (`REPRO_BENCH_SCALE=1.0` is hours of work)
    restarts from the last committed shard instead of from zero.
    """
    return os.environ.get("REPRO_BENCH_CHECKPOINT") or None


def bench_trace_dir() -> Optional[str]:
    """Telemetry trace directory (``REPRO_BENCH_TRACE``).

    When set, every bench campaign appends its per-shard engine events to
    ``<dir>/<label-slug>.trace.jsonl`` — profile them afterwards with
    ``repro trace report``, or watch the sweep live with
    ``repro trace report --follow <dir>``.
    """
    return os.environ.get("REPRO_BENCH_TRACE") or None


_follow_hint_emitted = False


def _emit_follow_hint(directory: str) -> None:
    """One stderr hint per process: a traced sweep can be watched live."""
    global _follow_hint_emitted
    if _follow_hint_emitted:
        return
    _follow_hint_emitted = True
    print(
        f"[trace] watch this sweep live: "
        f"python -m repro trace report --follow {directory}",
        file=sys.stderr,
    )


def _campaign_slug(label: str) -> str:
    return "".join(c if c.isalnum() or c in "-_" else "_" for c in label) or "campaign"


def _campaign_file(directory: Optional[str], label: str, suffix: str) -> Optional[str]:
    if directory is None:
        return None
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    return str(path / f"{_campaign_slug(label)}{suffix}")


def _checkpoint_path(label: str) -> Optional[str]:
    return _campaign_file(bench_checkpoint_dir(), label, ".jsonl")


def _trace_path(label: str) -> Optional[str]:
    return _campaign_file(bench_trace_dir(), label, ".trace.jsonl")


def fault_budget(experiment_key: str) -> int:
    """Scaled fault count for one of the paper's experiment families."""
    paper = calibration.PAPER_FAULTS.get(experiment_key, 300)
    return calibration.scaled_faults(paper, bench_scale())


def run_campaign(
    spec: WorkloadSpec,
    faults: int,
    seed: int,
    config: Optional[SsdConfig] = None,
    label: str = "",
    jobs: Optional[int] = None,
) -> CampaignResult:
    """One engine-backed campaign (``REPRO_BENCH_JOBS`` controls workers).

    The shard plan is fixed (``BENCH_SHARD_FAULTS`` per shard) so the
    result is identical for any job count; budgets at or below the shard
    size run as one shard seeded exactly like the legacy serial runner.
    """
    plan = CampaignPlan(
        spec=spec,
        faults=faults,
        device=config,
        base_seed=seed,
        label=label or spec.describe(),
        shard_faults=BENCH_SHARD_FAULTS,
    )
    return run_engine_plan(plan, jobs=jobs)


def run_engine_plan(plan: CampaignPlan, jobs: Optional[int] = None) -> CampaignResult:
    """Run any engine plan under the bench environment knobs.

    Works for :class:`CampaignPlan` and its subclasses (the stress
    harness's ``DirtyCyclePlan`` runs through here unchanged): checkpoint,
    trace, retry, timeout, and distributed-worker env vars all apply, and
    none of them affect result numbers.
    """
    jobs = bench_jobs() if jobs is None else max(1, jobs)
    checkpoint = _checkpoint_path(plan.label)
    trace = _trace_path(plan.label)
    if trace is not None:
        _emit_follow_hint(bench_trace_dir())
    tracer = TraceWriter(trace) if trace is not None else None
    try:
        return run_plan(
            plan,
            jobs=jobs,
            progress=tracer,
            checkpoint=checkpoint,
            resume=checkpoint is not None,
            max_retries=bench_max_retries(),
            shard_timeout_s=bench_shard_timeout(),
            listen=bench_listen(),
        )
    finally:
        if tracer is not None:
            tracer.close()


BENCH_JSON_SCHEMA = 1
"""Version tag of the one-line ``BENCH_<name>.json`` record (see DESIGN.md,
"Hot path & performance baselines").  Bump when fields change meaning."""


def git_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(Path(__file__).parent),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def count_fault_cycles(results) -> int:
    """Total injected fault cycles inside a bench's result structure.

    Benches return dicts (possibly nested) whose leaves are
    :class:`CampaignResult`; anything else contributes zero cycles.
    """
    if isinstance(results, CampaignResult):
        return results.faults
    if isinstance(results, dict):
        return sum(count_fault_cycles(value) for value in results.values())
    if isinstance(results, (list, tuple)):
        return sum(count_fault_cycles(value) for value in results)
    return 0


def bench_json_record(name: str, cycles: int, wall_s: float) -> Dict[str, object]:
    """The machine-readable perf record emitted as ``BENCH_<name>.json``.

    One flat JSON object per bench family — cycles/sec is the number the
    perf gate compares (see ``scripts/perf_smoke.py``); everything else is
    provenance so a committed baseline says where it came from.
    """
    return {
        "schema": BENCH_JSON_SCHEMA,
        "bench": name,
        "cycles": cycles,
        "wall_s": round(wall_s, 3),
        "cycles_per_sec": round(cycles / wall_s, 4) if wall_s > 0 else 0.0,
        "scale": bench_scale(),
        "jobs": bench_jobs(),
        "git_rev": git_rev(),
        "python": "%d.%d.%d" % sys.version_info[:3],
    }


def write_bench_json(record: Dict[str, object], path) -> None:
    """Write one perf record as a single-line JSON file."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(record, sort_keys=True) + "\n")


def print_banner(title: str, anchor_keys: List[str]) -> None:
    """Print the experiment header plus its calibration anchors."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    for key in anchor_keys:
        anchor = calibration.ANCHORS[key]
        print(f"  paper anchor [{key}]: {anchor.value} {anchor.unit} — {anchor.paper_anchor}")


def summarize_rows(results: Dict[str, CampaignResult]) -> List[List]:
    """Standard result rows: label, faults, failures, rates."""
    rows = []
    for label, result in results.items():
        summary = result.summary()
        rows.append(
            [
                label,
                summary["faults"],
                summary["data_failures"],
                summary["fwa"],
                summary["io_errors"],
                summary["loss_per_fault"],
            ]
        )
    return rows


RESULT_HEADERS = ["workload", "faults", "data failures", "FWA", "IO errors", "loss/fault"]
