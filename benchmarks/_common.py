"""Shared helpers for the reproduction benches.

Every bench regenerates one table or figure of the paper: it runs the
corresponding campaign(s), prints the measured rows next to the paper's
anchors, and asserts the *shape* claims (who wins, roughly by what factor,
where crossovers fall) — absolute counts are not expected to match a
hardware testbed.

Scaling: the paper's campaigns run 200-800 faults per experiment.  Set
``REPRO_BENCH_SCALE`` (default 0.04) to scale the *fault count*; the cycle
length is never scaled because per-fault statistics need the stranded-update
population at steady state (see ``repro.core.calibration``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.core import calibration
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.platform import TestPlatform
from repro.core.results import CampaignResult
from repro.ssd.device import SsdConfig
from repro.workload.spec import WorkloadSpec


def bench_scale() -> float:
    """Campaign scale factor from the environment (paper scale = 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))


def fault_budget(experiment_key: str) -> int:
    """Scaled fault count for one of the paper's experiment families."""
    paper = calibration.PAPER_FAULTS.get(experiment_key, 300)
    return calibration.scaled_faults(paper, bench_scale())


def run_campaign(
    spec: WorkloadSpec,
    faults: int,
    seed: int,
    config: Optional[SsdConfig] = None,
    label: str = "",
) -> CampaignResult:
    """One campaign on a fresh platform."""
    platform = TestPlatform(spec, config=config, seed=seed)
    campaign = Campaign(platform, CampaignConfig(faults=faults))
    return campaign.run(label or spec.describe())


def print_banner(title: str, anchor_keys: List[str]) -> None:
    """Print the experiment header plus its calibration anchors."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    for key in anchor_keys:
        anchor = calibration.ANCHORS[key]
        print(f"  paper anchor [{key}]: {anchor.value} {anchor.unit} — {anchor.paper_anchor}")


def summarize_rows(results: Dict[str, CampaignResult]) -> List[List]:
    """Standard result rows: label, faults, failures, rates."""
    rows = []
    for label, result in results.items():
        summary = result.summary()
        rows.append(
            [
                label,
                summary["faults"],
                summary["data_failures"],
                summary["fwa"],
                summary["io_errors"],
                summary["loss_per_fault"],
            ]
        )
    return rows


RESULT_HEADERS = ["workload", "faults", "data failures", "FWA", "IO errors", "loss/fault"]
