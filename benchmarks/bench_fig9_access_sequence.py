"""Fig. 9 — Impact of access sequence (RAR / RAW / WAR / WAW).

Paper: paired accesses where the second op targets the previously completed
request's address.  WAW shows by far the most failures (a fault after a WAW
pair can take out both the new write AND the previously written data at the
same address); RAW and WAR show moderate counts with considerable FWA; RAR
shows no data failure at all — only IO errors.
"""

from _common import (
    RESULT_HEADERS,
    fault_budget,
    print_banner,
    run_campaign,
    summarize_rows,
)

from repro.analysis import ascii_bar_series, ascii_table
from repro.units import GIB
from repro.workload.spec import WorkloadSpec

SEQUENCES = ["RAW", "WAR", "RAR", "WAW"]  # the paper's x-axis order


def regenerate_fig9():
    faults = max(3, fault_budget("fig9_sequences") // len(SEQUENCES))
    results = {}
    for index, sequence in enumerate(SEQUENCES):
        spec = WorkloadSpec(
            wss_bytes=32 * GIB,
            sequence=sequence,
            outstanding=16,
        )
        results[sequence] = run_campaign(
            spec, faults=faults, seed=900 + index, label=sequence
        )
    return results


def test_fig9_access_sequence(benchmark):
    results = benchmark.pedantic(regenerate_fig9, rounds=1, iterations=1)

    print_banner("Fig. 9: impact of access sequence", [])
    rows = summarize_rows(results)
    print(ascii_table(RESULT_HEADERS, rows))
    losses = {k: results[k].data_loss_per_fault for k in SEQUENCES}
    print()
    print(
        ascii_bar_series(
            SEQUENCES,
            [losses[k] for k in SEQUENCES],
            title="data loss per power fault by sequence (paper: WAW >> RAW~WAR, RAR=0)",
        )
    )

    # Shape 1: RAR never loses data, but IO errors persist.
    assert results["RAR"].total_data_loss == 0
    assert results["RAR"].io_errors > 0
    # Shape 2: WAW dominates every other sequence.
    assert losses["WAW"] > losses["RAW"]
    assert losses["WAW"] > losses["WAR"]
    assert losses["WAW"] >= 1.5 * max(losses["RAW"], losses["WAR"]), losses
    # Shape 3: the write-containing pairs (RAW, WAR) both lose data, with
    # FWA present (the paper: 'considerable number of failures from FWA').
    assert losses["RAW"] > 0 and losses["WAR"] > 0
    assert results["WAW"].fwa_failures > 0
