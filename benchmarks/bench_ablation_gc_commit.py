"""Ablation — the GC relocate-before-commit hole vs its config-gated fix.

ROADMAP's "known FTL durability hole": GC relocates a victim block's
valid pages and erases the source, but the new bindings stay *volatile*
until the next periodic map-journal commit.  A power fault inside that
window rolls every relocated LPN back to a binding inside the erased
block — data the host had flushed is gone.  ``gc_commit_on_relocate``
commits the journal between relocation and erase, closing the window.

This ablation runs the zero-luck scenario (OOB recovery probabilities
0.0, periodic timer parked) both ways and shows the contrast is exact:
with the knob off every relocated page is lost, with it on nothing is.
The knob defaults **off** because the paper's §IV stranded-update
statistics — and the calibrated tests — assume the periodic timer is the
only commit cadence.
"""

import random
from dataclasses import dataclass

from _common import print_banner

from repro.analysis import ascii_table
from repro.ftl import Ftl, FtlConfig
from repro.nand import FlashChip, NandGeometry
from repro.nand.chip import PageState
from repro.sim import Kernel
from repro.units import SEC


@dataclass
class GcCommitPoint:
    """One knob setting's outcome across a GC + power-fault cycle."""

    commit_on_relocate: bool
    pages_relocated: int
    stranded_updates: int
    lost_updates: int
    flushed_pages_lost: int


def _zero_luck_ftl(commit_on_relocate):
    kernel = Kernel()
    geometry = NandGeometry(
        channels=1,
        dies_per_channel=1,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=8,
    )
    chip = FlashChip(kernel, geometry, rng=random.Random(0))
    config = FtlConfig(
        mapping_policy="page",
        journal_commit_interval_us=100 * SEC,
        page_recovery_prob=0.0,
        extent_recovery_prob=0.0,
        gc_low_watermark=2,
        gc_high_watermark=5,
        gc_commit_on_relocate=commit_on_relocate,
    )
    ftl = Ftl(kernel, chip, config, random.Random(1))
    ftl.start()
    return chip, ftl


def _run_one(commit_on_relocate):
    chip, ftl = _zero_luck_ftl(commit_on_relocate)
    expected = {}
    for lpn in range(64):
        plan = ftl.prepare_write([lpn])
        ftl.commit_write(plan, tokens=[1000 + lpn])
        expected[lpn] = 1000 + lpn
    for lpn in range(0, 64, 2):
        plan = ftl.prepare_write([lpn])
        ftl.commit_write(plan, tokens=[2000 + lpn])
        expected[lpn] = 2000 + lpn
    ftl.checkpoint()  # every binding durable: this is *flushed* data
    ftl.gc.run()
    ftl.power_loss()
    chip.power_loss()
    chip.power_on()
    report = ftl.power_on_recover()
    lost = sum(
        1
        for lpn, token in expected.items()
        if (read := ftl.read(lpn)).state is PageState.ERASED or read.token != token
    )
    return GcCommitPoint(
        commit_on_relocate=commit_on_relocate,
        pages_relocated=ftl.gc.pages_relocated,
        stranded_updates=report.stranded_updates,
        lost_updates=report.lost_updates,
        flushed_pages_lost=lost,
    )


def regenerate_gc_commit_ablation():
    return {knob: _run_one(knob) for knob in (False, True)}


def test_ablation_gc_commit_on_relocate(benchmark):
    results = benchmark.pedantic(
        regenerate_gc_commit_ablation, rounds=1, iterations=1
    )

    # No paper anchor: the hole is a model property the paper's §IV
    # statistics depend on, not a number the paper reports.
    print_banner(
        "Ablation: GC relocate-before-commit hole vs gc_commit_on_relocate", []
    )
    rows = [
        [
            "on" if point.commit_on_relocate else "off (default)",
            point.pages_relocated,
            point.stranded_updates,
            point.flushed_pages_lost,
        ]
        for point in results.values()
    ]
    print(
        ascii_table(
            ["gc_commit_on_relocate", "relocated", "stranded", "flushed lost"],
            rows,
        )
    )

    hole, fixed = results[False], results[True]
    # Both runs relocate the same pages; only the commit point differs.
    assert hole.pages_relocated == fixed.pages_relocated > 0
    # Knob off: every relocated page is stranded and lost (zero luck).
    assert hole.stranded_updates == hole.pages_relocated
    assert hole.flushed_pages_lost == hole.pages_relocated
    # Knob on: no volatile window exists, nothing is lost.
    assert fixed.stranded_updates == 0
    assert fixed.flushed_pages_lost == 0
