"""Cache-topology fault campaigns: WB vs WT vs mirrored-WB as a perf family.

Not a figure from the paper — this regenerates the enterprise scenario of
Ahmadian et al.'s follow-up (PAPERS.md, arXiv:1912.01555) on this repo's
platform: an SSD cache tier in front of a durable backing store, power
faults injected against the *topology* (see ``repro.topology``), every
acknowledged host write classified device-intact / topology-recovered /
application-visible loss.  Three configurations under identical fault
schedules:

- ``wt``        — write-through, single cache leg, shared PDU;
- ``wb``        — write-back, single cache leg, shared PDU;
- ``wb-mirror`` — write-back, mirrored cache legs on independent rails.

Shape asserts encode the headline contrast: write-through never loses an
acknowledged write, write-back converts device-level FWA into
application-visible loss, and mirrored cache legs on independent power
rails recover every device-level FWA.
"""

from _common import fault_budget, print_banner, run_engine_plan, BENCH_SHARD_FAULTS

from repro.analysis import ascii_table
from repro.ftl import FtlConfig
from repro.ssd.device import SsdConfig
from repro.topology import TopologyPlan
from repro.units import GIB, KIB, MSEC
from repro.workload.spec import WorkloadSpec

BASE_SEED = 7

CONFIGS = {
    "wt": dict(policy="wt", mirror_cache=False, shared_power=True),
    "wb": dict(policy="wb", mirror_cache=False, shared_power=True),
    "wb-mirror": dict(policy="wb", mirror_cache=True, shared_power=False),
}


def cache_leg_config():
    """A hostile cache-leg device: long journal commit, no lucky recovery.

    The same deliberately-weak FTL the mirror tests use — it makes the
    device-level FWA signal deterministic so the topology contrast is about
    *where redundancy lives*, not about FTL recovery luck.
    """
    return SsdConfig(
        name="cache-leg",
        capacity_bytes=2 * GIB,
        init_time_us=50 * MSEC,
        ftl=FtlConfig(
            journal_commit_interval_us=10_000 * MSEC,
            page_recovery_prob=0.0,
            extent_recovery_prob=0.0,
        ),
    )


def regenerate_cache_topology():
    cycles = max(3, fault_budget("cache_topology"))
    spec = WorkloadSpec(
        wss_bytes=1 * GIB,
        read_fraction=0.0,
        size_min_bytes=4 * KIB,
        size_max_bytes=64 * KIB,
    )
    results = {}
    for label, knobs in CONFIGS.items():
        plan = TopologyPlan(
            spec=spec,
            faults=cycles,
            device=cache_leg_config(),
            base_seed=BASE_SEED,
            label=f"cache_topology {label}",
            shard_faults=min(BENCH_SHARD_FAULTS, cycles),
            **knobs,
        )
        results[label] = run_engine_plan(plan)
    return results


def test_cache_topology(benchmark):
    results = benchmark.pedantic(regenerate_cache_topology, rounds=1, iterations=1)

    print_banner(
        "Cache topologies: WB vs WT vs mirrored-WB under identical faults",
        ["wt_zero_app_loss", "wb_mirror_recovers_all_fwa"],
    )
    print(
        ascii_table(
            ["topology", "acked", "intact", "recovered", "app loss", "IO errors"],
            [
                [
                    label,
                    r.requests_completed,
                    r.intact_writes,
                    r.topology_recovered,
                    r.fwa_failures,
                    r.io_errors,
                ]
                for label, r in results.items()
            ],
        )
    )

    # Every acked write is classified, cycle by cycle: the audit partition
    # (intact | topology-recovered | app-visible loss) covers the acked set.
    for result in results.values():
        for cycle in result.cycles:
            assert (
                cycle.intact_writes + cycle.topology_recovered + cycle.fwa_failures
                == cycle.writes_completed
            ), cycle
    # Write-through: the ACK waits for the durable tier, so a cache-tier
    # fault can never lose an acknowledged write.
    assert results["wt"].fwa_failures == 0
    # Write-back on a shared PDU: device-level FWA in the cache leg becomes
    # application-visible loss (the enterprise failure mode).
    assert results["wb"].fwa_failures > 0
    # Mirrored cache legs on independent rails: device-level FWAs still
    # happen (the faulted leg loses its copy) but the topology recovers
    # every one from the surviving leg or the backing store.
    assert results["wb-mirror"].topology_recovered > 0
    assert results["wb-mirror"].fwa_failures == 0
