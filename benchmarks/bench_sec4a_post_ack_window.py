"""§IV-A — Data loss as a function of time after request completion.

Paper: the fault is injected at a varying interval after the request's ACK;
"on average 700 ms after receiving ACK signal of the request in application
layer, the power fault can corrupt the corresponding request."  I.e. there
is a vulnerability window of roughly 700 ms after completion; beyond it the
data is durable.

The per-request loss probability of real drives is small, so resolving the
window shape at paper scale needs thousands of trials; the bench uses the
amplified-firmware device (weak recovery scan) — that raises the magnitude
without moving the boundary, which is set by the map journal's commit
interval (calibrated to 700 ms).
"""

from _common import print_banner

from repro.analysis import ascii_bar_series, ascii_table
from repro.core.experiment import run_post_ack_sweep

INTERVALS_MS = [50, 250, 450, 800, 1000]
WINDOW_MS = 700
# The commit period starts at the *first map update* of the burst, while
# intervals are measured from the *last ACK*; requests ACKed late in the
# burst see an effectively shorter window, so points within one burst-span
# of the boundary (~450-700 ms) are mixed and not asserted on.
CLEARLY_INSIDE_MS = 300


def regenerate_sec4a():
    return run_post_ack_sweep(
        intervals_ms=INTERVALS_MS,
        cycles_per_point=3,
        burst_requests=30,
        seed=41,
    )


def test_sec4a_post_ack_window(benchmark):
    points = benchmark.pedantic(regenerate_sec4a, rounds=1, iterations=1)

    print_banner(
        "§IV-A: vulnerability window after request completion",
        ["post_ack_window_ms"],
    )
    print(
        ascii_table(
            ["interval after ACK (ms)", "ACKed", "lost", "loss fraction"],
            [
                [p.interval_ms, p.acked_requests, p.lost_requests, f"{p.loss_fraction:.3f}"]
                for p in points
            ],
        )
    )
    print()
    print(
        ascii_bar_series(
            [f"{p.interval_ms}ms" for p in points],
            [p.loss_fraction for p in points],
            title="loss fraction vs post-ACK interval (paper: window up to ~700 ms)",
        )
    )

    clearly_inside = [p for p in points if p.interval_ms <= CLEARLY_INSIDE_MS]
    outside = [p for p in points if p.interval_ms > WINDOW_MS]
    # Shape 1: completed, ACKed requests still lose data inside the window.
    assert all(p.loss_fraction > 0 for p in clearly_inside), [
        (p.interval_ms, p.lost_requests) for p in clearly_inside
    ]
    # Shape 2: beyond ~700 ms the data is durable.
    assert all(p.lost_requests == 0 for p in outside), [
        (p.interval_ms, p.lost_requests) for p in outside
    ]
    # Shape 3: vulnerability never grows with the interval.
    fractions = [p.loss_fraction for p in points]
    assert all(a >= b - 0.05 for a, b in zip(fractions, fractions[1:])), fractions
