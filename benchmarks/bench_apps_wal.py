"""WAL application campaign as a perf family: fsync vs no-fsync contrast.

Not a figure from the paper — this runs the application-level fault
propagation harness (see ``repro.apps``): a write-ahead-log database doing
transactions against the journaling filesystem on a *hostile* device (map
journal only commits at FLUSH, zero recovery luck), power-faulted every
cycle, every acknowledged commit audited semantically after recovery.

Two legs under identical fault schedules:

- ``wal-fsync``    — COMMIT acked only after fsync; the paper's remedy.
- ``wal-nofsync``  — COMMIT acked from the page cache; the paper's FWA
  failure mode surfaced at application level.

Shape asserts encode the headline contrast: with fsync no acknowledged
commit is ever lost; without it commits are lost, and (because records are
CRC-sealed) every loss is *detected* — never silent corruption.

This family doubles as the perf gate for the app harness hot path
(``PERF_SMOKE_FAMILY=apps_wal``): each cycle boots a host, mounts the
filesystem, runs the app protocol, faults, remounts, and audits, so
cycles/sec tracks the whole app-cycle stack.
"""

from _common import fault_budget, print_banner, run_engine_plan, BENCH_SHARD_FAULTS

from repro.analysis import ascii_table
from repro.apps import AppPlan
from repro.ftl import FtlConfig
from repro.ssd.device import SsdConfig
from repro.units import GIB, MSEC
from repro.workload.spec import WorkloadSpec

BASE_SEED = 23

LEGS = {
    "wal-fsync": True,
    "wal-nofsync": False,
}


def hostile_config():
    """Zero-luck FTL so durability results are protocol, not fortune."""
    return SsdConfig(
        name="hostile",
        capacity_bytes=1 * GIB,
        init_time_us=30 * MSEC,
        ftl=FtlConfig(
            journal_commit_interval_us=10_000 * MSEC,
            page_recovery_prob=0.0,
            extent_recovery_prob=0.0,
        ),
    )


def regenerate_apps_wal():
    cycles = max(4, fault_budget("apps_wal"))
    results = {}
    for label, fsync in LEGS.items():
        plan = AppPlan(
            spec=WorkloadSpec(),
            faults=cycles,
            device=hostile_config(),
            base_seed=BASE_SEED,
            label=f"apps_wal {label}",
            shard_faults=min(BENCH_SHARD_FAULTS, cycles),
            warmup_us=40 * MSEC,
            fault_window_us=150 * MSEC,
            app="wal",
            app_fsync=fsync,
        )
        results[label] = run_engine_plan(plan)
    return results


def test_apps_wal(benchmark):
    results = benchmark.pedantic(regenerate_apps_wal, rounds=1, iterations=1)

    print_banner(
        "WAL database under power faults: fsync vs no-fsync, audited",
        ["wal_fsync_zero_commit_loss"],
    )
    print(
        ascii_table(
            ["leg", "promises", "intact", "torn-rec", "loss", "silent", "rec-fail"],
            [
                [
                    label,
                    r.app_promises,
                    r.app_intact,
                    r.app_torn_recovered,
                    r.app_committed_loss,
                    r.app_silent_corruption,
                    r.app_recovery_failed,
                ]
                for label, r in results.items()
            ],
        )
    )

    # The semantic audit partitions every promise, cycle by cycle.
    for result in results.values():
        for cycle in result.cycles:
            assert (
                cycle.app_intact
                + cycle.app_torn_recovered
                + cycle.app_committed_loss
                + cycle.app_silent_corruption
                + cycle.app_recovery_failed
                == cycle.app_promises
            ), cycle
    # fsync: acked commits survive every fault on the hostile device.
    assert results["wal-fsync"].app_promises > 0
    assert results["wal-fsync"].app_committed_loss == 0
    assert results["wal-fsync"].app_recovery_failed == 0
    # no fsync: the paper's FWA becomes application-visible committed loss —
    # and the CRC-sealed log detects all of it (no silent corruption).
    assert results["wal-nofsync"].app_committed_loss > 0
    assert results["wal-nofsync"].app_silent_corruption == 0
