"""Fig. 5 — Impact of request type (read percentage) on data failures.

Paper: random 4 KiB-1 MiB requests, read % in {0, 20, 50, 80, 100}; ≥300
faults over 24 000 requests.  Data failures shrink as the read share grows;
the fully-read workload shows **no** data failure but still suffers IO
errors; write-heavy workloads lose ~2 requests per fault.
"""

from _common import (
    RESULT_HEADERS,
    fault_budget,
    print_banner,
    run_campaign,
    summarize_rows,
)

from repro.analysis import ascii_bar_series, ascii_table
from repro.analysis.stats import is_monotone_decreasing
from repro.units import GIB
from repro.workload.spec import WorkloadSpec

READ_PERCENTAGES = [0, 20, 50, 80, 100]


def regenerate_fig5():
    faults = max(3, fault_budget("fig5_request_type") // len(READ_PERCENTAGES))
    results = {}
    for index, read_pct in enumerate(READ_PERCENTAGES):
        spec = WorkloadSpec(
            wss_bytes=32 * GIB,
            read_fraction=read_pct / 100.0,
            outstanding=16,
        )
        results[read_pct] = run_campaign(
            spec, faults=faults, seed=500 + index, label=f"read={read_pct}%"
        )
    return results


def test_fig5_request_type(benchmark):
    results = benchmark.pedantic(regenerate_fig5, rounds=1, iterations=1)

    print_banner(
        "Fig. 5: impact of request type (read %)",
        ["failures_per_fault_write_mixed"],
    )
    rows = summarize_rows({f"read={k}%": v for k, v in results.items()})
    print(ascii_table(RESULT_HEADERS, rows))
    print()
    print(
        ascii_bar_series(
            [f"read={k}%" for k in READ_PERCENTAGES],
            [results[k].data_loss_per_fault for k in READ_PERCENTAGES],
            title="data loss per power fault (paper: decreasing, 0 at 100% read)",
        )
    )

    losses = [results[k].data_loss_per_fault for k in READ_PERCENTAGES]
    # Shape 1: fully-read workloads lose no data...
    assert results[100].total_data_loss == 0
    # ...but still see IO errors from device unavailability.
    assert results[100].io_errors > 0
    # Shape 2: more writes, more loss — write-only strictly beats read-only
    # and the trend is (loosely) monotone.
    assert losses[0] > 0
    assert losses[0] >= max(losses[2:]) * 0.9
    assert is_monotone_decreasing(losses, slack=0.6)
    # Shape 3: write-heavy loss per fault is in the paper's ballpark
    # (~2/fault; we accept a generous band for the simulation substrate).
    assert 0.5 <= losses[0] <= 12.0
