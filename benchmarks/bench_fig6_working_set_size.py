"""Fig. 6 — Impact of workload Working Set Size (WSS) on data failures.

Paper: WSS from 1 GB to 90 GB, sizes 4 KiB-1 MiB, uniform random writes,
≥200 faults over 16 000 requests.  WSS has **no significant impact** on the
failure ratio — the flat line is the result.
"""

from _common import (
    RESULT_HEADERS,
    fault_budget,
    print_banner,
    run_campaign,
    summarize_rows,
)

from repro.analysis import ascii_bar_series, ascii_table, relative_spread
from repro.analysis.stats import mean
from repro.units import GIB
from repro.workload.spec import WorkloadSpec

WSS_GIB = [1, 10, 30, 60, 90]


def regenerate_fig6():
    faults = max(8, fault_budget("fig6_wss") // len(WSS_GIB))
    results = {}
    for index, wss in enumerate(WSS_GIB):
        spec = WorkloadSpec(
            wss_bytes=wss * GIB,
            read_fraction=0.0,
            outstanding=16,
        )
        results[wss] = run_campaign(
            spec, faults=faults, seed=600 + index, label=f"wss={wss}GiB"
        )
    return results


def test_fig6_working_set_size(benchmark):
    results = benchmark.pedantic(regenerate_fig6, rounds=1, iterations=1)

    print_banner(
        "Fig. 6: impact of working set size (paper: flat — no impact)", []
    )
    rows = summarize_rows({f"wss={k}GiB": v for k, v in results.items()})
    print(ascii_table(RESULT_HEADERS, rows))
    losses = [results[k].data_loss_per_fault for k in WSS_GIB]
    print()
    print(
        ascii_bar_series(
            [f"{k}GiB" for k in WSS_GIB],
            losses,
            title="data loss per power fault vs WSS (paper: flat)",
        )
    )

    # Shape: every WSS shows data loss...
    assert all(loss > 0 for loss in losses)
    center = mean(losses)
    assert center > 0
    # ...and there is NO systematic trend with WSS: the series is neither
    # monotonically increasing nor decreasing, and no point leaves the
    # statistical-noise band around the mean.  (A 90x WSS sweep with a real
    # dependence would show a consistent direction.)
    from repro.analysis.stats import is_monotone_decreasing, is_monotone_increasing

    assert not is_monotone_increasing(losses, slack=0.01), losses
    assert not is_monotone_decreasing(losses, slack=0.01), losses
    for loss in losses:
        assert abs(loss - center) <= max(1.6 * center, 5.0), (losses, center)
