"""Ablation — the map-journal commit interval sets the §IV-A window.

DESIGN.md design-choice #4: the post-ACK vulnerability window is bounded by
how long mapping-table updates stay volatile.  The paper measured ~700 ms on
its drives; this ablation re-runs the §IV-A sweep with the journal interval
set to 250 ms and to the calibrated 700 ms and shows the window boundary
*moves with the interval* — i.e. the mechanism, not a coincidence, produces
the number.
"""

import dataclasses

from _common import print_banner

from repro.analysis import ascii_table
from repro.core.experiment import amplified_firmware_config, run_post_ack_sweep
from repro.units import MSEC

INTERVALS_MS = [50, 400, 900]


def config_with_journal(journal_ms):
    base = amplified_firmware_config()
    return dataclasses.replace(
        base,
        ftl=dataclasses.replace(
            base.ftl, journal_commit_interval_us=journal_ms * MSEC
        ),
    )


def regenerate_journal_ablation():
    from repro.units import GIB, KIB
    from repro.workload.spec import WorkloadSpec

    # A fast 4 KiB burst (~5 ms) so the post-ACK interval, not the burst
    # duration, dominates the distance to the commit point.
    spec = WorkloadSpec(
        wss_bytes=4 * GIB,
        read_fraction=0.0,
        size_min_bytes=4 * KIB,
        size_max_bytes=4 * KIB,
        outstanding=8,
    )
    results = {}
    for journal_ms in (250, 700):
        points = run_post_ack_sweep(
            intervals_ms=INTERVALS_MS,
            cycles_per_point=3,
            burst_requests=25,
            seed=60 + journal_ms,
            config=config_with_journal(journal_ms),
            spec=spec,
        )
        results[journal_ms] = points
    return results


def test_ablation_journal_interval(benchmark):
    results = benchmark.pedantic(regenerate_journal_ablation, rounds=1, iterations=1)

    print_banner(
        "Ablation: map-journal commit interval vs the post-ACK window",
        ["post_ack_window_ms"],
    )
    rows = []
    for journal_ms, points in results.items():
        for point in points:
            rows.append(
                [
                    f"{journal_ms}ms journal",
                    point.interval_ms,
                    point.acked_requests,
                    point.lost_requests,
                    f"{point.loss_fraction:.3f}",
                ]
            )
    print(
        ascii_table(
            ["device", "interval after ACK (ms)", "ACKed", "lost", "loss fraction"],
            rows,
        )
    )

    short = {p.interval_ms: p for p in results[250]}
    calibrated = {p.interval_ms: p for p in results[700]}
    # Both devices are vulnerable right after ACK.
    assert short[50].loss_fraction > 0
    assert calibrated[50].loss_fraction > 0
    # At 400 ms the short-journal device has already committed (safe) while
    # the calibrated one is still inside its window.
    assert short[400].lost_requests == 0
    assert calibrated[400].loss_fraction > 0
    # Beyond both windows, both are safe.
    assert short[900].lost_requests == 0
    assert calibrated[900].lost_requests == 0