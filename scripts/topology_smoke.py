#!/usr/bin/env python
"""End-to-end cache-topology smoke test (used by CI).

Two legs:

A. **WB-vs-WT contrast** — the headline claim of the topology subsystem,
   on the weak ``ssd-c`` preset so device-level FWA is plentiful:

   - write-through, shared PDU: zero application-visible loss (the ACK
     waits for the durable tier);
   - write-back, shared PDU: nonzero application-visible loss (acked
     dirty pages existed nowhere durable when the rack section died);
   - write-back, mirrored legs on independent rails: zero
     application-visible loss *and* nonzero topology-recovered writes
     (device FWAs still happen; the surviving leg covers every one).

B. **Determinism + crash safety** — a checkpointed jobs=1 run of the
   mirrored-WB campaign is SIGTERMed mid-flight and resumed; its summary
   table must be byte-identical to an uninterrupted jobs=4 run.

The engine trace of leg B is written to ``TOPOLOGY_SMOKE_ARTIFACT_DIR``
when set (CI uploads it as an artifact).

Exit code 0 on success, 1 on any mismatch.  Run from the repo root:

    PYTHONPATH=src python scripts/topology_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ARTIFACT_DIR_ENV = "TOPOLOGY_SMOKE_ARTIFACT_DIR"
FAULT_ENV = "REPRO_ENGINE_TEST_FAULT"

CONTRAST_ARGS = [
    "--device", "ssd-c",
    "--faults", "3",
    "--seed", "7",
]

ACCEPTANCE_ARGS = [
    "topology", "run",
    "--policy", "wb",
    "--mirror-cache",
    "--device", "ssd-c",
    "--faults", "6",
    "--shard-cycles", "1",
    "--seed", "11",
    "--outstanding", "8",
]


def cli_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(args, env):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )


def summary_table(stdout):
    return [
        line
        for line in stdout.splitlines()
        if line.strip() and not line.startswith("running ")
    ]


def summary_value(stdout, column):
    """Pull one column's value out of the rendered summary table."""
    lines = stdout.splitlines()
    for index, line in enumerate(lines):
        cells = [c.strip() for c in line.split("|")]
        if column in cells:
            values = [c.strip() for c in lines[index + 2].split("|")]
            return values[cells.index(column)]
    raise AssertionError(f"column {column!r} not found in output:\n{stdout}")


def leg_policy_contrast(env):
    """Leg A: WT zero loss, WB nonzero loss, mirrored-WB zero loss again."""
    wt = run_cli(
        ["topology", "run", "--policy", "wt", "--shared-power", *CONTRAST_ARGS],
        env,
    )
    if wt.returncode != 0:
        print(f"FAIL: WT leg exited {wt.returncode}\n{wt.stderr}")
        return False
    loss = summary_value(wt.stdout, "app_visible_loss")
    if loss != "0":
        print(f"FAIL: WT lost acked writes (app_visible_loss = {loss})")
        return False
    print("leg A ok: write-through, shared PDU, zero app-visible loss")

    wb = run_cli(
        ["topology", "run", "--policy", "wb", "--shared-power", *CONTRAST_ARGS],
        env,
    )
    if wb.returncode != 0:
        print(f"FAIL: WB leg exited {wb.returncode}\n{wb.stderr}")
        return False
    loss = summary_value(wb.stdout, "app_visible_loss")
    if int(loss) <= 0:
        print("FAIL: WB on a shared PDU shows no app-visible loss")
        return False
    print(f"leg A ok: write-back, shared PDU, {loss} acked writes lost")

    mirror = run_cli(
        ["topology", "run", "--policy", "wb", "--mirror-cache", *CONTRAST_ARGS],
        env,
    )
    if mirror.returncode != 0:
        print(f"FAIL: mirrored leg exited {mirror.returncode}\n{mirror.stderr}")
        return False
    loss = summary_value(mirror.stdout, "app_visible_loss")
    recovered = summary_value(mirror.stdout, "topology_recovered")
    if loss != "0":
        print(f"FAIL: mirrored WB lost acked writes (app_visible_loss = {loss})")
        return False
    if int(recovered) <= 0:
        print("FAIL: mirrored WB shows no topology-recovered writes")
        return False
    print(
        f"leg A ok: mirrored write-back, split rails, {recovered} device FWAs "
        "recovered, zero app-visible loss"
    )
    return True


def leg_interrupt_resume(env, artifact_dir):
    """Leg B: SIGTERM + --resume vs uninterrupted jobs=4, byte-identical."""
    checkpoint = artifact_dir / "ck.jsonl"
    trace = artifact_dir / "topology.trace.jsonl"

    slow_env = dict(env)
    slow_env[FAULT_ENV] = "slow:*:*:0.8"  # widen the interrupt window
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *ACCEPTANCE_ARGS,
         "--jobs", "1", "--checkpoint", str(checkpoint),
         "--trace", str(trace)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=slow_env,
    )
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline and proc.poll() is None:
        if checkpoint.exists() and checkpoint.stat().st_size > 0:
            break
        time.sleep(0.1)
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        _, err = proc.communicate(timeout=300)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        print("FAIL: interrupted topology run did not exit after SIGTERM")
        return False

    if proc.returncode == 130:
        print(f"interrupted mid-run (exit 130): {err.strip().splitlines()[-1]}")
    elif proc.returncode == 0:
        print("topology run finished before the signal landed; resume is a no-op run")
    else:
        print(f"FAIL: unexpected exit {proc.returncode}\n{err}")
        return False

    resumed = run_cli(
        ACCEPTANCE_ARGS + ["--jobs", "1", "--checkpoint", str(checkpoint),
                           "--resume"],
        env,
    )
    if resumed.returncode != 0:
        print(f"FAIL: resume exited {resumed.returncode}\n{resumed.stderr}")
        return False
    print(f"resume: {resumed.stderr.strip() or '(no shards needed resuming)'}")

    parallel = run_cli(ACCEPTANCE_ARGS + ["--jobs", "4"], env)
    if parallel.returncode != 0:
        print(f"FAIL: jobs=4 run exited {parallel.returncode}\n{parallel.stderr}")
        return False

    if summary_table(resumed.stdout) != summary_table(parallel.stdout):
        print("FAIL: resumed jobs=1 summary differs from uninterrupted jobs=4")
        print("--- resumed jobs=1 ---")
        print(resumed.stdout)
        print("--- jobs=4 ---")
        print(parallel.stdout)
        return False
    print("leg B ok: SIGTERM + --resume matches uninterrupted jobs=4 exactly")

    loss = summary_value(parallel.stdout, "app_visible_loss")
    if loss != "0":
        print(f"FAIL: mirrored-WB acceptance run lost writes ({loss})")
        return False
    unsafe = summary_value(parallel.stdout, "unsafe_shutdowns")
    if unsafe != "6":
        print(f"FAIL: unsafe_shutdowns = {unsafe}, expected 6 (one per fault)")
        return False
    print(f"leg B ok: {unsafe} unsafe shutdowns for 6 faults, zero loss")
    return True


def main():
    env = cli_env()
    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(os.environ.get(ARTIFACT_DIR_ENV) or tmp)
        artifact_dir.mkdir(parents=True, exist_ok=True)
        if not leg_policy_contrast(env):
            return 1
        if not leg_interrupt_resume(env, artifact_dir):
            return 1
    print("OK: cache-topology subsystem verified end to end")
    return 0


if __name__ == "__main__":
    sys.exit(main())
