#!/usr/bin/env python
"""End-to-end dirty-power-cycle smoke test (used by CI).

Three legs:

A. **Protection contrast, protected side** — 3 dirty cycles against the
   supercap-backed ``ssd-enterprise-plp`` preset under a paced 4 KiB write
   load: the SMART unsafe-shutdown counter must read exactly 3 and *zero*
   acknowledged writes may be lost (power-loss protection destages the
   write cache on the way down).
B. **Protection contrast, unprotected side** — 3 dirty cycles against the
   weak ``ssd-c`` preset under a closed-loop load: the same audit must
   find a *nonzero* flying-write-ACK count (acked data that evaporated).
C. **Determinism + crash safety** — the acceptance command
   (``repro stress dirty-cycle --repeat 25 --seed 7``): a checkpointed
   jobs=1 run is SIGTERMed mid-flight and resumed; its summary table must
   be byte-identical to an uninterrupted jobs=4 run of the same plan.

Per-shard command logs (leg C) and the engine trace are written to
``DIRTY_CYCLE_SMOKE_ARTIFACT_DIR`` when set (CI uploads them as
artifacts); each command log is replayed and schema-checked.

Exit code 0 on success, 1 on any mismatch.  Run from the repo root:

    PYTHONPATH=src python scripts/dirty_cycle_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ARTIFACT_DIR_ENV = "DIRTY_CYCLE_SMOKE_ARTIFACT_DIR"
FAULT_ENV = "REPRO_ENGINE_TEST_FAULT"

ACCEPTANCE_ARGS = [
    "stress", "dirty-cycle",
    "--repeat", "25",
    "--seed", "7",
    "--wss-gib", "1",
    "--qdepth", "16",
    "--shard-cycles", "2",
    "--recovery-fault-every", "5",
]


def cli_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(args, env):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )


def summary_table(stdout):
    return [
        line
        for line in stdout.splitlines()
        if line.strip() and not line.startswith("running ")
    ]


def summary_value(stdout, column):
    """Pull one column's value out of the rendered summary table."""
    lines = stdout.splitlines()
    for index, line in enumerate(lines):
        cells = [c.strip() for c in line.split("|")]
        if column in cells:
            values = [c.strip() for c in lines[index + 2].split("|")]
            return values[cells.index(column)]
    raise AssertionError(f"column {column!r} not found in output:\n{stdout}")


def check_cmdlogs(directory):
    """Replay every shard command log; returns an error string or None."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    if src not in sys.path:  # tolerate being run without PYTHONPATH=src
        sys.path.insert(0, src)
    from repro.errors import CmdlogError
    from repro.stress import replay_cmdlog

    logs = sorted(Path(directory).glob("shard*.cmdlog.jsonl"))
    if not logs:
        return f"no command logs written under {directory}"
    for log in logs:
        try:
            replayed = replay_cmdlog(log)
        except CmdlogError as exc:
            return f"{log.name}: replay failed: {exc}"
        if not replayed.records:
            return f"{log.name}: empty command log"
        kinds = {r["kind"] for r in replayed.records}
        if not {"sub", "cpl", "mark"} <= kinds:
            return f"{log.name}: record kinds incomplete ({sorted(kinds)})"
    print(f"cmdlog ok: {len(logs)} shard logs replayed")
    return None


def leg_protection_contrast(env):
    """Legs A+B: PLP zero loss vs unprotected nonzero FWA, 3 cycles each."""
    plp = run_cli(
        ["stress", "dirty-cycle", "--repeat", "3", "--seed", "11",
         "--device", "ssd-enterprise-plp", "--wss-gib", "1",
         "--size-min-kib", "4", "--size-max-kib", "4",
         "--iops", "2000", "--qdepth", "32"],
        env,
    )
    if plp.returncode != 0:
        print(f"FAIL: PLP leg exited {plp.returncode}\n{plp.stderr}")
        return False
    unsafe = summary_value(plp.stdout, "unsafe_shutdowns")
    loss = summary_value(plp.stdout, "total_data_loss")
    if unsafe != "3":
        print(f"FAIL: PLP leg unsafe_shutdowns = {unsafe}, expected 3")
        return False
    if loss != "0":
        print(f"FAIL: PLP leg lost acked writes (total_data_loss = {loss})")
        return False
    print("leg A ok: supercap device, 3 unsafe shutdowns, zero acked-write loss")

    weak = run_cli(
        ["stress", "dirty-cycle", "--repeat", "3", "--seed", "11",
         "--device", "ssd-c", "--wss-gib", "1", "--qdepth", "32"],
        env,
    )
    if weak.returncode != 0:
        print(f"FAIL: unprotected leg exited {weak.returncode}\n{weak.stderr}")
        return False
    unsafe = summary_value(weak.stdout, "unsafe_shutdowns")
    fwa = summary_value(weak.stdout, "fwa")
    if unsafe != "3":
        print(f"FAIL: unprotected leg unsafe_shutdowns = {unsafe}, expected 3")
        return False
    if int(fwa) <= 0:
        print("FAIL: unprotected leg shows no flying-write-ACKs")
        return False
    print(f"leg B ok: unprotected device, {fwa} flying-write-ACKs detected")
    return True


def leg_interrupt_resume(env, artifact_dir):
    """Leg C: SIGTERM + --resume vs uninterrupted jobs=4, byte-identical."""
    checkpoint = artifact_dir / "ck.jsonl"
    trace = artifact_dir / "dirty.trace.jsonl"
    cmdlog_dir = artifact_dir / "cmdlogs"

    slow_env = dict(env)
    slow_env[FAULT_ENV] = "slow:*:*:0.8"  # widen the interrupt window
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *ACCEPTANCE_ARGS,
         "--jobs", "1", "--checkpoint", str(checkpoint),
         "--cmdlog", str(cmdlog_dir), "--trace", str(trace)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=slow_env,
    )
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline and proc.poll() is None:
        if checkpoint.exists() and checkpoint.stat().st_size > 0:
            break
        time.sleep(0.1)
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        _, err = proc.communicate(timeout=300)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        print("FAIL: interrupted stress run did not exit after SIGTERM")
        return False

    if proc.returncode == 130:
        print(f"interrupted mid-run (exit 130): {err.strip().splitlines()[-1]}")
    elif proc.returncode == 0:
        print("stress run finished before the signal landed; resume is a no-op run")
    else:
        print(f"FAIL: unexpected exit {proc.returncode}\n{err}")
        return False

    resumed = run_cli(
        ACCEPTANCE_ARGS + ["--jobs", "1", "--checkpoint", str(checkpoint),
                           "--resume", "--cmdlog", str(cmdlog_dir)],
        env,
    )
    if resumed.returncode != 0:
        print(f"FAIL: resume exited {resumed.returncode}\n{resumed.stderr}")
        return False
    print(f"resume: {resumed.stderr.strip() or '(no shards needed resuming)'}")

    parallel = run_cli(ACCEPTANCE_ARGS + ["--jobs", "4"], env)
    if parallel.returncode != 0:
        print(f"FAIL: jobs=4 run exited {parallel.returncode}\n{parallel.stderr}")
        return False

    if summary_table(resumed.stdout) != summary_table(parallel.stdout):
        print("FAIL: resumed jobs=1 summary differs from uninterrupted jobs=4")
        print("--- resumed jobs=1 ---")
        print(resumed.stdout)
        print("--- jobs=4 ---")
        print(parallel.stdout)
        return False
    print("leg C ok: SIGTERM + --resume matches uninterrupted jobs=4 exactly")

    unsafe = summary_value(parallel.stdout, "unsafe_shutdowns")
    expected = 25 + 25 // 5  # one per cycle + one per recovery-fault cycle
    if unsafe != str(expected):
        print(f"FAIL: unsafe_shutdowns = {unsafe}, expected {expected}")
        return False
    print(f"leg C ok: {unsafe} unsafe shutdowns for 25 cycles + 5 recovery faults")

    error = check_cmdlogs(cmdlog_dir)
    if error:
        print(f"FAIL: {error}")
        return False
    return True


def main():
    env = cli_env()
    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(os.environ.get(ARTIFACT_DIR_ENV) or tmp)
        artifact_dir.mkdir(parents=True, exist_ok=True)
        if not leg_protection_contrast(env):
            return 1
        if not leg_interrupt_resume(env, artifact_dir):
            return 1
    print("OK: dirty-cycle stress harness verified end to end")
    return 0


if __name__ == "__main__":
    sys.exit(main())
