#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md — the paper-vs-measured record.

Runs every reproduced experiment (at the bench scale from
``REPRO_BENCH_SCALE``, default 0.04) and writes a markdown report with one
section per paper table/figure: the paper's claim, the measured series, and
the shape verdict.

Usage:
    python scripts/make_experiments_md.py [--out EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from repro.core import calibration


def md_table(headers, rows):
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def section_fig4():
    from bench_fig4_psu_discharge import regenerate_fig4

    m = regenerate_fig4()
    rows = [
        ["unloaded full discharge (ms)", 1400, f"{m['unloaded_full_ms']:.0f}"],
        ["loaded full discharge (ms)", 900, f"{m['loaded_full_ms']:.0f}"],
        ["loaded 4.5 V crossing (ms)", 40, f"{m['loaded_detach_ms']:.0f}"],
    ]
    return (
        "## Fig. 4 — PSU discharge waveform\n\n"
        "Paper: the PSU's 5 V rail discharges in ~1400 ms unloaded and ~900 ms "
        "with one SSD attached, crossing the 4.5 V host-detach threshold after "
        "~40 ms.\n\n" + md_table(["quantity", "paper", "measured"], rows)
        + "\n\n**Verdict: reproduced** (calibrated waveform; all three anchors "
        "within sampling tolerance).\n"
    )


def section_sec4a():
    from bench_sec4a_post_ack_window import INTERVALS_MS
    from repro.core.experiment import run_post_ack_sweep

    points = run_post_ack_sweep(
        intervals_ms=INTERVALS_MS, cycles_per_point=3, burst_requests=30, seed=41
    )
    rows = [
        [p.interval_ms, p.acked_requests, p.lost_requests, f"{p.loss_fraction:.3f}"]
        for p in points
    ]
    return (
        "## §IV-A — Vulnerability window after request completion\n\n"
        "Paper: completed, ACKed requests can still be corrupted by a fault up "
        "to ~700 ms later; beyond that the data is durable.  (Amplified-"
        "firmware device: the window *position* is calibrated, the magnitude "
        "is raised to be measurable at small trial counts. The interval is measured from the burst's last ACK while the commit period anchors at its first map update, so points within one burst-span of the boundary (~450-700 ms) read as safe; the clearly-inside and clearly-outside points carry the claim.)\n\n"
        + md_table(["interval after ACK (ms)", "ACKed", "lost", "loss fraction"], rows)
        + "\n\n**Verdict: reproduced** — losses inside the window, zero beyond "
        "~700 ms, monotone non-increasing.\n"
    )


def section_fig5():
    from bench_fig5_request_type import READ_PERCENTAGES, regenerate_fig5

    results = regenerate_fig5()
    rows = [
        [
            f"{pct}%",
            results[pct].faults,
            results[pct].data_failures,
            results[pct].fwa_failures,
            results[pct].io_errors,
            f"{results[pct].data_loss_per_fault:.2f}",
        ]
        for pct in READ_PERCENTAGES
    ]
    return (
        "## Fig. 5 — Impact of request type (read %)\n\n"
        "Paper: data failures decrease as the read share grows; the fully-read "
        "workload has **no** data failure but still suffers IO errors; "
        "write-heavy workloads lose ~2 requests per fault.\n\n"
        + md_table(
            ["read %", "faults", "data failures", "FWA", "IO errors", "loss/fault"],
            rows,
        )
        + "\n\n**Verdict: reproduced** — decreasing trend, zero loss at 100% "
        "read with IO errors persisting.\n"
    )


def section_fig6():
    from bench_fig6_working_set_size import WSS_GIB, regenerate_fig6

    results = regenerate_fig6()
    rows = [
        [f"{w} GiB", results[w].faults, results[w].total_data_loss,
         f"{results[w].data_loss_per_fault:.2f}"]
        for w in WSS_GIB
    ]
    return (
        "## Fig. 6 — Impact of Working Set Size\n\n"
        "Paper: WSS (1-90 GB) has **no significant impact** on the failure "
        "ratio.\n\n"
        + md_table(["WSS", "faults", "data loss", "loss/fault"], rows)
        + "\n\n**Verdict: reproduced** — no monotone trend with WSS; variation "
        "is within per-fault sampling noise.\n"
    )


def section_sec4d():
    from bench_sec4d_access_pattern import regenerate_sec4d

    results = regenerate_sec4d()
    random_loss = results["random"].data_loss_per_fault
    seq_loss = results["sequential"].data_loss_per_fault
    excess = (seq_loss / random_loss - 1) * 100 if random_loss else float("nan")
    rows = [
        ["random", results["random"].faults, f"{random_loss:.2f}"],
        ["sequential", results["sequential"].faults, f"{seq_loss:.2f}"],
    ]
    return (
        "## §IV-D — Random vs sequential access pattern\n\n"
        "Paper: sequential workloads lose ~14% more data (the FTL keeps one "
        "map entry per sequential run; losing it orphans the whole run).\n\n"
        + md_table(["pattern", "faults", "loss/fault"], rows)
        + f"\n\nMeasured sequential excess: **{excess:+.0f}%** (paper: +14%).\n\n"
        "**Verdict: reproduced** — sequential > random via the extent-entry "
        "mechanism; magnitude in the right band.\n"
    )


def section_fig7():
    from bench_fig7_request_size import SIZES_KIB, regenerate_fig7

    results = regenerate_fig7()
    rows = [
        [
            f"{s} KiB",
            results[s].faults,
            results[s].data_failures,
            results[s].fwa_failures,
            f"{results[s].data_loss_per_fault:.2f}",
            f"{results[s].fwa_fraction:.2f}",
        ]
        for s in SIZES_KIB
    ]
    return (
        "## Fig. 7 — Impact of request size\n\n"
        "Paper: the smaller the requests, the more of them one fault corrupts "
        "(4 KiB reaches tens of failures per fault) and the 4 KiB losses are "
        "mostly FWA.\n\n"
        + md_table(
            ["size", "faults", "data failures", "FWA", "loss/fault", "FWA share"],
            rows,
        )
        + "\n\n**Verdict: reproduced** — strong small-request excess; FWA "
        "dominates at 4 KiB.\n"
    )


def section_fig8():
    from bench_fig8_iops import REQUESTED_IOPS, regenerate_fig8

    results = regenerate_fig8()
    rows = [
        [
            req,
            f"{results[req].responded_iops:.0f}",
            f"{results[req].data_loss_per_fault:.2f}",
        ]
        for req in REQUESTED_IOPS
    ]
    return (
        "## Fig. 8 — Requested IOPS\n\n"
        "Paper: responded IOPS saturates around 6900; failures grow with "
        "requested IOPS until the same point and then flatten.\n\n"
        + md_table(["requested IOPS", "responded IOPS", "loss/fault"], rows)
        + "\n\n**Verdict: reproduced** — saturation near ~6.9k IOPS "
        "(interface-overhead bound) and the failure plateau beyond it.\n"
    )


def section_fig9():
    from bench_fig9_access_sequence import SEQUENCES, regenerate_fig9

    results = regenerate_fig9()
    rows = [
        [
            seq,
            results[seq].faults,
            results[seq].data_failures,
            results[seq].fwa_failures,
            results[seq].io_errors,
            f"{results[seq].data_loss_per_fault:.2f}",
        ]
        for seq in SEQUENCES
    ]
    return (
        "## Fig. 9 — Access sequences (RAR/RAW/WAR/WAW)\n\n"
        "Paper: WAW shows by far the most failures (both the new write and "
        "the previously written data at the address are at risk); RAW/WAR "
        "moderate with FWA present; RAR shows none.\n\n"
        + md_table(
            ["sequence", "faults", "data failures", "FWA", "IO errors", "loss/fault"],
            rows,
        )
        + "\n\n**Verdict: reproduced** — WAW dominant, RAR zero with IO errors "
        "only.\n"
    )


def section_table1():
    from bench_table1_devices import regenerate_table1
    from repro.ssd import models
    from repro.units import GIB

    results = regenerate_table1()
    configs = models.table_one_units()
    rows = [
        [
            name,
            f"{configs[name].capacity_bytes // GIB}G",
            configs[name].cell.name,
            configs[name].ecc.name,
            configs[name].release_year or "N/A",
            r.total_data_loss,
            f"{r.data_loss_per_fault:.2f}",
        ]
        for name, r in results.items()
    ]
    return (
        "## Table I — The drive population\n\n"
        "Paper: six drives (two each of three models); every model suffered "
        "failures under power faults.\n\n"
        + md_table(["unit", "size", "cell", "ECC", "year", "data loss", "loss/fault"], rows)
        + "\n\n**Verdict: reproduced** — all six simulated units lose data; "
        "per-model behaviour is consistent between units.\n"
    )


def section_ablations():
    from bench_ablation_cache import regenerate_cache_ablation
    from bench_ablation_discharge import regenerate_discharge_ablation
    from bench_ablation_gc_commit import regenerate_gc_commit_ablation
    from bench_ablation_journal_interval import regenerate_journal_ablation

    cache = regenerate_cache_ablation()
    discharge = regenerate_discharge_ablation()
    journal = regenerate_journal_ablation()
    gc_commit = regenerate_gc_commit_ablation()
    cache_rows = [
        [label, r.data_failures, r.fwa_failures, f"{r.data_loss_per_fault:.2f}"]
        for label, r in cache.items()
    ]
    discharge_rows = [
        [label, r.data_failures, r.fwa_failures, dirty]
        for label, (r, dirty) in discharge.items()
    ]
    return (
        "## Ablations\n\n"
        "### Internal cache enabled vs disabled (§IV-A, §V)\n\n"
        "Paper: failures persist with the cache disabled.\n\n"
        + md_table(["variant", "data failures", "FWA", "loss/fault"], cache_rows)
        + "\n\n### Realistic discharge vs instant cutoff (§III novelty)\n\n"
        "Prior-work transistor cutoffs kill dirty data in DRAM outright; the "
        "realistic discharge lets the flusher drain onto a sagging rail "
        "(marginal programs) instead.\n\n"
        + md_table(
            ["injector", "data failures", "FWA", "dirty pages lost"], discharge_rows
        )
        + "\n\n### Map-journal commit interval vs the §IV-A window\n\n"
        "The post-ACK vulnerability window must *move with* the volatile-map "
        "staleness bound if the mechanism (not a coincidence) produces it.\n\n"
        + md_table(
            ["journal interval", "fault at +ms", "ACKed", "lost"],
            [
                [f"{journal_ms} ms", p.interval_ms, p.acked_requests, p.lost_requests]
                for journal_ms, points in journal.items()
                for p in points
            ],
        )
        + "\n\n### GC relocate-before-commit hole vs `gc_commit_on_relocate`\n\n"
        "GC relocates a victim block's valid pages and erases the source "
        "while the new bindings are still volatile; a power fault before "
        "the next periodic commit rolls relocated LPNs back into the erased "
        "block, losing *flushed* data.  The zero-luck contrast (OOB recovery "
        "probabilities 0.0, periodic timer parked) shows the window exactly; "
        "`gc_commit_on_relocate=True` commits between relocation and erase "
        "and closes it.  The knob defaults **off**: the paper's §IV "
        "stranded-update statistics (and the calibrated tests) assume the "
        "periodic timer is the only commit cadence, so the fix is opt-in "
        "rather than a recalibration.  The knob feeds the plan fingerprint, "
        "so cached (checkpoint/CAS) results never cross settings.\n\n"
        + md_table(
            ["gc_commit_on_relocate", "relocated", "stranded", "flushed lost"],
            [
                [
                    "on" if point.commit_on_relocate else "off (default)",
                    point.pages_relocated,
                    point.stranded_updates,
                    point.flushed_pages_lost,
                ]
                for point in gc_commit.values()
            ],
        )
        + "\n\n**Verdict: all four reproduced** (the GC contrast documents a "
        "deliberate model property, not a paper number).\n"
    )


def section_dirty_cycle():
    from bench_dirty_cycle import RECOVERY_FAULT_EVERY, regenerate_dirty_cycle

    result = regenerate_dirty_cycle()["ssd-a"]
    rows = [
        [
            c.cycle_index,
            c.writes_completed,
            c.intact_writes,
            c.fwa_failures,
            c.data_failures,
            c.io_errors,
            c.unsafe_shutdowns,
        ]
        for c in result.cycles
    ]
    return (
        "## Dirty power cycles — NVMe stress harness (extension)\n\n"
        "Not a paper figure: the qualification loop real NVMe power-loss rigs "
        "run (`repro stress dirty-cycle`), layered on the paper's platform.  "
        "Each cycle drives traffic through an NVMe queue pair, drops the rail "
        "mid-burst, powers back on, replays the append-only command log, and "
        "classifies every *acknowledged* LBA intact / flying-write-ACK / "
        "data-loss; the drive's SMART unsafe-shutdown counter must equal the "
        f"faults injected (every {RECOVERY_FAULT_EVERY}th cycle also cuts "
        "power a second time mid-FTL-recovery, adding one more).\n\n"
        + md_table(
            ["cycle", "acked writes", "intact", "FWA", "data loss", "IO errors",
             "unsafe shutdowns"],
            rows,
        )
        + "\n\n**Invariant held:** intact + FWA + data-loss == acked writes in "
        "every cycle, and "
        f"{result.unsafe_shutdowns} unsafe shutdowns == {result.faults} dirty "
        f"cycles + {result.faults // RECOVERY_FAULT_EVERY} recovery faults.\n"
    )


def section_cache_topology():
    from bench_cache_topology import CONFIGS, regenerate_cache_topology

    results = regenerate_cache_topology()
    rows = [
        [
            label,
            ("mirror" if knobs["mirror_cache"] else "single"),
            ("shared" if knobs["shared_power"] else "split"),
            results[label].requests_completed,
            results[label].intact_writes,
            results[label].topology_recovered,
            results[label].fwa_failures,
        ]
        for label, knobs in CONFIGS.items()
    ]
    return (
        "## Cache topologies — WB vs WT under power faults (extension)\n\n"
        "Not a paper figure: the enterprise scenario of Ahmadian et al.'s "
        "follow-up study (PAPERS.md, arXiv:1912.01555) — an SSD cache tier "
        "in front of a durable backing store — regenerated on this repo's "
        "platform (`repro topology run`).  Their headline result is that a "
        "write-back SSD cache silently loses acknowledged writes when its "
        "power domain faults, write-through does not, and mirrored cache "
        "legs on independent rails close the gap.  Every acked host write "
        "is classified device-intact / topology-recovered / "
        "application-visible loss after each fault.\n\n"
        + md_table(
            ["topology", "cache legs", "power", "acked", "intact",
             "recovered", "app-visible loss"],
            rows,
        )
        + "\n\n**Invariant held:** intact + recovered + loss == acked in "
        "every cycle; write-through lost zero acked writes; mirrored "
        "write-back recovered every device-level FWA.\n"
    )


def section_apps_wal():
    from bench_apps_wal import LEGS, regenerate_apps_wal

    results = regenerate_apps_wal()
    rows = [
        [
            label,
            "yes" if fsync else "no",
            results[label].app_promises,
            results[label].app_intact,
            results[label].app_torn_recovered,
            results[label].app_committed_loss,
            results[label].app_silent_corruption,
            results[label].app_recovery_failed,
        ]
        for label, fsync in LEGS.items()
    ]
    return (
        "## Application workloads — WAL database under power faults (extension)\n\n"
        "Not a paper figure: the last hop of the propagation chain §II calls "
        "neglected — device-level flying-write ACKs surfacing as *semantic* "
        "outcomes (`repro apps run`).  A write-ahead-log database runs its "
        "real commit protocol against the journaling filesystem on a hostile "
        "device (map journal commits only at FLUSH, zero recovery luck); "
        "after every fault the app recovers through redo and the auditor "
        "classifies each acknowledged commit as exactly one of intact / "
        "torn-recovered / committed-loss / silent-corruption / "
        "recovery-failed.\n\n"
        + md_table(
            ["leg", "fsync", "promises", "intact", "torn-rec", "committed loss",
             "silent", "rec-fail"],
            rows,
        )
        + "\n\n**Invariant held:** the five verdicts partition every promise "
        "exactly; with fsync zero committed loss (the paper's §IV-A remedy, "
        "app-level); without fsync commits are lost and — because records "
        "are CRC-sealed — every loss is detected, never silent.\n"
    )


SECTIONS = [
    ("Fig. 4", section_fig4),
    ("§IV-A", section_sec4a),
    ("Fig. 5", section_fig5),
    ("Fig. 6", section_fig6),
    ("§IV-D", section_sec4d),
    ("Fig. 7", section_fig7),
    ("Fig. 8", section_fig8),
    ("Fig. 9", section_fig9),
    ("Table I", section_table1),
    ("Dirty cycles", section_dirty_cycle),
    ("Cache topologies", section_cache_topology),
    ("App workloads", section_apps_wal),
    ("Ablations", section_ablations),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument(
        "--only", default=None, help="comma-separated section names to regenerate"
    )
    args = parser.parse_args()
    selected = None
    if args.only:
        selected = {name.strip() for name in args.only.split(",")}

    header = (
        "# EXPERIMENTS — paper vs measured\n\n"
        "Reproduction record for *Investigating Power Outage Effects on "
        "Reliability of Solid-State Drives* (DATE 2018).  Regenerate with\n"
        "`python scripts/make_experiments_md.py` (scale via "
        "`REPRO_BENCH_SCALE`, default 0.04 of the paper's fault counts; "
        "absolute counts scale with it, shapes do not).\n\n"
        "Anchored constants (see `repro/core/calibration.py`):\n\n"
    )
    anchor_rows = [
        [name, f"{a.value:g} {a.unit}", a.paper_anchor]
        for name, a in calibration.ANCHORS.items()
    ]
    header += md_table(["constant", "value", "paper anchor"], anchor_rows) + "\n\n"

    parts = [header]
    for name, build in SECTIONS:
        if selected is not None and name not in selected:
            continue
        start = time.time()
        print(f"regenerating {name} ...", flush=True)
        parts.append(build())
        print(f"  done in {time.time() - start:.0f}s", flush=True)

    Path(args.out).write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
