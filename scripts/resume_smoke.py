#!/usr/bin/env python
"""End-to-end resume-after-interrupt smoke test (used by CI).

Starts a checkpointed parallel campaign with artificially slow shards,
SIGTERMs it once the journal has committed at least one shard, resumes it,
and asserts the resumed summary table is byte-identical to an
uninterrupted serial run of the same plan — the engine's headline
crash-safety guarantee.

Exit code 0 on success, 1 on any mismatch.  Run from the repo root:

    PYTHONPATH=src python scripts/resume_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ARGS = [
    "campaign",
    "--faults", "6",
    "--shard-faults", "1",
    "--wss-gib", "4",
]
FAULT_ENV = "REPRO_ENGINE_TEST_FAULT"


def cli_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(args, env):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )


def summary_table(stdout):
    return [
        line
        for line in stdout.splitlines()
        if line.strip() and not line.startswith("running ")
    ]


def main():
    env = cli_env()
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "ck.jsonl"

        slow_env = dict(env)
        slow_env[FAULT_ENV] = "slow:*:*:0.8"  # widen the interrupt window
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *ARGS,
             "--jobs", "2", "--checkpoint", str(checkpoint)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=slow_env,
        )
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline and proc.poll() is None:
            if checkpoint.exists() and checkpoint.stat().st_size > 0:
                break
            time.sleep(0.1)
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            _, err = proc.communicate(timeout=300)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()
            print("FAIL: interrupted campaign did not exit after SIGTERM")
            return 1

        if proc.returncode == 130:
            print(f"interrupted mid-run (exit 130): {err.strip().splitlines()[-1]}")
        elif proc.returncode == 0:
            print("campaign finished before the signal landed; resume is a no-op run")
        else:
            print(f"FAIL: unexpected exit {proc.returncode}\n{err}")
            return 1

        resumed = run_cli(
            ARGS + ["--jobs", "2", "--checkpoint", str(checkpoint), "--resume"], env
        )
        if resumed.returncode != 0:
            print(f"FAIL: resume exited {resumed.returncode}\n{resumed.stderr}")
            return 1
        print(f"resume: {resumed.stderr.strip() or '(no shards needed resuming)'}")

        baseline = run_cli(ARGS + ["--jobs", "1"], env)
        if baseline.returncode != 0:
            print(f"FAIL: baseline exited {baseline.returncode}\n{baseline.stderr}")
            return 1

        if summary_table(resumed.stdout) != summary_table(baseline.stdout):
            print("FAIL: resumed summary differs from uninterrupted serial run")
            print("--- resumed ---")
            print(resumed.stdout)
            print("--- baseline ---")
            print(baseline.stdout)
            return 1

    print("OK: resumed campaign matches uninterrupted run exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
