#!/usr/bin/env python
"""End-to-end resume-after-interrupt smoke test (used by CI).

Starts a checkpointed parallel campaign with artificially slow shards,
SIGTERMs it once the journal has committed at least one shard, resumes it,
and asserts the resumed summary table is byte-identical to an
uninterrupted serial run of the same plan — the engine's headline
crash-safety guarantee.

Both the interrupted and resumed phases run with ``--trace``; the traces
are schema-checked (every record carries the required fields, kinds are
known, capture timestamps are monotonic) and the resumed-phase trace must
show skipped shards whose cycles are excluded from the throughput rate.
Set ``RESUME_SMOKE_TRACE_DIR`` to keep the trace files (CI uploads them
as artifacts); by default they live and die with the temp directory.

Exit code 0 on success, 1 on any mismatch.  Run from the repo root:

    PYTHONPATH=src python scripts/resume_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ARGS = [
    "campaign",
    "--faults", "6",
    "--shard-faults", "1",
    "--wss-gib", "4",
]
FAULT_ENV = "REPRO_ENGINE_TEST_FAULT"
TRACE_DIR_ENV = "RESUME_SMOKE_TRACE_DIR"


def cli_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(args, env):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )


def summary_table(stdout):
    return [
        line
        for line in stdout.splitlines()
        if line.strip() and not line.startswith("running ")
    ]


def check_trace_schema(path, expect_skips=False):
    """Validate one trace file against the engine's published schema.

    Returns an error string, or None when the trace is sound.  A missing
    or empty file is an error: both phases run with ``--trace``, so a
    silent no-trace run means the flag quietly stopped working.
    """
    src = str(Path(__file__).resolve().parent.parent / "src")
    if src not in sys.path:  # tolerate being run without PYTHONPATH=src
        sys.path.insert(0, src)
    from repro.engine.trace import EVENT_KINDS, REQUIRED_FIELDS, TRACE_VERSION

    if not path.exists():
        return f"trace file was not written: {path}"
    records = []
    for index, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            return f"{path.name}:{index}: unparseable trace line"
    if not records:
        return f"{path.name}: trace contains no records"
    last_mono = None
    for index, record in enumerate(records, start=1):
        missing = [name for name in REQUIRED_FIELDS if name not in record]
        if missing:
            return f"{path.name}:{index}: missing required fields {missing}"
        if record["v"] != TRACE_VERSION:
            return f"{path.name}:{index}: unknown trace version {record['v']!r}"
        if record["kind"] not in EVENT_KINDS:
            return f"{path.name}:{index}: unknown event kind {record['kind']!r}"
        if last_mono is not None and record["mono_time_s"] < last_mono:
            return f"{path.name}:{index}: monotonic timestamp went backwards"
        last_mono = record["mono_time_s"]
    if expect_skips:
        skips = [r for r in records if r["kind"] == "shard-skipped"]
        if not skips:
            return f"{path.name}: resumed run recorded no shard-skipped events"
        if any(r["cycles_skipped"] <= 0 for r in skips):
            return f"{path.name}: shard-skipped record with no skipped cycles"
        # The bugfix under test: checkpoint-loaded cycles must not feed
        # the throughput rate (executed = done - skipped drives it).
        bogus = [
            r for r in records
            if r["cycles_done"] == r["cycles_skipped"]
            and r["cycles_done"] > 0
            and r["cycles_per_sec"] > 0.0
        ]
        if bogus:
            return (
                f"{path.name}: throughput credited for checkpoint-loaded "
                f"cycles ({bogus[0]['cycles_per_sec']:.2f} cycles/s with "
                "nothing executed)"
            )
    print(f"trace ok: {path.name} ({len(records)} records)")
    return None


def main():
    env = cli_env()
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "ck.jsonl"
        trace_dir = Path(os.environ.get(TRACE_DIR_ENV) or tmp)
        trace_dir.mkdir(parents=True, exist_ok=True)
        interrupted_trace = trace_dir / "interrupted.trace.jsonl"
        resumed_trace = trace_dir / "resumed.trace.jsonl"

        slow_env = dict(env)
        slow_env[FAULT_ENV] = "slow:*:*:0.8"  # widen the interrupt window
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *ARGS,
             "--jobs", "2", "--checkpoint", str(checkpoint),
             "--trace", str(interrupted_trace)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=slow_env,
        )
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline and proc.poll() is None:
            if checkpoint.exists() and checkpoint.stat().st_size > 0:
                break
            time.sleep(0.1)
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            _, err = proc.communicate(timeout=300)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()
            print("FAIL: interrupted campaign did not exit after SIGTERM")
            return 1

        if proc.returncode == 130:
            print(f"interrupted mid-run (exit 130): {err.strip().splitlines()[-1]}")
        elif proc.returncode == 0:
            print("campaign finished before the signal landed; resume is a no-op run")
        else:
            print(f"FAIL: unexpected exit {proc.returncode}\n{err}")
            return 1

        resumed = run_cli(
            ARGS + ["--jobs", "2", "--checkpoint", str(checkpoint), "--resume",
                    "--trace", str(resumed_trace)],
            env,
        )
        if resumed.returncode != 0:
            print(f"FAIL: resume exited {resumed.returncode}\n{resumed.stderr}")
            return 1
        print(f"resume: {resumed.stderr.strip() or '(no shards needed resuming)'}")

        baseline = run_cli(ARGS + ["--jobs", "1"], env)
        if baseline.returncode != 0:
            print(f"FAIL: baseline exited {baseline.returncode}\n{baseline.stderr}")
            return 1

        if summary_table(resumed.stdout) != summary_table(baseline.stdout):
            print("FAIL: resumed summary differs from uninterrupted serial run")
            print("--- resumed ---")
            print(resumed.stdout)
            print("--- baseline ---")
            print(baseline.stdout)
            return 1

        # Schema-check the traces both phases wrote.  The interrupted
        # phase may have died before any event (SIGTERM can land before
        # the first pickup), in which case its trace never opened — that
        # is the writer's documented lazy-open behaviour, not a failure.
        resumed_from_journal = "resumed from checkpoint" in resumed.stderr
        if interrupted_trace.exists():
            error = check_trace_schema(interrupted_trace)
            if error:
                print(f"FAIL: {error}")
                return 1
        error = check_trace_schema(resumed_trace, expect_skips=resumed_from_journal)
        if error:
            print(f"FAIL: {error}")
            return 1

    print("OK: resumed campaign matches uninterrupted run exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
