#!/usr/bin/env python
"""End-to-end live-trace-following smoke test (used by CI).

Attaches a ``repro trace report --follow`` subprocess to a trace path
that does not exist yet, then runs a traced campaign with artificially
slow shards (so the follower genuinely observes the run in flight, torn
tails and all) and requires:

- the follower exits 0 on its own once the final ``plan-finished``
  record lands — no signal is ever sent to it;
- the follower's final aggregate report is byte-identical to
  ``repro trace report`` run post-hoc on the same file.

Set ``FOLLOW_SMOKE_TRACE_DIR`` to keep the trace file (CI uploads it as
an artifact); by default it lives and dies with the temp directory.

Exit code 0 on success, 1 on any mismatch.  Run from the repo root:

    PYTHONPATH=src python scripts/follow_smoke.py
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

ARGS = [
    "campaign",
    "--faults", "4",
    "--shard-faults", "1",
    "--wss-gib", "4",
    "--jobs", "2",
]
FAULT_ENV = "REPRO_ENGINE_TEST_FAULT"
TRACE_DIR_ENV = "FOLLOW_SMOKE_TRACE_DIR"


def cli_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def main():
    env = cli_env()
    with tempfile.TemporaryDirectory() as tmp:
        trace_dir = Path(os.environ.get(TRACE_DIR_ENV) or tmp)
        trace_dir.mkdir(parents=True, exist_ok=True)
        trace = trace_dir / "followed.trace.jsonl"

        # The follower attaches first, to a file that does not exist yet.
        follower = subprocess.Popen(
            [sys.executable, "-m", "repro", "trace", "report",
             "--follow", str(trace), "--interval", "0.2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )

        slow_env = dict(env)
        slow_env[FAULT_ENV] = "slow:*:*:0.4"  # keep the run observably live
        campaign = subprocess.run(
            [sys.executable, "-m", "repro", *ARGS, "--trace", str(trace)],
            capture_output=True,
            text=True,
            env=slow_env,
            timeout=600,
        )
        if campaign.returncode != 0:
            follower.kill()
            follower.communicate()
            print(f"FAIL: campaign exited {campaign.returncode}\n{campaign.stderr}")
            return 1

        try:
            followed_out, followed_err = follower.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            follower.kill()
            follower.communicate()
            print("FAIL: follower did not exit after the campaign finished")
            return 1
        if follower.returncode != 0:
            print(f"FAIL: follower exited {follower.returncode}\n{followed_err}")
            return 1
        snapshots = [
            line for line in followed_err.splitlines() if line.startswith("[follow]")
        ]
        if not snapshots:
            print("FAIL: follower rendered no snapshot lines")
            return 1
        print(f"follower: exit 0 after {len(snapshots)} snapshot(s)")

        posthoc = subprocess.run(
            [sys.executable, "-m", "repro", "trace", "report", str(trace)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        if posthoc.returncode != 0:
            print(f"FAIL: post-hoc report exited {posthoc.returncode}\n{posthoc.stderr}")
            return 1
        if followed_out != posthoc.stdout:
            print("FAIL: follower's final report differs from the post-hoc report")
            print("--- follower ---")
            print(followed_out)
            print("--- post-hoc ---")
            print(posthoc.stdout)
            return 1

    print("OK: live follower matched the post-hoc trace report exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
