#!/usr/bin/env python
"""End-to-end application-workload smoke test (used by CI).

Three legs over the app fault harness (see ``repro.apps``):

A. **fsync contrast** — the headline claim of the subsystem, on the weak
   ``ssd-c`` preset so device-level FWA is plentiful:

   - WAL with fsync: zero committed loss, zero recovery failures (the
     COMMIT ack waits for the device FLUSH);
   - WAL without fsync: nonzero committed loss (the paper's flying-write
     ACK surfacing at application level) and zero *silent* corruption —
     the CRC-sealed log detects every loss it suffers.

B. **Determinism + crash safety** — a checkpointed jobs=2 run of the
   no-fsync campaign is SIGTERMed mid-flight and resumed; its summary
   table must be byte-identical to an uninterrupted jobs=4 run.

C. **Explainability** — ``repro apps run --explain 0`` over the same plan
   renders the promise log, per-LBA device verdicts, and semantic verdict
   chain for the first cycle.

The engine trace of leg B is written to ``APPS_SMOKE_ARTIFACT_DIR`` when
set (CI uploads it as an artifact).

Exit code 0 on success, 1 on any mismatch.  Run from the repo root:

    PYTHONPATH=src python scripts/apps_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ARTIFACT_DIR_ENV = "APPS_SMOKE_ARTIFACT_DIR"
FAULT_ENV = "REPRO_ENGINE_TEST_FAULT"

CONTRAST_ARGS = [
    "--device", "ssd-c",
    "--faults", "6",
    "--shard-cycles", "2",
    "--seed", "7",
    "--warmup-ms", "30",
    "--fault-window-ms", "120",
]

ACCEPTANCE_ARGS = [
    "apps", "run",
    "--app", "wal",
    "--no-fsync",
    "--device", "ssd-c",
    "--faults", "6",
    "--shard-cycles", "1",
    "--seed", "11",
    "--warmup-ms", "30",
    "--fault-window-ms", "120",
]


def cli_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(args, env):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )


def summary_table(stdout):
    return [
        line
        for line in stdout.splitlines()
        if line.strip() and not line.startswith("running ")
    ]


def summary_value(stdout, column):
    """Pull one column's value out of the rendered summary table."""
    lines = stdout.splitlines()
    for index, line in enumerate(lines):
        cells = [c.strip() for c in line.split("|")]
        if column in cells:
            values = [c.strip() for c in lines[index + 2].split("|")]
            return values[cells.index(column)]
    raise AssertionError(f"column {column!r} not found in output:\n{stdout}")


def leg_fsync_contrast(env):
    """Leg A: fsync WAL loses nothing; no-fsync loses, but never silently."""
    safe = run_cli(["apps", "run", "--app", "wal", *CONTRAST_ARGS], env)
    if safe.returncode != 0:
        print(f"FAIL: fsync leg exited {safe.returncode}\n{safe.stderr}")
        return False
    promises = int(summary_value(safe.stdout, "app_promises"))
    loss = summary_value(safe.stdout, "app_committed_loss")
    failed = summary_value(safe.stdout, "app_recovery_failed")
    if promises <= 0:
        print("FAIL: fsync leg made no promises")
        return False
    if loss != "0" or failed != "0":
        print(f"FAIL: fsync WAL lost commits (loss={loss}, rec-fail={failed})")
        return False
    print(f"leg A ok: WAL+fsync, {promises} acked commits, zero loss")

    lossy = run_cli(
        ["apps", "run", "--app", "wal", "--no-fsync", *CONTRAST_ARGS], env
    )
    if lossy.returncode != 0:
        print(f"FAIL: no-fsync leg exited {lossy.returncode}\n{lossy.stderr}")
        return False
    loss = summary_value(lossy.stdout, "app_committed_loss")
    silent = summary_value(lossy.stdout, "app_silent_corruption")
    if int(loss) <= 0:
        print("FAIL: no-fsync WAL shows no committed loss on ssd-c")
        return False
    if silent != "0":
        print(f"FAIL: CRC-sealed WAL reported silent corruption ({silent})")
        return False
    print(f"leg A ok: WAL without fsync, {loss} acked commits lost, all detected")
    return True


def leg_interrupt_resume(env, artifact_dir):
    """Leg B: SIGTERM + --resume vs uninterrupted jobs=4, byte-identical."""
    checkpoint = artifact_dir / "ck.jsonl"
    trace = artifact_dir / "apps.trace.jsonl"

    slow_env = dict(env)
    slow_env[FAULT_ENV] = "slow:*:*:0.8"  # widen the interrupt window
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *ACCEPTANCE_ARGS,
         "--jobs", "2", "--checkpoint", str(checkpoint),
         "--trace", str(trace)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=slow_env,
    )
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline and proc.poll() is None:
        if checkpoint.exists() and checkpoint.stat().st_size > 0:
            break
        time.sleep(0.1)
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        _, err = proc.communicate(timeout=300)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        print("FAIL: interrupted apps run did not exit after SIGTERM")
        return False

    if proc.returncode == 130:
        print(f"interrupted mid-run (exit 130): {err.strip().splitlines()[-1]}")
    elif proc.returncode == 0:
        print("apps run finished before the signal landed; resume is a no-op run")
    else:
        print(f"FAIL: unexpected exit {proc.returncode}\n{err}")
        return False

    resumed = run_cli(
        ACCEPTANCE_ARGS + ["--jobs", "2", "--checkpoint", str(checkpoint),
                           "--resume"],
        env,
    )
    if resumed.returncode != 0:
        print(f"FAIL: resume exited {resumed.returncode}\n{resumed.stderr}")
        return False
    print(f"resume: {resumed.stderr.strip() or '(no shards needed resuming)'}")

    parallel = run_cli(ACCEPTANCE_ARGS + ["--jobs", "4"], env)
    if parallel.returncode != 0:
        print(f"FAIL: jobs=4 run exited {parallel.returncode}\n{parallel.stderr}")
        return False

    if summary_table(resumed.stdout) != summary_table(parallel.stdout):
        print("FAIL: resumed jobs=2 summary differs from uninterrupted jobs=4")
        print("--- resumed jobs=2 ---")
        print(resumed.stdout)
        print("--- jobs=4 ---")
        print(parallel.stdout)
        return False
    print("leg B ok: SIGTERM + --resume matches uninterrupted jobs=4 exactly")

    # The audit partitions every promise — the five verdict columns must
    # sum to the promise count across the campaign.
    promises = int(summary_value(parallel.stdout, "app_promises"))
    verdicts = sum(
        int(summary_value(parallel.stdout, column))
        for column in (
            "app_intact",
            "app_torn_recovered",
            "app_committed_loss",
            "app_silent_corruption",
            "app_recovery_failed",
        )
    )
    if promises <= 0 or verdicts != promises:
        print(f"FAIL: audit partition broken ({verdicts} verdicts / {promises} promises)")
        return False
    print(f"leg B ok: {promises} promises, every one classified exactly once")
    return True


def leg_explain(env):
    """Leg C: the --explain mini-report renders all three evidence views."""
    report = run_cli(ACCEPTANCE_ARGS + ["--explain", "0"], env)
    if report.returncode != 0:
        print(f"FAIL: --explain exited {report.returncode}\n{report.stderr}")
        return False
    for heading in ("promise log", "device verdicts", "semantic verdict chain"):
        if heading not in report.stdout:
            print(f"FAIL: --explain report lacks {heading!r}:\n{report.stdout}")
            return False
    print("leg C ok: --explain renders promises, device verdicts, semantics")
    return True


def main():
    env = cli_env()
    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(os.environ.get(ARTIFACT_DIR_ENV) or tmp)
        artifact_dir.mkdir(parents=True, exist_ok=True)
        if not leg_fsync_contrast(env):
            return 1
        if not leg_interrupt_resume(env, artifact_dir):
            return 1
        if not leg_explain(env):
            return 1
    print("OK: application-workload subsystem verified end to end")
    return 0


if __name__ == "__main__":
    sys.exit(main())
