#!/usr/bin/env python
"""End-to-end distributed-execution smoke test (used by CI).

Two phases, both against a real ``--listen`` coordinator process and real
``repro worker`` subprocesses over loopback TCP:

**Phase A — worker loss.**  A checkpointed, traced campaign serves its
shards to two workers (artificially slowed so shards stay in flight);
once the journal has committed at least one shard, one worker is
SIGKILLed mid-run.  The campaign must still complete (exit 0), the
surviving worker must shut down cleanly, and the summary table must be
byte-identical to an uninterrupted serial run.

**Phase B — coordinator loss.**  A second distributed run is SIGTERMed
at the coordinator once the journal is non-empty (exit 130), then
resumed *locally* with ``--resume`` — proving a distributed run's
checkpoint is the same artifact a local run writes — and the resumed
summary must again match the serial baseline.

Traces from both phases are schema-checked with the validator from
``resume_smoke.py``.  Set ``DISTRIBUTED_SMOKE_TRACE_DIR`` to keep the
trace files (CI uploads them as artifacts).

Exit code 0 on success, 1 on any mismatch.  Run from the repo root:

    PYTHONPATH=src python scripts/distributed_smoke.py
"""

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from resume_smoke import check_trace_schema, cli_env, run_cli, summary_table

ARGS = [
    "campaign",
    "--faults", "6",
    "--shard-faults", "1",
    "--wss-gib", "4",
]
FAULT_ENV = "REPRO_ENGINE_TEST_FAULT"
TRACE_DIR_ENV = "DISTRIBUTED_SMOKE_TRACE_DIR"


def free_port():
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def start_coordinator(port, checkpoint, trace, extra=()):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *ARGS,
         "--listen", f"127.0.0.1:{port}",
         "--checkpoint", str(checkpoint), "--trace", str(trace), *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=cli_env(),
    )


def start_worker(port, shard_seconds):
    env = cli_env()
    env[FAULT_ENV] = f"slow:*:*:{shard_seconds}"  # keep shards in flight
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"127.0.0.1:{port}", "--connect-timeout", "30"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def wait_for_first_commit(proc, checkpoint, timeout=300):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline and proc.poll() is None:
        if checkpoint.exists() and checkpoint.stat().st_size > 0:
            return True
        time.sleep(0.1)
    return checkpoint.exists() and checkpoint.stat().st_size > 0


def drain(proc, timeout=60):
    try:
        proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
    return proc.returncode


def trace_attributes_workers(path):
    """True when some record names a distributed worker (``host:pid``)."""
    import json

    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        pid = record.get("worker_pid")
        if isinstance(pid, str) and ":" in pid:
            return True
    return False


def phase_a(tmp, trace_dir, baseline_table):
    print("--- phase A: SIGKILL a worker mid-run ---")
    checkpoint = Path(tmp) / "a.ck.jsonl"
    trace = trace_dir / "distributed-a.trace.jsonl"
    port = free_port()
    coordinator = start_coordinator(port, checkpoint, trace)
    workers = [start_worker(port, 0.5) for _ in range(2)]
    try:
        if not wait_for_first_commit(coordinator, checkpoint):
            print("FAIL: no shard was ever committed")
            return 1
        os.kill(workers[0].pid, signal.SIGKILL)
        print(f"killed worker pid {workers[0].pid} after first commit")
        try:
            out, err = coordinator.communicate(timeout=300)
        except subprocess.TimeoutExpired:
            coordinator.kill()
            coordinator.communicate()
            print("FAIL: coordinator hung after losing a worker")
            return 1
    finally:
        codes = [drain(worker) for worker in workers]

    if coordinator.returncode != 0:
        print(f"FAIL: coordinator exited {coordinator.returncode}\n{err}")
        return 1
    if codes[0] != -signal.SIGKILL:
        print(f"FAIL: killed worker exited {codes[0]}, expected SIGKILL")
        return 1
    if codes[1] != 0:
        print(f"FAIL: surviving worker exited {codes[1]}, expected 0")
        return 1
    if summary_table(out) != baseline_table:
        print("FAIL: distributed summary differs from serial baseline")
        print(out)
        return 1
    error = check_trace_schema(trace)
    if error:
        print(f"FAIL: {error}")
        return 1
    if not trace_attributes_workers(trace):
        print("FAIL: trace records never attributed a host:pid worker")
        return 1
    print("phase A ok: campaign survived the kill, summary matches serial")
    return 0


def phase_b(tmp, trace_dir, baseline_table):
    print("--- phase B: SIGTERM the coordinator, resume locally ---")
    checkpoint = Path(tmp) / "b.ck.jsonl"
    trace = trace_dir / "distributed-b.trace.jsonl"
    port = free_port()
    coordinator = start_coordinator(port, checkpoint, trace)
    workers = [start_worker(port, 0.8) for _ in range(2)]
    try:
        if not wait_for_first_commit(coordinator, checkpoint):
            print("FAIL: no shard was ever committed")
            return 1
        if coordinator.poll() is None:
            coordinator.send_signal(signal.SIGTERM)
        try:
            _, err = coordinator.communicate(timeout=300)
        except subprocess.TimeoutExpired:
            coordinator.kill()
            coordinator.communicate()
            print("FAIL: coordinator did not exit after SIGTERM")
            return 1
    finally:
        # Orphaned workers notice the dead socket and exit on their own
        # (connection lost = 3); a worker that drained the shutdown frame
        # first exits 0.
        codes = [drain(worker) for worker in workers]

    if coordinator.returncode == 130:
        print(f"interrupted mid-run (exit 130); workers exited {codes}")
    elif coordinator.returncode == 0:
        print("coordinator finished before the signal landed; resume is a no-op")
    else:
        print(f"FAIL: unexpected coordinator exit {coordinator.returncode}\n{err}")
        return 1
    if any(code not in (0, 3) for code in codes):
        print(f"FAIL: orphaned workers exited {codes}, expected 0 or 3")
        return 1

    resumed = run_cli(
        ARGS + ["--jobs", "2", "--checkpoint", str(checkpoint), "--resume"],
        cli_env(),
    )
    if resumed.returncode != 0:
        print(f"FAIL: local resume exited {resumed.returncode}\n{resumed.stderr}")
        return 1
    print(f"resume: {resumed.stderr.strip() or '(no shards needed resuming)'}")
    if summary_table(resumed.stdout) != baseline_table:
        print("FAIL: resumed summary differs from serial baseline")
        print(resumed.stdout)
        return 1
    if trace.exists():
        error = check_trace_schema(trace)
        if error:
            print(f"FAIL: {error}")
            return 1
    print("phase B ok: distributed checkpoint resumed locally, summary matches")
    return 0


def main():
    env = cli_env()
    baseline = run_cli(ARGS + ["--jobs", "1"], env)
    if baseline.returncode != 0:
        print(f"FAIL: baseline exited {baseline.returncode}\n{baseline.stderr}")
        return 1
    baseline_table = summary_table(baseline.stdout)

    with tempfile.TemporaryDirectory() as tmp:
        trace_dir = Path(os.environ.get(TRACE_DIR_ENV) or tmp)
        trace_dir.mkdir(parents=True, exist_ok=True)
        for phase in (phase_a, phase_b):
            code = phase(tmp, trace_dir, baseline_table)
            if code:
                return code

    print("OK: distributed execution matches serial through kills and resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
