#!/usr/bin/env python
"""End-to-end campaign-service smoke test (used by CI).

Boots a real ``repro serve`` daemon, attaches two persistent ``repro
worker --persist`` subprocesses (slowed so shards stay in flight), and
drives the full client surface over loopback TCP:

1. ``repro submit`` a campaign and require the summary table to be
   byte-identical to an uninterrupted serial ``repro campaign`` run,
   with all shards executed by workers (``0 from cache``).
2. While that submission runs, attach a ``repro follow`` observer and
   require it to stream the campaign to completion on its own.
3. ``repro submit`` the identical campaign again and require the same
   byte-identical table with **zero** shards executed — every shard
   served from the content-addressed result cache.
4. SIGTERM the daemon **mid-run** on a second campaign, boot a fresh
   daemon over the same CAS (the persistent workers reconnect to it on
   their own), resubmit, and require completion — shards cached before
   the kill served from the CAS, the rest re-executed — with a summary
   byte-identical to the serial baseline.
5. SIGTERM the daemon; it must exit 0, and both persistent workers must
   end their persist loops cleanly (exit 0) once no coordinator answers.

The CAS directory (entries + campaign traces) is the diagnostic
artifact: set ``SERVE_SMOKE_ARTIFACT_DIR`` to keep it (CI uploads it).

Exit code 0 on success, 1 on any mismatch.  Run from the repo root:

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from resume_smoke import check_trace_schema, cli_env, run_cli, summary_table

SPEC = [
    "--device", "ssd-a",
    "--faults", "4",
    "--shard-faults", "1",
    "--wss-gib", "2",
    "--seed", "9",
]
# A second, distinct campaign (different seed → different fingerprint)
# for the kill-mid-run phase, so its cache starts cold.
SPEC2 = SPEC[:-1] + ["10"]
FAULT_ENV = "REPRO_ENGINE_TEST_FAULT"
ARTIFACT_DIR_ENV = "SERVE_SMOKE_ARTIFACT_DIR"


def free_port():
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def start_serve(port, cas_root):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--listen", f"127.0.0.1:{port}", "--cas", str(cas_root)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=cli_env(),
    )


def start_worker(port, shard_seconds):
    env = cli_env()
    env[FAULT_ENV] = f"slow:*:*:{shard_seconds}"  # keep shards in flight
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"127.0.0.1:{port}", "--connect-timeout", "10",
         "--persist"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def start_submit(port, spec=SPEC):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "submit",
         "--connect", f"127.0.0.1:{port}", *spec],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=cli_env(),
    )


def submit_table(stdout):
    """The submit summary table (the submission banner dropped)."""
    lines = [
        line
        for line in stdout.splitlines()
        if line.strip() and not line.startswith("submitting ")
    ]
    assert lines, "submit produced no summary table"
    return lines


def drain(proc, timeout=60):
    try:
        out, err = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, err = proc.communicate()
    return proc.returncode, out, err


def follow_until_done(port, submitter, timeout=240):
    """Attach a follower to the in-flight campaign, retrying the race.

    ``repro follow`` errors out ("no active campaign") when it beats the
    submission to the daemon; retry until it attaches or the submission
    ends without it ever succeeding.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        follow = run_cli(
            ["follow", "--connect", f"127.0.0.1:{port}"], cli_env()
        )
        if follow.returncode == 0:
            return follow
        if submitter.poll() is not None:
            return None  # submission already over; follower never attached
        time.sleep(0.05)
    return None


def main():
    baseline = run_cli(["campaign", *SPEC, "--jobs", "1"], cli_env())
    if baseline.returncode != 0:
        print(f"FAIL: baseline exited {baseline.returncode}\n{baseline.stderr}")
        return 1
    baseline_table = summary_table(baseline.stdout)
    baseline2 = run_cli(["campaign", *SPEC2, "--jobs", "1"], cli_env())
    if baseline2.returncode != 0:
        print(f"FAIL: baseline2 exited {baseline2.returncode}\n{baseline2.stderr}")
        return 1
    baseline2_table = summary_table(baseline2.stdout)

    with tempfile.TemporaryDirectory() as tmp:
        cas_root = Path(os.environ.get(ARTIFACT_DIR_ENV) or tmp) / "cas"
        cas_root.mkdir(parents=True, exist_ok=True)
        port = free_port()
        daemon = start_serve(port, cas_root)
        workers = [start_worker(port, 0.3) for _ in range(2)]
        try:
            print("--- submit #1: executed by the persistent fleet ---")
            first = start_submit(port)
            follow = follow_until_done(port, first)
            code, out1, err1 = drain(first, timeout=300)
            if code != 0:
                print(f"FAIL: first submit exited {code}\n{err1}")
                return 1
            if submit_table(out1) != baseline_table:
                print("FAIL: served summary differs from serial baseline")
                print(out1)
                return 1
            if "4 shard(s) executed, 0 from cache" not in err1:
                print(f"FAIL: first submission was not fully executed\n{err1}")
                return 1
            print("submit #1 ok: summary matches serial baseline")

            if follow is None:
                print("FAIL: follower never attached to the live campaign")
                return 1
            if "complete: 4 shard(s) executed" not in follow.stdout:
                print(f"FAIL: follower summary wrong\n{follow.stdout}")
                return 1
            if "shard-finished" not in follow.stderr:
                print(f"FAIL: follower streamed no shard events\n{follow.stderr}")
                return 1
            print("follow ok: observer streamed the campaign to completion")

            print("--- submit #2: identical campaign, served from CAS ---")
            second = start_submit(port)
            code, out2, err2 = drain(second, timeout=300)
            if code != 0:
                print(f"FAIL: second submit exited {code}\n{err2}")
                return 1
            if submit_table(out2) != submit_table(out1):
                print("FAIL: resubmission summary is not byte-identical")
                print(out2)
                return 1
            if "0 shard(s) executed, 4 from cache" not in err2:
                print(f"FAIL: resubmission touched a worker\n{err2}")
                return 1
            print("submit #2 ok: bit-identical summary, zero shards executed")

            print("--- kill mid-run, restart over the same CAS, resubmit ---")
            cached_before = len(list(cas_root.glob("*/*.json")))
            third = start_submit(port, SPEC2)
            # SIGTERM the daemon once the new campaign's first shard has
            # reached the CAS but (usually) before the rest have.
            deadline = time.monotonic() + 240
            while time.monotonic() < deadline:
                if len(list(cas_root.glob("*/*.json"))) > cached_before:
                    break
                if third.poll() is not None:
                    break
                time.sleep(0.02)
            daemon.send_signal(signal.SIGTERM)
            code, _, err3 = drain(third, timeout=120)
            daemon_code, _, daemon_err = drain(daemon, timeout=60)
            if daemon_code != 0:
                print(f"FAIL: killed daemon exited {daemon_code}\n{daemon_err}")
                return 1
            if code == 0:
                print("note: campaign finished before the signal; resubmit "
                      "will be a pure CAS hit")
            else:
                print(f"interrupted mid-run (submit exit {code})")
            daemon = start_serve(port, cas_root)  # workers reconnect alone
            fourth = start_submit(port, SPEC2)
            code, out4, err4 = drain(fourth, timeout=300)
            if code != 0:
                print(f"FAIL: post-restart resubmit exited {code}\n{err4}")
                return 1
            if submit_table(out4) != baseline2_table:
                print("FAIL: post-restart summary differs from serial baseline")
                print(out4)
                return 1
            counts = re.search(r"(\d+) shard\(s\) executed, (\d+) from cache", err4)
            if counts is None:
                print(f"FAIL: no CAS accounting in resubmit output\n{err4}")
                return 1
            executed, cached = int(counts.group(1)), int(counts.group(2))
            if executed + cached != 4 or cached < 1:
                print(f"FAIL: resubmit ran {executed}, cached {cached}; the "
                      "pre-kill shards should have survived in the CAS")
                return 1
            print(f"restart ok: {cached} shard(s) from the pre-kill CAS, "
                  f"{executed} re-executed, summary matches serial")
        finally:
            if daemon.poll() is None:
                daemon.send_signal(signal.SIGTERM)
            daemon_code, daemon_out, daemon_err = drain(daemon, timeout=60)
            worker_codes = [drain(worker)[0] for worker in workers]

        if daemon_code != 0:
            print(f"FAIL: daemon exited {daemon_code}\n{daemon_err}")
            return 1
        if "[serve] stopped" not in daemon_err:
            print(f"FAIL: daemon never reported a clean stop\n{daemon_err}")
            return 1
        if worker_codes != [0, 0]:
            print(f"FAIL: persistent workers exited {worker_codes}, expected 0")
            return 1

        entries = sorted(cas_root.glob("*/*.json"))
        if len(entries) != 8:  # two campaigns × four shards
            print(f"FAIL: expected 8 CAS entries, found {len(entries)}")
            return 1
        traces = sorted((cas_root / "traces").glob("*.trace.jsonl"))
        if not traces:
            print("FAIL: the service left no campaign trace behind")
            return 1
        for trace in traces:
            error = check_trace_schema(trace)
            if error:
                print(f"FAIL: {error}")
                return 1

    print("OK: campaign service executed, streamed, cached, and stopped cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
