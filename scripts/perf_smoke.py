#!/usr/bin/env python
"""Performance regression gate for the simulation hot path (used by CI).

Runs the fig8 IOPS bench family once (single shard, fixed seeds, reduced
scale) through :func:`repro.bench.run_family`, writes the machine-readable
``BENCH_fig8_iops.json`` record, and compares the measured ``cycles_per_sec``
against the committed baseline in ``benchmarks/baselines/``.  The run fails
(exit 1) when throughput drops more than ``PERF_SMOKE_TOLERANCE`` (default
30%) below the baseline — a cheap tripwire against quietly re-introducing a
hot-path regression, not a precise benchmark.

CI runners are noisy, so the gate is deliberately loose; refresh the
baseline (see README "Performance") when a deliberate change moves the
number.

Environment:
    PERF_SMOKE_FAMILY     bench family to run (default ``fig8_iops``)
    PERF_SMOKE_OUT        where to write the fresh JSON record
                          (default ``perf-smoke/BENCH_<family>.json``)
    PERF_SMOKE_TOLERANCE  allowed fractional drop, e.g. ``0.30`` (default)
    REPRO_BENCH_SCALE     forwarded to the bench harness (default 0.04)

Exit code 0 on pass, 1 on regression.  Run from the repo root:

    PYTHONPATH=src python scripts/perf_smoke.py
"""

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import run_family  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TOLERANCE = 0.30


def main() -> int:
    family = os.environ.get("PERF_SMOKE_FAMILY", "fig8_iops")
    tolerance = float(os.environ.get("PERF_SMOKE_TOLERANCE", str(DEFAULT_TOLERANCE)))
    out = Path(
        os.environ.get("PERF_SMOKE_OUT", f"perf-smoke/BENCH_{family}.json")
    )

    # Single shard + fixed hash seed: the gate measures the serial hot path,
    # not the scheduler, and the workload stream must match the baseline's.
    os.environ.setdefault("REPRO_BENCH_SCALE", "0.04")
    os.environ["REPRO_BENCH_JOBS"] = "1"

    baseline_path = REPO_ROOT / "benchmarks" / "baselines" / f"BENCH_{family}.json"
    if not baseline_path.exists():
        print(f"perf-smoke: no committed baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())

    print(f"perf-smoke: running {family} (scale={os.environ['REPRO_BENCH_SCALE']}, jobs=1)")
    record = run_family(family, json_path=str(out))
    print(f"perf-smoke: wrote {out}")
    print(json.dumps(record, sort_keys=True))

    measured = float(record["cycles_per_sec"])
    reference = float(baseline["cycles_per_sec"])
    floor = reference * (1.0 - tolerance)
    verdict = "PASS" if measured >= floor else "FAIL"
    print(
        f"perf-smoke: {verdict}: measured {measured:.4f} cycles/s vs baseline "
        f"{reference:.4f} (floor {floor:.4f}, tolerance {tolerance:.0%}, "
        f"baseline rev {baseline.get('git_rev', '?')})"
    )
    if measured < floor:
        print(
            "perf-smoke: throughput regressed past the gate; if the slowdown "
            "is intentional, refresh benchmarks/baselines/ (see README).",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
