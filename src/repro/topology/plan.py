"""Topology fault campaigns as engine plans.

:class:`TopologyPlan` packages repeated topology fault cycles as a
:class:`~repro.engine.plan.CampaignPlan` subclass, so the entire engine
surface — sharding, ``--jobs`` process pools, checkpoint/``--resume``,
retry, quarantine, ``--trace`` — applies to topology campaigns unchanged,
and ``jobs=1`` and ``jobs=N`` produce bit-identical merged summaries by
construction (executors only ever call :meth:`TopologyPlan.run_shard`).

One cycle: drive closed-loop host writes into the
:class:`~repro.topology.stack.CacheTopology`, cut the cycle's power domain
at an instant drawn from a dedicated fault stream (so the fault schedule is
identical across cache policies for a given seed), let the rails decay,
power back on, wait for the cache legs to recover, then classify every
acknowledged write **device-intact / device-FWA-but-topology-recovered /
application-visible loss** (see
:meth:`~repro.topology.stack.CacheTopology.audit_and_reset`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.flush import FlushPolicy
from repro.core.results import CampaignResult, FaultCycleResult
from repro.engine.plan import CampaignPlan, ShardSpec
from repro.errors import CampaignError
from repro.rand import uniform_int
from repro.ssd.device import SsdConfig
from repro.topology.stack import CacheTopology, POLICIES
from repro.units import MSEC


@dataclass(frozen=True)
class TopologyPlan(CampaignPlan):
    """A :class:`CampaignPlan` whose shards run topology fault cycles.

    ``faults`` is the number of power-fault cycles.  Extra knobs:

    - ``policy``: cache policy, one of ``wb`` / ``wt`` / ``wa``;
    - ``mirror_cache``: two mirrored cache legs
      (:class:`~repro.raid.mirror.MirrorPair`) instead of one;
    - ``shared_power``: one PDU for cache legs *and* backing store (a fault
      takes everything); otherwise each leg has its own rail, the backing
      store is never faulted, and faults rotate across legs;
    - ``destage``: the WB dirty-ledger policy — ``batch_pages`` per destage
      round, admission stall at ``max_dirty_pages``;
    - ``backing_request_us`` / ``backing_page_us``: backing-store latency;
    - ``fault_window_us``: the fault instant is drawn uniformly from
      ``[warmup_us, warmup_us + fault_window_us)`` of each cycle's traffic.

    The workload must be a closed-loop pure-write spec: topology audits
    reason about acknowledged writes, and pacing comes from
    ``spec.outstanding``.
    """

    policy: str = "wb"
    mirror_cache: bool = False
    shared_power: bool = False
    destage: FlushPolicy = field(default_factory=FlushPolicy)
    backing_request_us: int = 2 * MSEC
    backing_page_us: int = 50
    fault_window_us: int = 400 * MSEC

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.policy not in POLICIES:
            raise CampaignError(
                f"policy must be one of {'/'.join(POLICIES)}, got {self.policy!r}"
            )
        if self.fault_window_us <= 0:
            raise CampaignError("fault window must be positive")
        if self.backing_request_us <= 0 or self.backing_page_us <= 0:
            raise CampaignError("backing latencies must be positive")
        if self.spec.read_fraction != 0.0:
            raise CampaignError("topology campaigns are write-only workloads")
        if self.spec.open_loop:
            raise CampaignError("topology campaigns are closed-loop workloads")

    def display_label(self) -> str:
        if self.label:
            return self.label
        device = self.device.name if self.device is not None else "generic"
        legs = "mirror" if self.mirror_cache else "single"
        domain = "shared" if self.shared_power else "split"
        return (
            f"topology {self.policy} cache={legs} power={domain} "
            f"device={device} [{self.spec.describe()}]"
        )

    def device_config(self) -> SsdConfig:
        """The cache-leg device config."""
        return self.device if self.device is not None else SsdConfig()

    def build_topology(self, seed: int) -> CacheTopology:
        """A fresh topology for one shard."""
        return CacheTopology(
            device=self.device_config(),
            policy=self.policy,
            mirror_cache=self.mirror_cache,
            shared_power=self.shared_power,
            destage=self.destage,
            backing_request_us=self.backing_request_us,
            backing_page_us=self.backing_page_us,
            seed=seed,
        )

    def run_shard(self, shard: ShardSpec) -> CampaignResult:
        return run_topology_shard(self, shard)


class _TopologyWorker:
    """Closed-loop write source feeding a topology.

    Keeps up to ``spec.outstanding`` host writes in flight; a generated
    write that hits the WB admission throttle is *held* (not regenerated)
    until the dirty ledger drains, so the request sequence is a pure
    function of the traffic stream.  All randomness comes from one named
    stream of the shard's seed tree — the fault schedule draws from a
    different stream, so it is identical across cache policies.
    """

    def __init__(self, plan: TopologyPlan, topo: CacheTopology) -> None:
        self.plan = plan
        self.spec = plan.spec
        self.topo = topo
        self.rng = topo.streams.stream("topology-io")
        self._held = None

    def _next_write(self):
        spec = self.spec
        nlb = uniform_int(self.rng, spec.size_min_pages, spec.size_max_pages)
        slba = spec.region_start_lpn + self.rng.randrange(spec.wss_pages - nlb + 1)
        return slba, nlb

    def drop_held(self) -> None:
        """Discard a held-but-never-submitted write at cycle reset."""
        self._held = None

    def run(self, duration_us: int, quantum_us: int = 1 * MSEC) -> None:
        """Drive traffic for ``duration_us`` of simulated time."""
        topo = self.topo
        kernel = topo.kernel
        deadline = kernel.now + duration_us
        while kernel.now < deadline:
            while topo.in_flight < self.spec.outstanding:
                if self._held is None:
                    self._held = self._next_write()
                lpn, nlb = self._held
                if topo.admission_throttled(nlb):
                    break
                topo.submit_host_write(lpn, topo.alloc_tokens(nlb))
                self._held = None
            kernel.run(until=min(deadline, kernel.now + quantum_us))
            topo.destage_pump()


def run_topology_shard(plan: TopologyPlan, shard: ShardSpec) -> CampaignResult:
    """Execute one shard's topology fault cycles; the engine's entry point.

    Cycle indices in the result are shard-local;
    :func:`repro.engine.plan.merge_shard_results` renumbers them into one
    campaign-wide sequence.  Per-cycle decisions that must not depend on the
    shard split (which leg a split-domain fault hits) key on the
    campaign-wide cycle number.
    """
    topo = plan.build_topology(shard.seed)
    worker = _TopologyWorker(plan, topo)
    fault_rng = topo.streams.stream("topology-fault")
    kernel = topo.kernel
    result = CampaignResult(label=plan.shard_label(shard))
    cycle_offset = sum(s.faults for s in plan.shards()[: shard.index])
    traffic_time = 0

    topo.boot(plan.ready_timeout_us)
    for cycle_index in range(shard.faults):
        # 1. Traffic until the drawn fault instant.
        fault_delay = plan.warmup_us + fault_rng.randrange(plan.fault_window_us)
        worker.run(fault_delay)
        fault_time = kernel.now
        unsafe_before = topo.unsafe_shutdowns()

        # 2. Cut the cycle's power domain and let the rails decay.
        faulted = topo.inject_fault(cycle_offset + cycle_index)
        topo.wait_dead(faulted)
        topo.drain_dead(faulted)
        topo.run_for(plan.settle_us)

        # 3. Power back on, wait for the cache tier, let stragglers land.
        topo.restore(plan.ready_timeout_us)
        topo.quiesce(plan.ready_timeout_us)

        # 4. Classify every acked write and reconcile the topology.
        audit = topo.audit_and_reset()
        worker.drop_held()
        damage = [leg.ssd.last_damage for leg in faulted]
        result.add_cycle(
            FaultCycleResult(
                cycle_index=cycle_index,
                fault_time_us=fault_time,
                requests_completed=audit.acked,
                writes_completed=audit.acked,
                reads_completed=0,
                data_failures=0,
                fwa_failures=audit.lost,
                io_errors=audit.io_errors,
                dirty_pages_lost=sum(
                    d.dirty_pages_lost for d in damage if d is not None
                ),
                collateral_pages=sum(
                    d.collateral_pages_corrupted for d in damage if d is not None
                ),
                unsafe_shutdowns=topo.unsafe_shutdowns() - unsafe_before,
                intact_writes=audit.intact,
                topology_recovered=audit.recovered,
            )
        )
        traffic_time += fault_delay

    result.requests_issued = topo.writes_submitted
    result.traffic_time_us = traffic_time
    return result
