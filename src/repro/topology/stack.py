"""A cache topology: SSD cache tier in front of a durable backing store.

This is the enterprise system of Ahmadian et al.'s follow-up study
(PAPERS.md, arXiv:1912.01555): host writes land in an SSD cache tier
(optionally mirrored across two legs via
:class:`~repro.raid.mirror.MirrorPair`) backed by a slow-but-durable
array (:class:`~repro.topology.backing.BackingStore`).  Three cache
policies decide when a write is acknowledged:

- ``wb`` (write-back): ACK once every cache leg holds the data; a destage
  daemon drains the dirty ledger to the backing store in
  ``FlushPolicy.batch_pages`` batches, and admission stalls once
  ``FlushPolicy.max_dirty_pages`` pages are dirty;
- ``wt`` (write-through): the write warms the cache legs but the ACK waits
  for the backing-store commit;
- ``wa`` (write-around): the cache is bypassed entirely.

Power domains are explicit: ``shared_power=True`` puts every cache leg
*and* the backing store on one PDU (a fault takes the whole rack section);
``shared_power=False`` gives each leg its own rail and keeps the backing
store on a never-faulted rail, so faults hit one cache leg at a time.

After each fault/recovery round-trip, :meth:`CacheTopology.audit_and_reset`
classifies every acknowledged host write by where its live pages survived:

====================  =====================================================
verdict               meaning
====================  =====================================================
``intact``            every live page still at its ack-time durable home
``recovered``         a device lost its copy, but another tier has it
``lost``              some live page exists nowhere — application-visible
====================  =====================================================
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.flush import FlushPolicy
from repro.errors import ConfigurationError, SimulationError
from repro.host.block_layer import BlockLayer, BlockRequest
from repro.power.controller import PowerController
from repro.raid.mirror import MirrorPair
from repro.rand import RandomStreams
from repro.sim import Kernel
from repro.ssd.device import SsdConfig, SsdDevice
from repro.ssd.power_state import DevicePowerState
from repro.topology.backing import BackingStore
from repro.trace.blktrace import BlockTracer
from repro.units import MSEC, SEC

POLICIES = ("wb", "wt", "wa")


@dataclass(frozen=True)
class CycleAudit:
    """Per-cycle classification of every acknowledged host write."""

    acked: int
    intact: int
    recovered: int
    lost: int
    io_errors: int


class _SingleLeg:
    """A non-mirrored cache leg: its own power chain + device + block layer."""

    def __init__(self, kernel: Kernel, config: SsdConfig, seed: int, name: str,
                 power: Optional[PowerController] = None) -> None:
        self.kernel = kernel
        self.power = power if power is not None else PowerController(kernel)
        self.tracer = BlockTracer(kernel)
        self.ssd = SsdDevice(
            kernel, config, self.power.psu, RandomStreams(seed).fork(name), name=name
        )
        self.block = BlockLayer(kernel, self.ssd, self.tracer)


class CacheTopology:
    """SSD cache tier + backing store under one simulation kernel.

    All simulation state is a pure function of the constructor arguments,
    so a topology cycle is reproducible from ``(config, seed)`` alone —
    the property the engine's ``jobs=1 ≡ jobs=N`` guarantee rests on.
    """

    def __init__(
        self,
        *,
        device: SsdConfig,
        policy: str = "wb",
        mirror_cache: bool = False,
        shared_power: bool = False,
        destage: Optional[FlushPolicy] = None,
        backing_request_us: int = 2 * MSEC,
        backing_page_us: int = 50,
        seed: int = 0,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(f"unknown cache policy {policy!r}")
        self.policy = policy
        self.mirror_cache = mirror_cache
        self.shared_power = shared_power
        self.destage = destage if destage is not None else FlushPolicy()
        self.kernel = Kernel()
        self.streams = RandomStreams(seed)

        self.pdu: Optional[PowerController] = (
            PowerController(self.kernel) if shared_power else None
        )
        self.mirror: Optional[MirrorPair] = None
        if mirror_cache:
            self.mirror = MirrorPair(
                config=device,
                shared_power=shared_power,
                seed=seed,
                kernel=self.kernel,
                power=self.pdu,
            )
            self.legs = list(self.mirror.replicas)
        else:
            self.legs = [
                _SingleLeg(self.kernel, device, seed, "cache-0", power=self.pdu)
            ]
        backing_power = self.pdu if shared_power else PowerController(self.kernel)
        self.backing = BackingStore(
            self.kernel, backing_power, backing_request_us, backing_page_us
        )

        # Host-visible state, reset every cycle by audit_and_reset().
        self.dirty: "OrderedDict[int, int]" = OrderedDict()  # lpn -> token (WB)
        self.acked: List[Tuple[int, int, List[int]]] = []  # (order, lpn, tokens)
        self.in_flight = 0
        self.io_errors = 0
        self._ack_order = 0
        self._destage_pending = 0
        self._next_token = 1
        # Lifetime statistics.
        self.writes_submitted = 0
        self.pages_destaged = 0

    # -- lifecycle ---------------------------------------------------------------------

    def _controllers(self) -> List[PowerController]:
        seen: Dict[int, PowerController] = {}
        for controller in [leg.power for leg in self.legs] + [self.backing.power]:
            seen.setdefault(id(controller), controller)
        return list(seen.values())

    def _pump_until(self, predicate: Callable[[], bool], timeout_us: int) -> None:
        deadline = self.kernel.now + timeout_us
        while not predicate():
            if self.kernel.now >= deadline:
                raise SimulationError("topology operation timed out")
            next_event = self.kernel.next_event_time()
            if next_event is None:
                raise SimulationError("simulation idle during topology operation")
            self.kernel.run(until=min(next_event, deadline))

    def boot(self, timeout_us: int = 10 * SEC) -> None:
        """Power every domain on and wait for all cache legs."""
        for controller in self._controllers():
            controller.power_on()
        self._pump_until(
            lambda: all(leg.ssd.is_ready for leg in self.legs), timeout_us
        )

    def run_for(self, duration_us: int) -> None:
        """Advance simulated time."""
        self.kernel.run(until=self.kernel.now + duration_us)

    # -- host write path ---------------------------------------------------------------

    def alloc_tokens(self, count: int) -> List[int]:
        """Fresh verification tokens — unique for the topology's lifetime,
        so stale pages from earlier cycles can never alias a later audit."""
        start = self._next_token
        self._next_token += count
        return list(range(start, start + count))

    def admission_throttled(self, incoming_pages: int) -> bool:
        """Whether a WB host write must wait for the dirty ledger to drain."""
        if self.policy != "wb":
            return False
        return self.destage.throttled(len(self.dirty), incoming_pages)

    def submit_host_write(self, lpn: int, tokens: List[int]) -> None:
        """One application write; the ACK point depends on the policy."""
        self.writes_submitted += 1
        self.in_flight += 1
        if self.policy == "wb":
            self._submit_write_back(lpn, tokens)
            return
        if self.policy == "wt":
            # Warm the cache legs (best-effort: a leg failure must not fail
            # a write whose durability contract is the backing store).
            for leg in self.legs:
                if leg.ssd.is_ready:
                    leg.block.submit(
                        BlockRequest(
                            lpn=lpn, page_count=len(tokens), is_write=True,
                            tokens=list(tokens),
                        )
                    )
        self.backing.submit_write(
            lpn, list(tokens), lambda ok: self._host_done(lpn, tokens, ok)
        )

    def _submit_write_back(self, lpn: int, tokens: List[int]) -> None:
        state = {"pending": len(self.legs), "ok": True}

        def leg_done(request: BlockRequest) -> None:
            state["pending"] -= 1
            state["ok"] = state["ok"] and request.ok
            if state["pending"] == 0:
                if state["ok"]:
                    for offset, token in enumerate(tokens):
                        self.dirty[lpn + offset] = token
                self._host_done(lpn, tokens, state["ok"])

        for leg in self.legs:
            leg.block.submit(
                BlockRequest(
                    lpn=lpn, page_count=len(tokens), is_write=True,
                    tokens=list(tokens), on_done=leg_done,
                )
            )

    def _host_done(self, lpn: int, tokens: List[int], ok: bool) -> None:
        self.in_flight -= 1
        if ok:
            self.acked.append((self._ack_order, lpn, list(tokens)))
            self._ack_order += 1
        else:
            self.io_errors += 1

    # -- destage daemon (WB) -----------------------------------------------------------

    def destage_pump(self) -> None:
        """Drain one ``batch_pages`` batch of the dirty ledger to backing.

        Called once per traffic quantum; at most one batch is in flight at
        a time, so destage throughput is bounded by the backing store's
        latency — the pressure that makes the admission throttle bind.
        """
        if self.policy != "wb" or self._destage_pending or not self.backing.powered:
            return
        batch: List[Tuple[int, int]] = []
        for lpn, token in self.dirty.items():
            batch.append((lpn, token))
            if len(batch) >= self.destage.batch_pages:
                break
        if not batch:
            return
        for run in _contiguous_page_runs(batch):
            self._destage_pending += 1
            self.backing.submit_write(
                run[0][0],
                [token for _, token in run],
                lambda ok, run=run: self._destage_done(run, ok),
            )

    def _destage_done(self, run: List[Tuple[int, int]], ok: bool) -> None:
        self._destage_pending -= 1
        if not ok:
            return  # pages stay dirty; a later pump retries them
        for lpn, token in run:
            if self.dirty.get(lpn) == token:  # not overwritten meanwhile
                del self.dirty[lpn]
        self.pages_destaged += len(run)

    # -- fault injection ---------------------------------------------------------------

    def inject_fault(self, campaign_cycle: int) -> List[object]:
        """Cut this cycle's fault domain; returns the cache legs it hits.

        Shared power drops the PDU (every leg *and* the backing store);
        independent rails rotate the fault across cache legs by the
        campaign-wide cycle number, so the victim sequence is a property of
        the plan — not of how the campaign was sharded.
        """
        if self.shared_power:
            assert self.pdu is not None
            self.pdu.power_off()
            self.backing.power_fail()
            return list(self.legs)
        victim = self.legs[campaign_cycle % len(self.legs)]
        victim.power.power_off()
        return [victim]

    def wait_dead(self, legs: List[object], timeout_us: int = 3 * SEC) -> None:
        """Run until every faulted leg has browned out."""
        self._pump_until(
            lambda: all(leg.ssd.state is DevicePowerState.DEAD for leg in legs),
            timeout_us,
        )

    def drain_dead(self, legs: List[object]) -> None:
        """Error out requests still queued behind the dead legs."""
        for leg in legs:
            leg.block.flush_queue_as_errors()

    def restore(self, timeout_us: int = 10 * SEC) -> None:
        """Power every domain back on and wait for all legs to recover."""
        for controller in self._controllers():
            controller.power_on()
        self._pump_until(
            lambda: all(leg.ssd.is_ready for leg in self.legs), timeout_us
        )

    def quiesce(self, timeout_us: int = 10 * SEC) -> None:
        """Wait until every host write and destage batch has resolved."""
        self._pump_until(
            lambda: self.in_flight == 0 and self._destage_pending == 0, timeout_us
        )

    def unsafe_shutdowns(self) -> int:
        """Sum of the legs' SMART unsafe-shutdown counters."""
        return sum(leg.ssd.unsafe_shutdowns for leg in self.legs)

    # -- audit -------------------------------------------------------------------------

    def audit_and_reset(self) -> CycleAudit:
        """Classify every acked write of the cycle, then reset cycle state.

        A write's *live* pages are those not superseded by a later acked
        write.  A fully-superseded write is intact by definition (losing it
        loses nothing the application can still read).  Per live page the
        audit asks where the data survived: the write's ack-time durable
        home (cache legs for WB, backing store for WT/WA), or any other
        tier.  The worst live page decides the write's verdict.

        The reset models the operator's post-incident runbook: surviving
        live pages are reconciled into the backing store (the recovery
        daemon's destage), the dirty ledger is invalidated (caches restart
        cold after an unclean shutdown), and per-cycle counters clear.
        """
        last_writer: Dict[int, Tuple[int, int]] = {}
        for order, lpn, tokens in self.acked:
            for offset, token in enumerate(tokens):
                last_writer[lpn + offset] = (order, token)

        wrote_cache = self.policy in ("wb", "wt")
        intact = recovered = lost = 0
        for order, lpn, tokens in self.acked:
            page_lost = False
            device_lost = False
            for offset, token in enumerate(tokens):
                page = lpn + offset
                if last_writer[page][0] != order:
                    continue  # superseded by a later acked write
                in_backing = self.backing.peek(page) == token
                in_cache = wrote_cache and any(
                    leg.ssd.is_ready and leg.ssd.peek(page) == token
                    for leg in self.legs
                )
                if self.policy == "wb":
                    home_lost = any(
                        not leg.ssd.is_ready or leg.ssd.peek(page) != token
                        for leg in self.legs
                    )
                else:
                    home_lost = not in_backing
                if not (in_backing or in_cache):
                    page_lost = True
                elif home_lost:
                    device_lost = True
            if page_lost:
                lost += 1
            elif device_lost:
                recovered += 1
            else:
                intact += 1

        # Recovery daemon: re-home every surviving live page into backing.
        for page, (_, token) in sorted(last_writer.items()):
            if self.backing.peek(page) == token:
                continue
            if wrote_cache and any(
                leg.ssd.is_ready and leg.ssd.peek(page) == token
                for leg in self.legs
            ):
                self.backing.restore(page, token)

        audit = CycleAudit(
            acked=len(self.acked),
            intact=intact,
            recovered=recovered,
            lost=lost,
            io_errors=self.io_errors,
        )
        self.acked.clear()
        self.dirty.clear()
        self.io_errors = 0
        self._ack_order = 0
        return audit


def _contiguous_page_runs(
    batch: List[Tuple[int, int]]
) -> List[List[Tuple[int, int]]]:
    """Split ``(lpn, token)`` pairs into LPN-contiguous submission runs."""
    ordered = sorted(batch)
    runs: List[List[Tuple[int, int]]] = []
    for lpn, token in ordered:
        if runs and runs[-1][-1][0] == lpn - 1:
            runs[-1].append((lpn, token))
        else:
            runs.append([(lpn, token)])
    return runs
