"""The durable backing tier behind an SSD cache.

Ahmadian et al.'s follow-up system (PAPERS.md, arXiv:1912.01555) is a
write-back SSD cache in front of an HDD array.  The interesting physics of
that system live entirely in the *cache* tier — the backing array is slow
but durable.  :class:`BackingStore` models exactly that contract: committed
pages survive any power fault, but a write takes a seek-plus-stream latency
to commit and any write still in flight when the tier's power domain fails
is dropped (the array controller never acknowledged it).

The store hangs off a :class:`~repro.power.controller.PowerController` so a
topology can put it on the cache tier's PDU (shared-power rack: one fault
takes everything) or on its own rail (independent domains).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.power.controller import PowerController
from repro.sim import Kernel
from repro.units import MSEC


class BackingStore:
    """A durable, power-aware page store with HDD-array write latency.

    ``request_us`` is the fixed per-request overhead (seek/rotate), and
    ``page_us`` the per-page streaming cost.  Completion callbacks receive
    ``True`` only when every page of the write committed; a power fault in
    the store's domain (:meth:`power_fail`) drops all in-flight writes.
    """

    def __init__(
        self,
        kernel: Kernel,
        power: PowerController,
        request_us: int = 2 * MSEC,
        page_us: int = 50,
    ) -> None:
        if request_us <= 0 or page_us <= 0:
            raise ConfigurationError("backing latencies must be positive")
        self.kernel = kernel
        self.power = power
        self.request_us = request_us
        self.page_us = page_us
        self.committed: Dict[int, int] = {}
        self._epoch = 0
        # Statistics.
        self.writes_submitted = 0
        self.writes_committed = 0
        self.writes_dropped = 0
        self.pages_committed = 0

    @property
    def powered(self) -> bool:
        """Whether the store's power domain is up."""
        return self.power.is_powered

    def submit_write(
        self,
        lpn: int,
        tokens: List[int],
        on_done: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Write ``tokens`` at ``lpn``; ``on_done(ok)`` fires at commit.

        A write submitted against a dead domain, or still in flight when the
        domain faults, completes with ``ok=False`` and commits nothing —
        partial commits do not exist at this tier (the array controller
        journals the stripe).
        """
        if not tokens:
            raise ConfigurationError("empty backing write")
        self.writes_submitted += 1
        if not self.powered:
            self.writes_dropped += 1
            if on_done is not None:
                on_done(False)
            return
        epoch = self._epoch
        latency = self.request_us + len(tokens) * self.page_us

        def commit() -> None:
            if epoch != self._epoch or not self.powered:
                self.writes_dropped += 1
                if on_done is not None:
                    on_done(False)
                return
            for offset, token in enumerate(tokens):
                self.committed[lpn + offset] = token
            self.writes_committed += 1
            self.pages_committed += len(tokens)
            if on_done is not None:
                on_done(True)

        self.kernel.schedule(latency, commit)

    def power_fail(self) -> None:
        """Drop every in-flight write (call when the domain's rail is cut)."""
        self._epoch += 1

    def peek(self, lpn: int) -> Optional[int]:
        """Committed token at ``lpn`` (forensic read; None = never written)."""
        return self.committed.get(lpn)

    def restore(self, lpn: int, token: int) -> None:
        """Directly install a recovered page (post-fault reconciliation)."""
        self.committed[lpn] = token
