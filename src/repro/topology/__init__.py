"""Multi-device cache topologies under power-fault campaigns.

The paper studies one SSD losing acknowledged writes on power failure;
Ahmadian et al.'s follow-up (PAPERS.md, arXiv:1912.01555) shows the same
mechanism amplified in enterprise systems where a write-back SSD cache
fronts a durable array — a fault in the cache tier silently loses data the
application believes durable.  This package composes the already-built
pieces (``repro.cache`` policies, ``repro.raid.mirror`` legs,
``repro.power`` domains) into such topologies and runs the fault campaign
against the *topology*, classifying each acknowledged host write as
device-intact, device-FWA-but-topology-recovered, or application-visible
loss.

Public surface: :class:`~repro.topology.stack.CacheTopology`,
:class:`~repro.topology.backing.BackingStore`,
:class:`~repro.topology.plan.TopologyPlan`,
:func:`~repro.topology.plan.run_topology_shard`.
"""

from repro.topology.backing import BackingStore
from repro.topology.plan import TopologyPlan, run_topology_shard
from repro.topology.stack import POLICIES, CacheTopology, CycleAudit

__all__ = [
    "BackingStore",
    "CacheTopology",
    "CycleAudit",
    "POLICIES",
    "TopologyPlan",
    "run_topology_shard",
]
