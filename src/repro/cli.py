"""Command-line interface.

Gives the testbed a shell entry point, mirroring how the paper's platform
was driven: pick a device and a workload, inject faults, read the Analyzer's
verdicts.

Usage (installed or via ``python -m repro``)::

    python -m repro list-devices
    python -m repro campaign --device ssd-a --faults 10 --read-pct 0
    python -m repro discharge --load
    python -m repro post-ack --intervals 50,250,450,800
    python -m repro smart --device ssd-b --faults 3
    python -m repro stress dirty-cycle --repeat 25 --seed 7
    python -m repro topology run --policy wb --mirror-cache
    python -m repro apps run --app wal --faults 8 --per-cycle
    python -m repro apps run --app kv --no-fsync --explain 3
    python -m repro trace report run.trace.jsonl
    python -m repro trace report --follow run.trace.jsonl   # live dashboard
    python -m repro checkpoint compact run.ck.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import ascii_table
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.experiment import run_discharge_capture, run_post_ack_sweep
from repro.core.platform import TestPlatform
from repro.engine import (
    CampaignPlan,
    ConsoleProgress,
    DEFAULT_SHARD_FAULTS,
    fanout_hooks,
    format_eta,
    run_plan,
    TraceWriter,
)
from repro.errors import (
    CampaignError,
    CampaignInterrupted,
    CheckpointError,
    EngineTraceError,
)
from repro.ssd import models
from repro.units import GIB, KIB
from repro.workload.spec import AccessPattern, WorkloadSpec


def _add_fault_tolerance_flags(command: argparse.ArgumentParser) -> None:
    """Shared engine fault-tolerance/resume flags (campaign + fleet)."""
    command.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write-ahead shard journal; a killed run restarts with --resume",
    )
    command.add_argument(
        "--resume",
        action="store_true",
        help="skip shards already journaled in --checkpoint (same plan only)",
    )
    command.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry budget per shard before it is quarantined (default 2)",
    )
    command.add_argument(
        "--quarantine",
        action="store_true",
        help="exit 0 even when shards were quarantined (default: exit 1)",
    )
    command.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry a shard running longer than this (needs --jobs > 1)",
    )
    command.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="append per-shard telemetry to a JSONL trace (see `repro trace report`)",
    )
    command.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help=(
            "serve shards to `repro worker` processes over TCP instead of "
            "running them locally (port 0 picks a free port; ignores --jobs)"
        ),
    )
    command.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="requeue a shard whose worker stops heartbeating for this long "
        "(with --listen; default 15)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSD power-outage fault-injection testbed (DATE'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-devices", help="show the device presets (Table I + extras)")

    campaign = sub.add_parser("campaign", help="run a fault-injection campaign")
    campaign.add_argument("--device", default="ssd-a", help="device preset name")
    campaign.add_argument("--faults", type=int, default=10)
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--wss-gib", type=int, default=16)
    campaign.add_argument("--read-pct", type=int, default=0, choices=range(0, 101), metavar="0-100")
    campaign.add_argument("--size-min-kib", type=int, default=4)
    campaign.add_argument("--size-max-kib", type=int, default=1024)
    campaign.add_argument(
        "--pattern", choices=["random", "sequential"], default="random"
    )
    campaign.add_argument(
        "--sequence", choices=["RAR", "RAW", "WAR", "WAW"], default=None
    )
    campaign.add_argument("--iops", type=float, default=None, help="open-loop requested IOPS")
    campaign.add_argument("--per-cycle", action="store_true", help="print per-fault rows")
    campaign.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (shard plan is fixed, so results match any job count)",
    )
    campaign.add_argument(
        "--shard-faults",
        type=int,
        default=DEFAULT_SHARD_FAULTS,
        help="max faults per engine shard (determines available parallelism)",
    )
    campaign.add_argument(
        "--progress", action="store_true", help="print engine shard telemetry to stderr"
    )
    _add_fault_tolerance_flags(campaign)

    discharge = sub.add_parser("discharge", help="capture the Fig. 4 PSU waveform")
    group = discharge.add_mutually_exclusive_group()
    group.add_argument("--load", dest="load", action="store_true", default=True)
    group.add_argument("--no-load", dest="load", action="store_false")
    discharge.add_argument("--samples", type=int, default=20, help="rows to print")

    post_ack = sub.add_parser("post-ack", help="run the §IV-A post-ACK interval sweep")
    post_ack.add_argument("--intervals", default="50,250,450,800")
    post_ack.add_argument("--cycles", type=int, default=3)
    post_ack.add_argument("--burst", type=int, default=30)
    post_ack.add_argument("--seed", type=int, default=1)

    smart = sub.add_parser("smart", help="campaign, then print the SMART snapshot")
    smart.add_argument("--device", default="ssd-a")
    smart.add_argument("--faults", type=int, default=3)
    smart.add_argument("--seed", type=int, default=1)
    smart.add_argument(
        "--json",
        action="store_true",
        help="emit the snapshot as machine-readable JSON instead of a table",
    )

    stress = sub.add_parser(
        "stress", help="NVMe dirty-power-cycle stress loops with acked-write audit"
    )
    stress_sub = stress.add_subparsers(dest="stress_command", required=True)
    dirty = stress_sub.add_parser(
        "dirty-cycle",
        help=(
            "repeated fault -> power-on -> recover -> verify loops over the "
            "NVMe queue pair; every acked LBA is classified via command-log "
            "replay and SMART counters are audited each cycle"
        ),
    )
    dirty.add_argument("--device", default="ssd-a", help="device preset name")
    dirty.add_argument("--repeat", type=int, default=10, help="dirty cycles to run")
    dirty.add_argument("--seed", type=int, default=1)
    dirty.add_argument("--wss-gib", type=int, default=4)
    dirty.add_argument("--read-pct", type=int, default=0, choices=range(0, 101), metavar="0-100")
    dirty.add_argument("--size-min-kib", type=int, default=4)
    dirty.add_argument("--size-max-kib", type=int, default=64)
    dirty.add_argument(
        "--pattern", choices=["random", "sequential"], default="random"
    )
    dirty.add_argument("--iops", type=float, default=None, help="open-loop requested IOPS")
    dirty.add_argument("--qdepth", type=int, default=64, help="NVMe queue-pair depth")
    dirty.add_argument(
        "--flush-every",
        type=int,
        default=0,
        help="chase every Nth write with a FLUSH (0 disables)",
    )
    dirty.add_argument(
        "--write-zeroes-pct",
        type=int,
        default=0,
        choices=range(0, 101),
        metavar="0-100",
        help="percent of writes issued as WRITE ZEROES",
    )
    dirty.add_argument(
        "--recovery-fault-every",
        type=int,
        default=0,
        metavar="N",
        help="every Nth cycle also cuts power mid-FTL-recovery (0 disables)",
    )
    dirty.add_argument(
        "--cmdlog",
        metavar="DIR",
        default=None,
        help="persist per-shard command logs (JSONL, CRC per record) here",
    )
    dirty.add_argument("--per-cycle", action="store_true", help="print per-cycle rows")
    dirty.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (shard plan is fixed, so results match any job count)",
    )
    dirty.add_argument(
        "--shard-cycles",
        type=int,
        default=DEFAULT_SHARD_FAULTS,
        help="max dirty cycles per engine shard (determines available parallelism)",
    )
    dirty.add_argument(
        "--progress", action="store_true", help="print engine shard telemetry to stderr"
    )
    _add_fault_tolerance_flags(dirty)

    topology = sub.add_parser(
        "topology",
        help="fault campaigns against cache topologies (SSD cache + backing store)",
    )
    topology_sub = topology.add_subparsers(dest="topology_command", required=True)
    topo_run = topology_sub.add_parser(
        "run",
        help=(
            "repeated power faults against an SSD cache tier in front of a "
            "durable backing store; every acked host write is classified "
            "device-intact / topology-recovered / application-visible loss"
        ),
    )
    topo_run.add_argument(
        "--policy",
        choices=["wb", "wt", "wa"],
        default="wb",
        help="cache policy: write-back, write-through, or write-around",
    )
    topo_run.add_argument(
        "--mirror-cache",
        action="store_true",
        help="mirror the cache tier across two legs (RAID-1 MirrorPair)",
    )
    topo_run.add_argument(
        "--shared-power",
        action="store_true",
        help=(
            "one PDU for cache legs and backing store (default: independent "
            "rails; faults rotate across cache legs, backing never faults)"
        ),
    )
    topo_run.add_argument("--device", default="ssd-a", help="cache-leg device preset")
    topo_run.add_argument("--faults", type=int, default=6, help="power-fault cycles")
    topo_run.add_argument("--seed", type=int, default=1)
    topo_run.add_argument("--wss-gib", type=int, default=1)
    topo_run.add_argument("--size-min-kib", type=int, default=4)
    topo_run.add_argument("--size-max-kib", type=int, default=64)
    topo_run.add_argument(
        "--outstanding", type=int, default=32, help="closed-loop host writes in flight"
    )
    topo_run.add_argument(
        "--destage-batch",
        type=int,
        default=64,
        metavar="PAGES",
        help="WB destage batch size (FlushPolicy.batch_pages)",
    )
    topo_run.add_argument(
        "--max-dirty",
        type=int,
        default=256,
        metavar="PAGES",
        help="WB admission throttle (FlushPolicy.max_dirty_pages)",
    )
    topo_run.add_argument("--per-cycle", action="store_true", help="print per-cycle rows")
    topo_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (shard plan is fixed, so results match any job count)",
    )
    topo_run.add_argument(
        "--shard-cycles",
        type=int,
        default=DEFAULT_SHARD_FAULTS,
        help="max fault cycles per engine shard (determines available parallelism)",
    )
    topo_run.add_argument(
        "--progress", action="store_true", help="print engine shard telemetry to stderr"
    )
    _add_fault_tolerance_flags(topo_run)

    apps = sub.add_parser(
        "apps",
        help="application crash-consistency campaigns with the semantic auditor",
    )
    apps_sub = apps.add_subparsers(dest="apps_command", required=True)
    apps_run = apps_sub.add_parser(
        "run",
        help=(
            "power-fault cycles against an application model (WAL database, "
            "log-structured KV store, HPC checkpoint loop) on the journaling "
            "filesystem; every acked promise is classified intact / "
            "torn-recovered / committed-loss / silent-corruption / "
            "recovery-failed by the app's own recovery path"
        ),
    )
    apps_run.add_argument(
        "--app",
        choices=["wal", "kv", "hpc"],
        default="wal",
        help="which workload model to run (default wal)",
    )
    apps_run.add_argument("--device", default="ssd-a", help="device preset name")
    apps_run.add_argument("--faults", type=int, default=8, help="power-fault cycles")
    apps_run.add_argument("--seed", type=int, default=1)
    apps_run.add_argument(
        "--journal-blocks",
        type=int,
        default=64,
        help="filesystem journal size in blocks (small values wrap often)",
    )
    apps_run.add_argument(
        "--no-fsync",
        action="store_true",
        help="ack before flush (the mis-configured-application contrast leg)",
    )
    apps_run.add_argument(
        "--no-checksums",
        action="store_true",
        help="KV records unsealed: replay trusts storage (silent-corruption leg)",
    )
    apps_run.add_argument(
        "--warmup-ms",
        type=int,
        default=40,
        help="traffic before the fault window opens (default 40 ms)",
    )
    apps_run.add_argument(
        "--fault-window-ms",
        type=int,
        default=150,
        help="fault instant drawn uniformly from this window (default 150 ms)",
    )
    apps_run.add_argument(
        "--explain",
        type=int,
        default=None,
        metavar="CYCLE",
        help=(
            "replay one campaign cycle in isolation and print the mini-report "
            "(promise log, per-LBA device verdicts, semantic verdict chain)"
        ),
    )
    apps_run.add_argument("--per-cycle", action="store_true", help="print per-cycle rows")
    apps_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (shard plan is fixed, so results match any job count)",
    )
    apps_run.add_argument(
        "--shard-cycles",
        type=int,
        default=DEFAULT_SHARD_FAULTS,
        help="max fault cycles per engine shard (determines available parallelism)",
    )
    apps_run.add_argument(
        "--progress", action="store_true", help="print engine shard telemetry to stderr"
    )
    _add_fault_tolerance_flags(apps_run)

    fleet = sub.add_parser(
        "fleet", help="run the Table I population (six units) and rank by loss"
    )
    fleet.add_argument("--faults", type=int, default=4)
    fleet.add_argument("--seed", type=int, default=1)
    fleet.add_argument("--wss-gib", type=int, default=8)
    fleet.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; the fleet's per-device shards run concurrently",
    )
    fleet.add_argument(
        "--progress", action="store_true", help="print engine shard telemetry to stderr"
    )
    _add_fault_tolerance_flags(fleet)

    worker = sub.add_parser(
        "worker",
        help="execute shards for a coordinator started with --listen",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address printed by `repro campaign/fleet --listen`",
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to keep retrying the initial connection (default 10)",
    )
    worker.add_argument(
        "--persist",
        action="store_true",
        help=(
            "outlive individual campaigns: reconnect after coordinator "
            "restarts and serve successive `repro serve` submissions; ends "
            "once no coordinator answers within --connect-timeout"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="run the campaign service daemon (submissions + result cache)",
    )
    serve.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="address to listen on (default 127.0.0.1:0 — a free port)",
    )
    serve.add_argument(
        "--cas",
        required=True,
        metavar="DIR",
        help="content-addressed result store directory (created on demand)",
    )
    serve.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="requeue a shard whose worker stops heartbeating (default 15)",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retry budget per shard before quarantine/failure (default 2)",
    )
    serve.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="requeue a shard running longer than this",
    )
    serve.add_argument(
        "--quarantine",
        action="store_true",
        help="complete campaigns degraded instead of failing them",
    )

    submit = sub.add_parser(
        "submit", help="submit a campaign to a `repro serve` daemon"
    )
    submit.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="campaign service address printed by `repro serve`",
    )
    submit.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to keep retrying the initial connection (default 10)",
    )
    submit.add_argument("--device", default="ssd-a", help="device preset name")
    submit.add_argument("--faults", type=int, default=10)
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument("--wss-gib", type=int, default=16)
    submit.add_argument(
        "--read-pct", type=int, default=0, choices=range(0, 101), metavar="0-100"
    )
    submit.add_argument("--size-min-kib", type=int, default=4)
    submit.add_argument("--size-max-kib", type=int, default=1024)
    submit.add_argument(
        "--pattern", choices=["random", "sequential"], default="random"
    )
    submit.add_argument(
        "--sequence", choices=["RAR", "RAW", "WAR", "WAW"], default=None
    )
    submit.add_argument(
        "--iops", type=float, default=None, help="open-loop requested IOPS"
    )
    submit.add_argument(
        "--shard-faults",
        type=int,
        default=DEFAULT_SHARD_FAULTS,
        help="max faults per engine shard (determines available parallelism)",
    )
    submit.add_argument(
        "--progress",
        action="store_true",
        help="print the streamed engine events to stderr",
    )

    follow = sub.add_parser(
        "follow",
        help="stream an active `repro serve` campaign's events read-only",
    )
    follow.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="campaign service address printed by `repro serve`",
    )
    follow.add_argument(
        "--fingerprint",
        default=None,
        help="campaign to follow (default: the most recently accepted one)",
    )
    follow.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to keep retrying the initial connection (default 10)",
    )

    trace = sub.add_parser(
        "trace", help="inspect engine telemetry traces (written with --trace)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report", help="straggler/retry analysis of one trace JSONL"
    )
    trace_report.add_argument(
        "path",
        help="trace file written by --trace, or a REPRO_BENCH_TRACE directory",
    )
    trace_report.add_argument(
        "--top", type=int, default=5, help="how many slowest shards to list (default 5)"
    )
    trace_report.add_argument(
        "--follow",
        action="store_true",
        help=(
            "tail a growing trace live (waits for the file to appear; a "
            "directory follows a whole bench sweep); exits at the final "
            "plan-finished record or Ctrl-C"
        ),
    )
    trace_report.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="snapshot cadence with --follow (default 2)",
    )

    checkpoint = sub.add_parser(
        "checkpoint", help="manage write-ahead shard checkpoint journals"
    )
    checkpoint_sub = checkpoint.add_subparsers(dest="checkpoint_command", required=True)
    compact = checkpoint_sub.add_parser(
        "compact",
        help="rewrite a journal to one latest record per shard (atomic replace)",
    )
    compact.add_argument("path", help="journal file written by --checkpoint")

    replay = sub.add_parser(
        "replay", help="replay a captured trace against a device, optionally with a fault"
    )
    replay.add_argument("trace", help="trace file (JSON lines, or blkparse text with --blkparse)")
    replay.add_argument("--blkparse", action="store_true", help="parse blkparse-format text")
    replay.add_argument("--device", default="ssd-a")
    replay.add_argument("--seed", type=int, default=1)
    replay.add_argument(
        "--fault-ms",
        type=float,
        default=None,
        help="inject a power fault this many ms into the replay",
    )

    bench = sub.add_parser(
        "bench", help="run the reproduction benches and emit perf records"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run",
        help="run one bench family and print its BENCH_*.json perf record",
    )
    bench_run.add_argument("family", help="bench family (see `repro bench list`)")
    bench_run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the record as a one-line JSON file",
    )
    bench_sub.add_parser("list", help="list the runnable bench families")

    return parser


def _cmd_list_devices() -> int:
    rows = []
    for name in models.preset_names():
        config = models.by_name(name)
        rows.append(
            [
                name,
                f"{config.capacity_bytes // GIB}G",
                config.cell.name,
                config.ecc.name,
                "yes" if config.cache_enabled else "no",
                "yes" if config.supercap else "no",
                config.release_year or "N/A",
            ]
        )
    print(
        ascii_table(
            ["preset", "size", "cell", "ECC", "cache", "PLP", "year"], rows
        )
    )
    return 0


def _spec_from_args(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(
        wss_bytes=args.wss_gib * GIB,
        read_fraction=args.read_pct / 100.0,
        size_min_bytes=args.size_min_kib * KIB,
        size_max_bytes=args.size_max_kib * KIB,
        pattern=AccessPattern(args.pattern),
        requested_iops=args.iops,
        sequence=args.sequence,
    )


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Supervisor options shared by ``campaign`` and ``fleet``.

    The supervisor always quarantines (the campaign must complete and
    report); ``--quarantine`` only decides the process exit code.
    """
    return {
        "checkpoint": args.checkpoint,
        "resume": args.resume,
        "max_retries": args.max_retries,
        "shard_timeout_s": args.shard_timeout,
        "quarantine": True,
        "listen": args.listen,
        "lease_timeout_s": args.lease_timeout,
    }


def _report_execution(result) -> None:
    """One stderr line of degraded-run accounting, when there is any."""
    stats = result.execution
    if not (stats.shards_resumed or stats.retries or stats.shards_quarantined):
        return
    line = (
        f"[engine] {result.label}: {stats.shards_completed} shards executed, "
        f"{stats.shards_resumed} resumed from checkpoint, {stats.retries} retries, "
        f"{stats.shards_quarantined} quarantined"
    )
    if stats.quarantined:
        line += f" ({', '.join(stats.quarantined)})"
    print(line, file=sys.stderr)


def _cmd_campaign(args: argparse.Namespace) -> int:
    plan = CampaignPlan(
        spec=_spec_from_args(args),
        faults=args.faults,
        device=models.by_name(args.device),
        base_seed=args.seed,
        shard_faults=args.shard_faults,
    )
    print(
        f"running {args.faults} faults against {plan.display_label()} "
        f"({plan.shard_count()} shards, jobs={args.jobs}) ..."
    )
    tracer = TraceWriter(args.trace) if args.trace else None
    progress = fanout_hooks(ConsoleProgress() if args.progress else None, tracer)
    try:
        result = run_plan(
            plan, jobs=args.jobs, progress=progress, **_engine_kwargs(args)
        )
    finally:
        if tracer is not None:
            tracer.close()
    if args.per_cycle:
        print(
            ascii_table(
                ["cycle", "completed", "data failures", "FWA", "IO errors"],
                [
                    [c.cycle_index, c.requests_completed, c.data_failures, c.fwa_failures, c.io_errors]
                    for c in result.cycles
                ],
            )
        )
    summary = result.summary()
    print(
        ascii_table(
            list(summary.keys()),
            [list(summary.values())],
            title="campaign summary",
        )
    )
    _report_execution(result)
    if result.execution.shards_quarantined and not args.quarantine:
        return 1
    return 0


def _cmd_discharge(args: argparse.Namespace) -> int:
    waveform = run_discharge_capture(with_device=args.load, sample_interval_us=2000)
    step = max(1, len(waveform) // max(1, args.samples))
    print(
        ascii_table(
            ["t (ms)", "V"],
            [[f"{t:.0f}", f"{v:.2f}"] for t, v in waveform[::step]],
            title=f"PSU discharge ({'one SSD attached' if args.load else 'unloaded'})",
        )
    )
    return 0


def _cmd_post_ack(args: argparse.Namespace) -> int:
    try:
        intervals = [int(part) for part in args.intervals.split(",") if part.strip()]
    except ValueError:
        print("--intervals must be a comma-separated list of milliseconds", file=sys.stderr)
        return 2
    if not intervals:
        print("--intervals must name at least one interval", file=sys.stderr)
        return 2
    points = run_post_ack_sweep(
        intervals_ms=intervals,
        cycles_per_point=args.cycles,
        burst_requests=args.burst,
        seed=args.seed,
    )
    print(
        ascii_table(
            ["interval (ms)", "ACKed", "lost", "loss fraction"],
            [
                [p.interval_ms, p.acked_requests, p.lost_requests, f"{p.loss_fraction:.3f}"]
                for p in points
            ],
            title="post-ACK vulnerability window (paper: up to ~700 ms)",
        )
    )
    return 0


def _cmd_smart(args: argparse.Namespace) -> int:
    config = models.by_name(args.device)
    spec = WorkloadSpec(wss_bytes=8 * GIB, read_fraction=0.0, outstanding=16)
    platform = TestPlatform(spec, config=config, seed=args.seed)
    Campaign(platform, CampaignConfig(faults=args.faults)).run()
    log = platform.ssd.smart_log()
    if args.json:
        import json as json_mod

        print(json_mod.dumps(log.as_dict(), indent=2, sort_keys=True))
    else:
        print(log.render())
    return 0


def _cmd_stress_dirty_cycle(args: argparse.Namespace) -> int:
    from repro.stress import DirtyCyclePlan
    from repro.units import KIB as _KIB

    spec = WorkloadSpec(
        wss_bytes=args.wss_gib * GIB,
        read_fraction=args.read_pct / 100.0,
        size_min_bytes=args.size_min_kib * _KIB,
        size_max_bytes=args.size_max_kib * _KIB,
        pattern=AccessPattern(args.pattern),
        requested_iops=args.iops,
    )
    plan = DirtyCyclePlan(
        spec=spec,
        faults=args.repeat,
        device=models.by_name(args.device),
        base_seed=args.seed,
        shard_faults=args.shard_cycles,
        qdepth=args.qdepth,
        flush_every=args.flush_every,
        write_zeroes_frac=args.write_zeroes_pct / 100.0,
        recovery_fault_every=args.recovery_fault_every,
        cmdlog_dir=args.cmdlog,
    )
    print(
        f"running {args.repeat} dirty power cycles against {plan.display_label()} "
        f"({plan.shard_count()} shards, jobs={args.jobs}) ..."
    )
    tracer = TraceWriter(args.trace) if args.trace else None
    progress = fanout_hooks(ConsoleProgress() if args.progress else None, tracer)
    try:
        result = run_plan(
            plan, jobs=args.jobs, progress=progress, **_engine_kwargs(args)
        )
    finally:
        if tracer is not None:
            tracer.close()
    if args.per_cycle:
        print(
            ascii_table(
                ["cycle", "acked", "intact", "FWA", "data loss", "IO err", "unsafe"],
                [
                    [
                        c.cycle_index,
                        c.writes_completed,
                        c.intact_writes,
                        c.fwa_failures,
                        c.data_failures,
                        c.io_errors,
                        c.unsafe_shutdowns,
                    ]
                    for c in result.cycles
                ],
            )
        )
    summary = dict(result.summary())
    summary["unsafe_shutdowns"] = result.unsafe_shutdowns
    summary["intact_writes"] = result.intact_writes
    print(
        ascii_table(
            list(summary.keys()),
            [list(summary.values())],
            title="dirty-cycle summary",
        )
    )
    _report_execution(result)
    if result.execution.shards_quarantined and not args.quarantine:
        return 1
    return 0


def _cmd_topology_run(args: argparse.Namespace) -> int:
    from repro.cache.flush import FlushPolicy
    from repro.topology import TopologyPlan
    from repro.units import KIB as _KIB

    spec = WorkloadSpec(
        wss_bytes=args.wss_gib * GIB,
        read_fraction=0.0,
        size_min_bytes=args.size_min_kib * _KIB,
        size_max_bytes=args.size_max_kib * _KIB,
        outstanding=args.outstanding,
    )
    plan = TopologyPlan(
        spec=spec,
        faults=args.faults,
        device=models.by_name(args.device),
        base_seed=args.seed,
        shard_faults=args.shard_cycles,
        policy=args.policy,
        mirror_cache=args.mirror_cache,
        shared_power=args.shared_power,
        destage=FlushPolicy(
            batch_pages=args.destage_batch, max_dirty_pages=args.max_dirty
        ),
    )
    print(
        f"running {args.faults} topology faults against {plan.display_label()} "
        f"({plan.shard_count()} shards, jobs={args.jobs}) ..."
    )
    tracer = TraceWriter(args.trace) if args.trace else None
    progress = fanout_hooks(ConsoleProgress() if args.progress else None, tracer)
    try:
        result = run_plan(
            plan, jobs=args.jobs, progress=progress, **_engine_kwargs(args)
        )
    finally:
        if tracer is not None:
            tracer.close()
    if args.per_cycle:
        print(
            ascii_table(
                ["cycle", "acked", "intact", "recovered", "app loss", "IO err", "unsafe"],
                [
                    [
                        c.cycle_index,
                        c.writes_completed,
                        c.intact_writes,
                        c.topology_recovered,
                        c.fwa_failures,
                        c.io_errors,
                        c.unsafe_shutdowns,
                    ]
                    for c in result.cycles
                ],
            )
        )
    summary = dict(result.summary())
    summary["intact_writes"] = result.intact_writes
    summary["topology_recovered"] = result.topology_recovered
    summary["app_visible_loss"] = result.fwa_failures
    summary["unsafe_shutdowns"] = result.unsafe_shutdowns
    print(
        ascii_table(
            list(summary.keys()),
            [list(summary.values())],
            title="topology summary",
        )
    )
    _report_execution(result)
    if result.execution.shards_quarantined and not args.quarantine:
        return 1
    return 0


def _app_plan_from_args(args: argparse.Namespace):
    from repro.apps import AppPlan
    from repro.units import MSEC

    return AppPlan(
        spec=WorkloadSpec(),
        faults=args.faults,
        device=models.by_name(args.device),
        base_seed=args.seed,
        shard_faults=args.shard_cycles,
        warmup_us=args.warmup_ms * MSEC,
        app=args.app,
        fault_window_us=args.fault_window_ms * MSEC,
        journal_blocks=args.journal_blocks,
        app_fsync=not args.no_fsync,
        app_checksums=not args.no_checksums,
    )


def _cmd_apps_run(args: argparse.Namespace) -> int:
    plan = _app_plan_from_args(args)
    if args.explain is not None:
        from repro.apps.explain import explain_cycle

        print(explain_cycle(plan, args.explain))
        return 0
    print(
        f"running {args.faults} app fault cycles against {plan.display_label()} "
        f"({plan.shard_count()} shards, jobs={args.jobs}) ..."
    )
    tracer = TraceWriter(args.trace) if args.trace else None
    progress = fanout_hooks(ConsoleProgress() if args.progress else None, tracer)
    try:
        result = run_plan(
            plan, jobs=args.jobs, progress=progress, **_engine_kwargs(args)
        )
    finally:
        if tracer is not None:
            tracer.close()
    if args.per_cycle:
        print(
            ascii_table(
                [
                    "cycle",
                    "promises",
                    "intact",
                    "torn-rec",
                    "loss",
                    "silent",
                    "rec-fail",
                ],
                [
                    [
                        c.cycle_index,
                        c.app_promises,
                        c.app_intact,
                        c.app_torn_recovered,
                        c.app_committed_loss,
                        c.app_silent_corruption,
                        c.app_recovery_failed,
                    ]
                    for c in result.cycles
                ],
            )
        )
    summary = dict(result.summary())
    summary["app_promises"] = result.app_promises
    summary["app_intact"] = result.app_intact
    summary["app_torn_recovered"] = result.app_torn_recovered
    summary["app_committed_loss"] = result.app_committed_loss
    summary["app_silent_corruption"] = result.app_silent_corruption
    summary["app_recovery_failed"] = result.app_recovery_failed
    print(
        ascii_table(
            list(summary.keys()),
            [list(summary.values())],
            title="apps summary",
        )
    )
    _report_execution(result)
    if result.execution.shards_quarantined and not args.quarantine:
        return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.core.fleet import merge_by_model, rank_by_loss, run_fleet

    spec = WorkloadSpec(
        wss_bytes=args.wss_gib * GIB, read_fraction=0.0, outstanding=16
    )
    tracer = TraceWriter(args.trace) if args.trace else None
    # Same composition as `campaign`: --progress renders to stderr, --trace
    # persists, either alone or both (the flag used to be dropped here).
    engine_progress = fanout_hooks(
        ConsoleProgress() if args.progress else None, tracer
    )
    try:
        results = run_fleet(
            models.table_one_units(),
            spec,
            faults=args.faults,
            base_seed=args.seed,
            jobs=args.jobs,
            progress=lambda name, result: print(
                f"  {name}: {result.total_data_loss} data loss over {result.faults} faults"
            ),
            engine_progress=engine_progress,
            **_engine_kwargs(args),
        )
    finally:
        if tracer is not None:
            tracer.close()
    merged = merge_by_model(results)
    print()
    print(
        ascii_table(
            ["model", "faults", "data failures", "FWA", "IO errors", "loss/fault"],
            [
                [
                    name,
                    merged[name].faults,
                    merged[name].data_failures,
                    merged[name].fwa_failures,
                    merged[name].io_errors,
                    f"{merged[name].data_loss_per_fault:.2f}",
                ]
                for name in rank_by_loss(merged)
            ],
            title="Table I population, merged per model, worst first",
        )
    )
    quarantined = sum(r.execution.shards_quarantined for r in results.values())
    for result in results.values():
        _report_execution(result)
    if quarantined and not args.quarantine:
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.engine import run_worker

    return run_worker(
        args.connect,
        connect_timeout_s=args.connect_timeout,
        persist=args.persist,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine.serve import run_serve
    from repro.engine.wire import DEFAULT_LEASE_TIMEOUT_S

    return run_serve(
        args.listen,
        args.cas,
        lease_timeout_s=(
            args.lease_timeout
            if args.lease_timeout is not None
            else DEFAULT_LEASE_TIMEOUT_S
        ),
        quarantine=args.quarantine,
        shard_timeout_s=args.shard_timeout,
        max_retries=args.max_retries,
    )


def _render_streamed_record(record) -> None:
    """One stderr line per live event streamed from the campaign service."""
    eta = format_eta(record.eta_s)
    if record.shard_index < 0:
        scope = f"all {record.shard_count} shards"
    else:
        scope = f"shard {record.shard_index + 1}/{record.shard_count}"
    line = (
        f"[serve] {record.kind:<14} {record.plan_label} {scope} | "
        f"shards {record.shards_done}/{record.shards_total} | "
        f"cycles {record.cycles_done}/{record.cycles_total} | ETA {eta}"
    )
    if record.detail:
        line += f" | {record.detail}"
    print(line, file=sys.stderr)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.engine.serve import submit_campaign

    plan = CampaignPlan(
        spec=_spec_from_args(args),
        faults=args.faults,
        device=models.by_name(args.device),
        base_seed=args.seed,
        shard_faults=args.shard_faults,
    )
    print(
        f"submitting {args.faults} faults against {plan.display_label()} "
        f"({plan.shard_count()} shards) to {args.connect} ..."
    )
    try:
        outcome = submit_campaign(
            args.connect,
            [plan],
            connect_timeout_s=args.connect_timeout,
            on_record=_render_streamed_record if args.progress else None,
        )
    except CampaignError as exc:
        print(f"[serve] {exc}", file=sys.stderr)
        return 1
    result = outcome.results[0]
    summary = result.summary()
    print(
        ascii_table(
            list(summary.keys()),
            [list(summary.values())],
            title="campaign summary",
        )
    )
    print(
        f"[serve] campaign {outcome.fingerprint}: {outcome.executed} shard(s) "
        f"executed, {outcome.cas_hits} from cache"
        + (", coalesced with an in-flight submission" if outcome.coalesced else ""),
        file=sys.stderr,
    )
    _report_execution(result)
    return 1 if result.execution.shards_quarantined else 0


def _cmd_follow(args: argparse.Namespace) -> int:
    from repro.engine.serve import follow_campaign

    try:
        summary = follow_campaign(
            args.connect,
            fingerprint=args.fingerprint,
            connect_timeout_s=args.connect_timeout,
            on_record=_render_streamed_record,
        )
    except CampaignError as exc:
        print(f"[serve] {exc}", file=sys.stderr)
        return 1
    print(
        f"[serve] campaign {summary.get('fingerprint')} complete: "
        f"{summary.get('executed')} shard(s) executed, "
        f"{summary.get('cas_hits')} from cache"
    )
    return 0


def _report_one_trace(path, top: int) -> int:
    """Post-hoc report of one trace file (the classic ``trace report``)."""
    from repro.engine import build_trace_report, read_trace

    try:
        records = read_trace(path)
        report = build_trace_report(records, slowest=max(0, top))
    except EngineTraceError as exc:
        print(f"[trace] {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.interval is not None and not args.follow:
        print("--interval requires --follow", file=sys.stderr)
        return 2
    if args.follow:
        # Follow mode tolerates a missing path: the follower may attach
        # before the campaign creates its trace.
        from repro.engine.live import DEFAULT_INTERVAL_S, follow_trace

        interval = args.interval if args.interval is not None else DEFAULT_INTERVAL_S
        return follow_trace(args.path, interval_s=interval, top=max(0, args.top))
    path = Path(args.path)
    if path.is_dir():
        files = sorted(path.glob("*.jsonl"))
        if not files:
            print(f"no trace files in directory: {path}", file=sys.stderr)
            return 2
        code = 0
        for index, file in enumerate(files):
            if index:
                print()
            print(f"== {file.name} ==")
            code = code or _report_one_trace(file, args.top)
        return code
    if not path.exists():
        print(f"trace file not found: {args.path}", file=sys.stderr)
        return 2
    return _report_one_trace(path, args.top)


def _cmd_checkpoint_compact(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.engine import compact_journal

    if not Path(args.path).exists():
        print(f"journal not found: {args.path}", file=sys.stderr)
        return 2
    try:
        stats = compact_journal(args.path)
    except CheckpointError as exc:
        print(f"[checkpoint] {exc}", file=sys.stderr)
        return 1
    line = (
        f"compacted {args.path}: {stats.records_in} -> {stats.records_out} records "
        f"({stats.duplicates_dropped} duplicates, "
        f"{stats.quarantine_dropped} quarantine records dropped)"
    )
    if stats.torn_tail_dropped:
        line += "; torn tail discarded"
    print(line)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.analyzer import Analyzer, FailureKind
    from repro.host.system import HostSystem
    from repro.workload.replay import TraceReplayer, WorkloadTrace, parse_blkparse

    path = Path(args.trace)
    if not path.exists():
        print(f"trace file not found: {path}", file=sys.stderr)
        return 2
    if args.blkparse:
        trace = parse_blkparse(path.read_text().splitlines())
    else:
        trace = WorkloadTrace.load(path)
    if not len(trace):
        print("trace contains no replayable requests", file=sys.stderr)
        return 2
    host = HostSystem(config=models.by_name(args.device), seed=args.seed)
    host.boot()
    analyzer = Analyzer(host)
    replayer = TraceReplayer(host, trace)
    replayer.start()
    fault_injected = False
    if args.fault_ms is not None:
        host.run_for(round(args.fault_ms * 1000))
        host.cut_power()
        host.run_for_ms(1500)
        host.restore_power()
        host.wait_until_ready()
        fault_injected = True
    else:
        host.run_for(trace.duration_us + 2_000_000)
    acked = replayer.acked_writes
    unacked = [p for p in replayer.packets if p.is_write and not p.acked]
    outcome = analyzer.verify_cycle(0, acked, unacked)
    print(
        ascii_table(
            ["requests", "ACKed writes", "data failures", "FWA", "IO errors"],
            [
                [
                    replayer.submitted,
                    len(acked),
                    outcome.count(FailureKind.DATA_FAILURE),
                    outcome.count(FailureKind.FWA),
                    outcome.count(FailureKind.IO_ERROR),
                ]
            ],
            title=f"replay of {path.name} on {args.device}"
            + (" (fault injected)" if fault_injected else ""),
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro import bench as bench_mod

    if args.bench_command == "list":
        for family in sorted(bench_mod.BENCH_FAMILIES):
            print(family)
        return 0
    record = bench_mod.run_family(args.family, json_path=args.json)
    print(json_mod.dumps(record, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success; 1 shards quarantined without ``--quarantine``;
    2 usage error; 130 interrupted (SIGINT/SIGTERM — with ``--checkpoint``
    the journal is flushed and the run restarts with ``--resume``).
    """
    args = build_parser().parse_args(argv)
    if getattr(args, "resume", False) and not getattr(args, "checkpoint", None):
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if getattr(args, "lease_timeout", None) is not None and not getattr(
        args, "listen", None
    ):
        print("--lease-timeout requires --listen HOST:PORT", file=sys.stderr)
        return 2
    try:
        return _dispatch(args)
    except CampaignInterrupted as exc:
        print(f"[engine] {exc}", file=sys.stderr)
        return 130


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list-devices":
        return _cmd_list_devices()
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "discharge":
        return _cmd_discharge(args)
    if args.command == "post-ack":
        return _cmd_post_ack(args)
    if args.command == "smart":
        return _cmd_smart(args)
    if args.command == "stress":
        return _cmd_stress_dirty_cycle(args)
    if args.command == "topology":
        return _cmd_topology_run(args)
    if args.command == "apps":
        return _cmd_apps_run(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "follow":
        return _cmd_follow(args)
    if args.command == "trace":
        return _cmd_trace_report(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint_compact(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
