"""Software-facing power-control facade.

Bundles the full actuation chain of the paper's hardware part —

    Scheduler --(serial)--> Arduino UNO --(pin 13)--> ATX PS_ON# --> PSU rail

— behind two methods, :meth:`power_off` and :meth:`power_on`, plus a
fault-scheduling helper.  The Scheduler in :mod:`repro.core.scheduler` talks
only to this class, never to the PSU directly, mirroring the paper's strict
HW/SW split (Fig. 1).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.power.arduino import CMD_OFF, CMD_ON, Microcontroller
from repro.power.atx import AtxController
from repro.power.psu import AtxPsu, PsuState
from repro.sim.kernel import Event, Kernel


class PowerController:
    """Drives the PSU through the Arduino/ATX chain, as the software part does.

    Parameters
    ----------
    kernel:
        The simulation kernel.
    psu:
        The supply under control.  Pass an
        :class:`~repro.power.psu.InstantCutoffPsu` to emulate prior-work
        transistor platforms for the ablation study.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> k = Kernel()
    >>> pc = PowerController(k)
    >>> pc.power_on(); k.run()
    >>> pc.is_powered
    True
    >>> pc.power_off(); k.run()
    >>> pc.psu.voltage() < 0.1
    True
    """

    def __init__(self, kernel: Kernel, psu: Optional[AtxPsu] = None) -> None:
        self.kernel = kernel
        self.psu = psu if psu is not None else AtxPsu(kernel)
        self.psu.mains_on()
        self.atx = AtxController(kernel, self.psu)
        self.mcu = Microcontroller(kernel)
        self.mcu.attach_pin13(self._pin13_changed)
        self._scheduled: List[Event] = []
        self.off_commands_sent = 0
        self.on_commands_sent = 0

    # -- actuation chain ------------------------------------------------------------

    def _pin13_changed(self, high: bool) -> None:
        # Pin 13 HIGH applies +5 V to PS_ON# (pin 16) -> outputs cut.
        self.atx.drive_ps_on_pin(5.0 if high else 0.0)

    def power_on(self) -> None:
        """Send the On command through the serial/firmware chain."""
        self.on_commands_sent += 1
        self.mcu.serial_write(CMD_ON)

    def power_off(self) -> None:
        """Send the Off command: this is the fault-injection trigger."""
        self.off_commands_sent += 1
        self.mcu.serial_write(CMD_OFF)

    # -- scheduling ------------------------------------------------------------------

    def schedule_off(self, delay_us: int, note: Optional[Callable[[], None]] = None) -> Event:
        """Arrange for a power cut ``delay_us`` from now.

        ``note`` (if given) is invoked at the same instant the Off command is
        sent — the fault Scheduler uses it to timestamp injections.
        """

        def fire() -> None:
            if note is not None:
                note()
            self.power_off()

        event = self.kernel.schedule(delay_us, fire)
        self._scheduled.append(event)
        return event

    def schedule_on(self, delay_us: int) -> Event:
        """Arrange for power restoration ``delay_us`` from now."""
        event = self.kernel.schedule(delay_us, self.power_on)
        self._scheduled.append(event)
        return event

    def cancel_scheduled(self) -> int:
        """Cancel all not-yet-fired scheduled transitions.  Returns count."""
        cancelled = 0
        for event in self._scheduled:
            if event.pending:
                event.cancel()
                cancelled += 1
        self._scheduled.clear()
        return cancelled

    # -- state ----------------------------------------------------------------------

    @property
    def is_powered(self) -> bool:
        """True while the rail is regulated at nominal."""
        return self.psu.state is PsuState.ON

    @property
    def rail_volts(self) -> float:
        """Instantaneous rail voltage."""
        return self.psu.voltage()
