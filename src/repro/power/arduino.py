"""Arduino UNO (ATmega328) model used as the fault-injection actuator.

The real harness programs the UNO to listen on its USB serial port for
single-byte ``On``/``Off`` commands from the Scheduler and mirror them onto
digital pin 13, which is wired to the ATX ``PS_ON#`` pin (paper §III-A2).

The model reproduces the two latencies that matter for fault timing:

- serial transfer time at 115200 baud (~87 µs per command byte), and
- the firmware loop's polling latency (up to ~100 µs).

Both are small against the PSU's 40 ms hold-up but are modelled so the
platform's end-to-end command-to-voltage-drop timing is honest.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import PowerError
from repro.sim.kernel import Kernel

CMD_ON = b"1"
CMD_OFF = b"0"

SERIAL_BAUD = 115200
BITS_PER_FRAME = 10  # 8N1: start + 8 data + stop
FIRMWARE_POLL_US = 100
"""Worst-case delay of the firmware's main loop noticing a received byte."""


def serial_frame_time_us(baud: int = SERIAL_BAUD) -> int:
    """Wire time of one 8N1 serial frame at ``baud``, in microseconds."""
    if baud <= 0:
        raise PowerError("baud rate must be positive")
    return round(BITS_PER_FRAME * 1_000_000 / baud)


class Microcontroller:
    """ATmega328 running the paper's On/Off relay firmware.

    The host writes command bytes with :meth:`serial_write`; after the wire
    plus firmware latency the sketch drives ``pin 13`` and invokes the
    attached pin listener (the :class:`~repro.power.atx.AtxController`).

    Example
    -------
    >>> from repro.sim import Kernel
    >>> k = Kernel()
    >>> seen = []
    >>> mcu = Microcontroller(k, on_pin13=seen.append)
    >>> mcu.serial_write(CMD_OFF)
    >>> k.run()
    >>> seen   # pin 13 driven high -> PS_ON# deasserted -> power cut
    [True]
    """

    def __init__(
        self,
        kernel: Kernel,
        on_pin13: Optional[Callable[[bool], None]] = None,
        baud: int = SERIAL_BAUD,
    ) -> None:
        self.kernel = kernel
        self.baud = baud
        self._on_pin13 = on_pin13
        self.pin13_high = False
        self.commands_received = 0
        self.bytes_dropped = 0
        self._powered = True

    def attach_pin13(self, listener: Callable[[bool], None]) -> None:
        """Connect pin 13 to a consumer (the ATX controller glue)."""
        self._on_pin13 = listener

    def set_powered(self, powered: bool) -> None:
        """The UNO is USB-powered from the host; it stays up during faults.

        Exposed so tests can model a *shared* supply mis-wiring where the
        actuator dies with the device (the design error the independent-PSU
        layout avoids, §III-A2).
        """
        self._powered = powered

    def serial_write(self, data: bytes) -> None:
        """Host writes command bytes to the UNO's USB serial port."""
        if not data:
            raise PowerError("empty serial write")
        delay = 0
        for raw in data:
            byte = bytes([raw])
            delay += serial_frame_time_us(self.baud)
            if byte not in (CMD_ON, CMD_OFF):
                self.bytes_dropped += 1
                continue
            fire_at = delay + FIRMWARE_POLL_US
            self.kernel.schedule(fire_at, self._handle_command, byte)

    def _handle_command(self, byte: bytes) -> None:
        if not self._powered:
            self.bytes_dropped += 1
            return
        self.commands_received += 1
        # Firmware: OFF command -> drive pin 13 HIGH (deasserts PS_ON#).
        # The pin is re-driven on every command (as the sketch's loop() does);
        # downstream logic is level-sensitive, so this is safe and keeps the
        # MCU and ATX controller in sync regardless of their initial states.
        want_high = byte == CMD_OFF
        self.pin13_high = want_high
        if self._on_pin13 is not None:
            self._on_pin13(want_high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Microcontroller pin13={'HIGH' if self.pin13_high else 'LOW'}>"
