"""ATX power-supply model with a load-dependent capacitor-discharge phase.

The paper measured the 5 V rail of a real ATX PSU after deasserting
``PS_ON#`` (their Fig. 4):

- with **no load** the rail takes about **1400 ms** to discharge fully;
- with **one SSD attached** it takes about **900 ms**, and the rail crosses
  the SSD's 4.5 V host-detach threshold after roughly **40 ms**.

We reproduce that waveform with a two-phase behavioural model:

1. *hold-up phase* — secondary-side regulation keeps the rail near nominal,
   drooping linearly from 5.0 V to 4.5 V over ``holdup`` µs;
2. *decay phase* — regulation is lost and the bulk capacitors discharge
   through the load, giving an exponential ``4.5 * exp(-(t - holdup)/tau)``.

``holdup`` and ``tau`` shrink as the attached load current grows; the default
coefficients are calibrated so the three numbers above come out of the model
(see :meth:`DischargeProfile.for_load`).  The model is *behavioural* — the
constants are fit to the paper's oscilloscope traces, not derived from
component values.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol

from repro.errors import PowerError
from repro.sim.kernel import Event, Kernel
from repro.units import ATX_5V_RAIL, MSEC


class PsuState(enum.Enum):
    """Operating state of the supply."""

    MAINS_OFF = "mains_off"
    STANDBY = "standby"  # mains present, PS_ON# deasserted, rail discharged
    ON = "on"  # rail regulated at nominal
    DISCHARGING = "discharging"  # PS_ON# deasserted, rail still falling
    CHARGING = "charging"  # PS_ON# asserted, rail rising to nominal


class Load(Protocol):
    """Anything that draws current from the 5 V rail."""

    def current_draw_amps(self) -> float:
        """Instantaneous current draw in amperes."""
        ...


@dataclass(frozen=True)
class DischargeProfile:
    """Waveform parameters for one discharge episode.

    Attributes
    ----------
    holdup_us:
        Duration of the regulated droop from 5.0 V to 4.5 V.
    tau_us:
        Exponential time constant of the post-regulation decay.
    """

    holdup_us: int
    tau_us: int

    # Calibration targets from the paper's Fig. 4 (see module docstring).
    UNLOADED_HOLDUP_US = 150 * MSEC
    UNLOADED_TAU_US = 272 * MSEC
    HOLDUP_LOAD_COEFF = 2.75  # per ampere
    TAU_LOAD_COEFF = 0.43  # per ampere

    @classmethod
    def for_load(cls, load_amps: float) -> "DischargeProfile":
        """Profile for a given total load current.

        ``for_load(0.0)`` fully discharges in ~1400 ms (Fig. 4a);
        ``for_load(1.0)`` (one SSD) crosses 4.5 V at ~40 ms and fully
        discharges in ~900 ms (Fig. 4b).
        """
        if load_amps < 0:
            raise PowerError("load current cannot be negative")
        holdup = cls.UNLOADED_HOLDUP_US / (1.0 + cls.HOLDUP_LOAD_COEFF * load_amps)
        tau = cls.UNLOADED_TAU_US / (1.0 + cls.TAU_LOAD_COEFF * load_amps)
        return cls(holdup_us=round(holdup), tau_us=round(tau))

    # -- waveform ---------------------------------------------------------------

    def voltage_at(self, elapsed_us: int, v_nominal: float = ATX_5V_RAIL) -> float:
        """Rail voltage ``elapsed_us`` after the discharge began."""
        if elapsed_us < 0:
            return v_nominal
        v_knee = 0.9 * v_nominal  # 4.5 V on the 5 V rail
        if elapsed_us <= self.holdup_us:
            if self.holdup_us == 0:
                return v_knee
            droop = (v_nominal - v_knee) * (elapsed_us / self.holdup_us)
            return v_nominal - droop
        decay = math.exp(-(elapsed_us - self.holdup_us) / self.tau_us)
        return v_knee * decay

    def time_to_reach(self, volts: float, v_nominal: float = ATX_5V_RAIL) -> int:
        """Microseconds after discharge start at which the rail hits ``volts``."""
        if volts >= v_nominal:
            return 0
        v_knee = 0.9 * v_nominal
        if volts >= v_knee:
            frac = (v_nominal - volts) / (v_nominal - v_knee)
            return round(self.holdup_us * frac)
        if volts <= 0:
            raise PowerError("exponential decay never reaches 0 V exactly")
        return self.holdup_us + round(self.tau_us * math.log(v_knee / volts))


@dataclass
class _Watcher:
    """A falling- or rising-edge voltage threshold callback registration."""

    volts: float
    falling: Callable[[float], None]
    rising: Optional[Callable[[float], None]]
    armed_event: Optional[Event] = None


class AtxPsu:
    """An ATX PSU with standby logic, PS_ON# control, and discharge physics.

    The supply owns the 5 V rail feeding the device under test.  Components
    interested in rail voltage register *threshold watchers*; when a
    discharge (or recharge) episode starts, the PSU solves the analytic
    waveform for each threshold's crossing time and schedules one kernel
    event per watcher — no polling.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> from repro.units import MSEC
    >>> k = Kernel()
    >>> psu = AtxPsu(k)
    >>> psu.mains_on(); psu.set_ps_on(True); k.run()
    >>> psu.voltage() == 5.0
    True
    """

    V_NOMINAL = ATX_5V_RAIL
    V_FULLY_DISCHARGED = 0.05
    CHARGE_RAMP_US = 10 * MSEC  # rail rise time on power-good, typical ATX

    def __init__(self, kernel: Kernel, name: str = "psu") -> None:
        self.kernel = kernel
        self.name = name
        self.state = PsuState.MAINS_OFF
        self._ps_on = False
        self._loads: List[Load] = []
        self._watchers: List[_Watcher] = []
        self._episode_start: Optional[int] = None  # discharge start time
        self._episode_profile: Optional[DischargeProfile] = None
        self._charge_start: Optional[int] = None
        self._charge_from_volts = 0.0
        self._pending: List[Event] = []
        # Statistics used by tests and the Fig. 4 bench.
        self.discharge_count = 0
        self.power_on_count = 0

    # -- load management ----------------------------------------------------------

    def attach_load(self, load: Load) -> None:
        """Attach a device to the 5 V rail (affects the discharge waveform)."""
        self._loads.append(load)

    def detach_load(self, load: Load) -> None:
        """Remove a device from the rail."""
        self._loads.remove(load)

    def total_load_amps(self) -> float:
        """Sum of instantaneous current draw over all attached loads."""
        return sum(load.current_draw_amps() for load in self._loads)

    # -- threshold watchers ---------------------------------------------------------

    def watch_threshold(
        self,
        volts: float,
        on_falling: Callable[[float], None],
        on_rising: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Register callbacks for the rail crossing ``volts``.

        ``on_falling(volts)`` fires when a discharge episode crosses the
        threshold downward; ``on_rising(volts)`` (optional) fires when a
        recharge crosses it upward.
        """
        if not 0.0 < volts < self.V_NOMINAL:
            raise PowerError(f"threshold {volts} V outside (0, {self.V_NOMINAL})")
        self._watchers.append(_Watcher(volts, on_falling, on_rising))

    # -- control ------------------------------------------------------------------

    def mains_on(self) -> None:
        """Apply mains input; the supply enters standby."""
        if self.state is PsuState.MAINS_OFF:
            self.state = PsuState.STANDBY

    def mains_off(self) -> None:
        """Remove mains input entirely (also deasserts the rail)."""
        if self.state in (PsuState.ON, PsuState.CHARGING):
            self._begin_discharge()
        self.state = PsuState.MAINS_OFF

    def set_ps_on(self, active: bool) -> None:
        """Drive the ``PS_ON#`` function: True turns the rail on.

        (The electrical pin is active-low; :class:`~repro.power.atx.AtxController`
        performs that inversion.  Here ``active=True`` means "output enabled".)
        """
        if self.state is PsuState.MAINS_OFF:
            raise PowerError("PS_ON has no effect without mains input")
        if active == self._ps_on:
            return
        self._ps_on = active
        if active:
            self._begin_charge()
        else:
            self._begin_discharge()

    # -- waveform state ---------------------------------------------------------------

    def voltage(self) -> float:
        """Instantaneous 5 V rail voltage at the current kernel time."""
        now = self.kernel.now
        if self.state is PsuState.ON:
            return self.V_NOMINAL
        if self.state is PsuState.DISCHARGING:
            assert self._episode_profile is not None and self._episode_start is not None
            return self._episode_profile.voltage_at(now - self._episode_start)
        if self.state is PsuState.CHARGING:
            assert self._charge_start is not None
            frac = min(1.0, (now - self._charge_start) / self.CHARGE_RAMP_US)
            return self._charge_from_volts + (self.V_NOMINAL - self._charge_from_volts) * frac
        return 0.0

    def voltage_at(self, time_us: int) -> float:
        """Rail voltage at an instant within the current episode.

        Used by batch bookkeeping that resolves *past* commit instants after
        a power fault: during a discharge episode the analytic waveform is
        evaluated at ``time_us``; outside one the rail was nominal (ON) or
        dead.  ``time_us`` must not predate the current episode.
        """
        if self.state is PsuState.DISCHARGING:
            assert self._episode_profile is not None and self._episode_start is not None
            return self._episode_profile.voltage_at(time_us - self._episode_start)
        if self.state is PsuState.ON:
            return self.V_NOMINAL
        if self.state is PsuState.CHARGING:
            assert self._charge_start is not None
            frac = min(1.0, max(0.0, (time_us - self._charge_start) / self.CHARGE_RAMP_US))
            return self._charge_from_volts + (self.V_NOMINAL - self._charge_from_volts) * frac
        return 0.0

    @property
    def output_enabled(self) -> bool:
        """True when PS_ON requests the rail up."""
        return self._ps_on

    def current_profile(self) -> Optional[DischargeProfile]:
        """The discharge profile of the episode in progress, if any."""
        return self._episode_profile

    # -- internals ------------------------------------------------------------------

    def _cancel_pending(self) -> None:
        for event in self._pending:
            event.cancel()
        self._pending.clear()

    def _begin_discharge(self) -> None:
        if self.state in (PsuState.STANDBY, PsuState.MAINS_OFF):
            return
        self._cancel_pending()
        self.discharge_count += 1
        profile = DischargeProfile.for_load(self.total_load_amps())
        self._episode_profile = profile
        self._episode_start = self.kernel.now
        self.state = PsuState.DISCHARGING
        for watcher in self._watchers:
            delay = profile.time_to_reach(watcher.volts)
            event = self.kernel.schedule(delay, self._fire_falling, watcher)
            self._pending.append(event)
        settle = profile.time_to_reach(self.V_FULLY_DISCHARGED)
        self._pending.append(self.kernel.schedule(settle, self._settle_discharged))

    def _settle_discharged(self) -> None:
        if self.state is PsuState.DISCHARGING:
            self.state = PsuState.STANDBY if not self._ps_on else self.state
            self._episode_profile = None
            self._episode_start = None

    def _begin_charge(self) -> None:
        self._cancel_pending()
        self.power_on_count += 1
        self._charge_from_volts = self.voltage()
        self._charge_start = self.kernel.now
        self._episode_profile = None
        self._episode_start = None
        self.state = PsuState.CHARGING
        span = self.V_NOMINAL - self._charge_from_volts
        for watcher in self._watchers:
            if watcher.rising is None or watcher.volts <= self._charge_from_volts:
                continue
            frac = (watcher.volts - self._charge_from_volts) / span
            delay = round(self.CHARGE_RAMP_US * frac)
            event = self.kernel.schedule(delay, self._fire_rising, watcher)
            self._pending.append(event)
        self._pending.append(self.kernel.schedule(self.CHARGE_RAMP_US, self._settle_on))

    def _settle_on(self) -> None:
        if self.state is PsuState.CHARGING:
            self.state = PsuState.ON

    def _fire_falling(self, watcher: _Watcher) -> None:
        watcher.falling(watcher.volts)

    def _fire_rising(self, watcher: _Watcher) -> None:
        assert watcher.rising is not None
        watcher.rising(watcher.volts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AtxPsu {self.name!r} {self.state.value} {self.voltage():.2f}V>"


class InstantCutoffPsu(AtxPsu):
    """Baseline injector from prior work (Zheng et al., Tseng et al.).

    Cuts the rail with a high-speed power transistor: the voltage collapses
    in microseconds rather than hundreds of milliseconds.  Used by the
    discharge-ablation bench to show what the realistic waveform changes.
    """

    CUTOFF_US = 50  # "the reported delay is in micro seconds order" (§III-A2)

    def _begin_discharge(self) -> None:
        if self.state in (PsuState.STANDBY, PsuState.MAINS_OFF):
            return
        self._cancel_pending()
        self.discharge_count += 1
        # A near-vertical edge: no regulated hold-up, a ~50 us collapse.
        profile = DischargeProfile(holdup_us=0, tau_us=self.CUTOFF_US)
        self._episode_profile = profile
        self._episode_start = self.kernel.now
        self.state = PsuState.DISCHARGING
        for watcher in self._watchers:
            delay = profile.time_to_reach(watcher.volts)
            event = self.kernel.schedule(delay, self._fire_falling, watcher)
            self._pending.append(event)
        settle = profile.time_to_reach(self.V_FULLY_DISCHARGED)
        self._pending.append(self.kernel.schedule(settle, self._settle_discharged))
