"""ATX connector / ``PS_ON#`` pin logic.

Pin 16 of the 24-pin ATX connector is *active low*: pulling it to ground
turns the supply's main outputs on; applying +5 V (or letting it float high)
turns them off.  The paper wires Arduino digital pin 13 straight to this pin,
so writing ``1`` from the microcontroller **cuts** power and ``0`` restores
it — the inversion lives here, exactly as in the real harness (Fig. 3).
"""

from __future__ import annotations

from repro.errors import PowerError
from repro.power.psu import AtxPsu

PS_ON_PIN = 16
"""ATX connector pin number carrying PS_ON# (active low)."""

STANDBY_5V_PIN = 9
"""ATX connector pin carrying the always-on 5 VSB rail."""

GROUND_PIN = 15
"""One of the ATX ground pins referenced in the paper's wiring diagram."""

LOGIC_HIGH_THRESHOLD = 2.0
"""Input voltage above which the controller reads a logic high."""


class AtxController:
    """The PSU-side controller sampling the ``PS_ON#`` pin.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> k = Kernel()
    >>> psu = AtxPsu(k); psu.mains_on()
    >>> ctl = AtxController(k, psu)
    >>> ctl.drive_ps_on_pin(0.0)   # grounded -> outputs on
    >>> k.run(); psu.output_enabled
    True
    >>> ctl.drive_ps_on_pin(5.0)   # +5 V -> outputs cut
    >>> psu.output_enabled
    False
    """

    def __init__(self, kernel, psu: AtxPsu) -> None:
        self.kernel = kernel
        self.psu = psu
        self._pin_volts = 5.0  # floats high via internal pull-up: outputs off
        self.transitions = 0

    def drive_ps_on_pin(self, volts: float) -> None:
        """Apply ``volts`` to pin 16 and update the supply accordingly."""
        if volts < 0 or volts > 5.5:
            raise PowerError(f"PS_ON# pin driven outside 0..5.5 V: {volts}")
        was_high = self._pin_volts > LOGIC_HIGH_THRESHOLD
        self._pin_volts = volts
        is_high = volts > LOGIC_HIGH_THRESHOLD
        if was_high == is_high:
            return
        self.transitions += 1
        # Active low: logic low  -> enable outputs; logic high -> disable.
        self.psu.set_ps_on(active=not is_high)

    def release_ps_on_pin(self) -> None:
        """Let the pin float; the internal pull-up reads high (outputs off)."""
        self.drive_ps_on_pin(5.0)

    @property
    def ps_on_pin_volts(self) -> float:
        """Present voltage on pin 16."""
        return self._pin_volts

    @property
    def outputs_enabled(self) -> bool:
        """Whether the main rails are currently commanded on."""
        return self.psu.output_enabled

    def standby_rail_volts(self) -> float:
        """The 5 VSB rail (pin 9): present whenever mains is applied."""
        from repro.power.psu import PsuState

        return 5.0 if self.psu.state is not PsuState.MAINS_OFF else 0.0
