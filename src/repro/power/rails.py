"""Oscilloscope-style rail sampling.

Used to regenerate the paper's Fig. 4 waveforms: attach a :class:`RailProbe`
to a PSU, trigger a capture window, and read back ``(time_ms, volts)``
samples.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import PowerError
from repro.power.psu import AtxPsu
from repro.sim.kernel import Kernel
from repro.units import MSEC, to_msec


class RailProbe:
    """Samples a PSU output rail at a fixed interval during a capture window.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> k = Kernel()
    >>> psu = AtxPsu(k); psu.mains_on(); psu.set_ps_on(True); k.run()
    >>> probe = RailProbe(k, psu, interval_us=MSEC)
    >>> probe.start_capture(duration_us=5 * MSEC)
    >>> k.run()
    >>> len(probe.samples)
    6
    """

    def __init__(self, kernel: Kernel, psu: AtxPsu, interval_us: int = MSEC) -> None:
        if interval_us <= 0:
            raise PowerError("probe interval must be positive")
        self.kernel = kernel
        self.psu = psu
        self.interval_us = interval_us
        self.samples: List[Tuple[int, float]] = []
        self._remaining = 0
        self._active = False

    def start_capture(self, duration_us: int) -> None:
        """Begin capturing ``duration_us`` of waveform starting now."""
        if duration_us <= 0:
            raise PowerError("capture duration must be positive")
        if self._active:
            raise PowerError("capture already in progress")
        self.samples = []
        self._remaining = duration_us // self.interval_us
        self._active = True
        self._sample()

    def _sample(self) -> None:
        self.samples.append((self.kernel.now, self.psu.voltage()))
        if self._remaining > 0:
            self._remaining -= 1
            self.kernel.schedule(self.interval_us, self._sample)
        else:
            self._active = False

    @property
    def capturing(self) -> bool:
        """True while a capture window is open."""
        return self._active

    # -- analysis helpers (used by the Fig. 4 bench and tests) --------------------

    def waveform_ms(self) -> List[Tuple[float, float]]:
        """Samples as ``(milliseconds since first sample, volts)``."""
        if not self.samples:
            return []
        t0 = self.samples[0][0]
        return [(to_msec(t - t0), v) for t, v in self.samples]

    def time_below(self, volts: float) -> Optional[float]:
        """Milliseconds (from capture start) of the first sample below ``volts``."""
        for t_ms, v in self.waveform_ms():
            if v < volts:
                return t_ms
        return None

    def discharge_time_ms(self, floor_volts: float = 0.1) -> Optional[float]:
        """Duration until the rail settles below ``floor_volts``."""
        return self.time_below(floor_volts)
