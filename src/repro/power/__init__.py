"""Power-delivery substrate.

Models the hardware half of the paper's testbed (Fig. 3): an independent ATX
PSU whose ``PS_ON#`` pin (pin 16 of the ATX connector) is driven by an
Arduino UNO's digital pin 13, which in turn is commanded over a serial link
by the software part's Scheduler.

The load-dependent output-voltage waveform after ``PS_ON#`` deasserts is the
paper's central hardware novelty (Fig. 4): the drive keeps seeing a sagging
supply for hundreds of milliseconds — it is *not* cut instantaneously the way
transistor-based platforms (Zheng et al. FAST'13, Tseng et al. DAC'11) do.

Public surface:

- :class:`~repro.power.psu.AtxPsu` — the supply with discharge physics.
- :class:`~repro.power.psu.DischargeProfile` — waveform parameters.
- :class:`~repro.power.atx.AtxController` — the PS_ON# pin logic.
- :class:`~repro.power.arduino.Microcontroller` — Arduino UNO model.
- :class:`~repro.power.controller.PowerController` — software-facing facade.
- :class:`~repro.power.rails.RailProbe` — oscilloscope-style sampler.
- :class:`~repro.power.psu.InstantCutoffPsu` — the prior-work baseline.
"""

from repro.power.arduino import Microcontroller
from repro.power.atx import AtxController
from repro.power.controller import PowerController
from repro.power.psu import AtxPsu, DischargeProfile, InstantCutoffPsu, PsuState
from repro.power.rails import RailProbe

__all__ = [
    "AtxPsu",
    "AtxController",
    "DischargeProfile",
    "InstantCutoffPsu",
    "Microcontroller",
    "PowerController",
    "PsuState",
    "RailProbe",
]
