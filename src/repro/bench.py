"""Run reproduction bench families outside pytest.

The benches under ``benchmarks/`` are pytest modules, but their regeneration
functions (``regenerate_fig8`` etc.) are plain callables: they run the
campaigns and return the results without asserting any shape claims.  This
module is the thin wrapper that lets ``repro bench run <family>`` (and the
CI perf gate in ``scripts/perf_smoke.py``) produce perf numbers without a
test harness: it imports the bench module, times the regeneration, and emits
the one-line ``BENCH_<name>.json`` record documented in DESIGN.md.

The benchmarks directory is located relative to the repository checkout
(``REPRO_BENCH_DIR`` overrides); the wrapper is a repo tool, not part of the
installed library surface.
"""

from __future__ import annotations

import importlib
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError

BENCH_FAMILIES: Dict[str, Tuple[str, str]] = {
    "fig4_psu_discharge": ("bench_fig4_psu_discharge", "regenerate_fig4"),
    "fig5_request_type": ("bench_fig5_request_type", "regenerate_fig5"),
    "fig6_working_set_size": ("bench_fig6_working_set_size", "regenerate_fig6"),
    "fig7_request_size": ("bench_fig7_request_size", "regenerate_fig7"),
    "fig8_iops": ("bench_fig8_iops", "regenerate_fig8"),
    "fig9_access_sequence": ("bench_fig9_access_sequence", "regenerate_fig9"),
    "sec4a_post_ack_window": ("bench_sec4a_post_ack_window", "regenerate_sec4a"),
    "sec4d_access_pattern": ("bench_sec4d_access_pattern", "regenerate_sec4d"),
    "table1_devices": ("bench_table1_devices", "regenerate_table1"),
    "ablation_cache": ("bench_ablation_cache", "regenerate_cache_ablation"),
    "ablation_discharge": ("bench_ablation_discharge", "regenerate_discharge_ablation"),
    "ablation_journal_interval": ("bench_ablation_journal_interval", "regenerate_journal_ablation"),
    "dirty_cycle": ("bench_dirty_cycle", "regenerate_dirty_cycle"),
    "cache_topology": ("bench_cache_topology", "regenerate_cache_topology"),
    "apps_wal": ("bench_apps_wal", "regenerate_apps_wal"),
}
"""family name -> (bench module, regeneration callable)."""


def find_bench_dir() -> Path:
    """Locate the ``benchmarks/`` directory of the checkout.

    Honours ``REPRO_BENCH_DIR``; otherwise walks up from this file (source
    layout: ``src/repro/bench.py`` -> repo root) and then from the working
    directory.
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    candidates = []
    if override:
        candidates.append(Path(override))
    here = Path(__file__).resolve()
    for base in (*here.parents, Path.cwd(), *Path.cwd().resolve().parents):
        candidates.append(base / "benchmarks")
    for candidate in candidates:
        if (candidate / "_common.py").is_file():
            return candidate
    raise ConfigurationError(
        "cannot locate the benchmarks/ directory; run from the repository "
        "checkout or set REPRO_BENCH_DIR"
    )


def load_family(family: str) -> Callable:
    """Import a bench module and return its regeneration callable."""
    try:
        module_name, func_name = BENCH_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(BENCH_FAMILIES))
        raise ConfigurationError(f"unknown bench family {family!r} (known: {known})")
    bench_dir = str(find_bench_dir())
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


def run_family(family: str, json_path: Optional[str] = None) -> Dict[str, object]:
    """Run one bench family, returning (and optionally writing) its record.

    The record is the ``BENCH_<name>.json`` schema from
    ``benchmarks/_common.bench_json_record``; ``json_path`` writes it as a
    one-line JSON file.
    """
    regenerate = load_family(family)
    from _common import bench_json_record, count_fault_cycles, write_bench_json

    start = time.perf_counter()
    results = regenerate()
    wall_s = time.perf_counter() - start
    record = bench_json_record(family, count_fault_cycles(results), wall_s)
    if json_path is not None:
        write_bench_json(record, json_path)
    return record
