"""The filesystem proper: layout, allocation, journaling, mount/replay.

Layout (4 KiB blocks)::

    block 0                    superblock (static after format)
    blocks 1..32               two checkpoint slots (header + snapshot chunks)
    blocks 33..33+J-1          metadata journal (circular, one record/page)
    blocks DATA_START..        file data

Write path (ordered mode): file data goes to its blocks first, then the
metadata transaction describing it enters the journal; ``sync=True`` adds a
device FLUSH barrier after the commit record.  A power fault can therefore
leave: torn transactions (discarded at mount), committed-but-FWA'd journal
pages (the *device* lost them — discovered as discarded transactions), or
intact metadata pointing at data pages the device lost (discovered by the
checker as corrupt file content).

All filesystem calls are *synchronous*: they drive the simulation kernel
until their block IO completes, so they read like ordinary file code in
examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import hashlib
import json

from repro.errors import ReproError
from repro.fs.cas import ContentStore
from repro.fs.inode import BLOCK, Inode
from repro.fs.journal import Transaction, TxKind, TxRecord, decode_transactions, validate_region
from repro.host.block_layer import BlockRequest
from repro.host.system import HostSystem
from repro.ssd.command import CommandStatus, IoCommand


class FsError(ReproError):
    """Filesystem-level failure."""


class FileNotFound(FsError):
    """Named file does not exist."""


class FsCorruption(FsError):
    """On-device state is unreadable or inconsistent."""


SUPERBLOCK = 0
CKPT_SLOT_BLOCKS = 16
CKPT_SLOTS = 2
CKPT_START = 1
JOURNAL_START = CKPT_START + CKPT_SLOTS * CKPT_SLOT_BLOCKS  # 33
DEFAULT_JOURNAL_BLOCKS = 128
MAGIC = "reprofs-v1"


@dataclass
class MountReport:
    """Outcome of one mount."""

    clean: bool
    checkpoint_seq: int
    transactions_replayed: int
    transactions_discarded: int
    files: int


@dataclass
class _State:
    """The volatile metadata image."""

    directory: Dict[str, int] = field(default_factory=dict)
    inodes: Dict[int, Inode] = field(default_factory=dict)
    free_blocks: Set[int] = field(default_factory=set)
    alloc_watermark: int = 0
    next_inode: int = 1
    last_txid: int = 0


class FileSystem:
    """An extent-based journaling filesystem over a :class:`HostSystem`.

    Example
    -------
    >>> host = HostSystem(seed=3)
    >>> host.boot()
    >>> fs = FileSystem(host)
    >>> fs.format()
    >>> fs.create("hello.txt")
    >>> fs.write_file("hello.txt", b"hello world", sync=True)
    >>> fs.read_file("hello.txt")
    b'hello world'
    """

    def __init__(
        self,
        host: HostSystem,
        journal_blocks: int = DEFAULT_JOURNAL_BLOCKS,
        cas: Optional[ContentStore] = None,
    ) -> None:
        validate_region(journal_blocks)
        self.host = host
        self.cas = cas if cas is not None else ContentStore()
        self.journal_blocks = journal_blocks
        self.data_start = JOURNAL_START + journal_blocks
        self.state = _State(alloc_watermark=self.data_start)
        self._journal_cursor = JOURNAL_START
        self._ckpt_seq = 0
        self._mounted = False
        # Statistics.
        self.transactions_written = 0
        self.checkpoints_written = 0

    # ------------------------------------------------------------- sync block IO --

    def _pump_until(self, request: BlockRequest, timeout_us: int = 120_000_000) -> None:
        deadline = self.host.kernel.now + timeout_us
        while not request.done:
            if self.host.kernel.now >= deadline:
                raise FsError("filesystem IO timed out")
            next_event = self.host.kernel.next_event_time()
            if next_event is None:
                raise FsError("simulation idle before IO completed")
            self.host.kernel.run(until=min(next_event, deadline))

    def _write_blocks(self, start_block: int, tokens: List[int]) -> None:
        request = self.host.write(start_block, tokens)
        self._pump_until(request)
        if not request.ok:
            raise FsError(f"write to block {start_block} failed: {request.state.value}")

    def _read_block_token(self, block: int) -> Optional[int]:
        request = self.host.read(block, 1)
        self._pump_until(request)
        if not request.ok:
            raise FsCorruption(f"read of block {block} failed")
        token = request.tokens[0]
        return None if token == 0 else token

    def _read_block_bytes(self, block: int) -> Optional[bytes]:
        return self.cas.bytes_for(self._read_block_token(block))

    def _flush_barrier(self) -> None:
        done: List[IoCommand] = []
        self.host.ssd.submit(IoCommand.flush(on_complete=done.append))
        deadline = self.host.kernel.now + 60_000_000
        while not done:
            if self.host.kernel.now >= deadline:
                raise FsError("flush barrier timed out")
            next_event = self.host.kernel.next_event_time()
            if next_event is None:
                raise FsError("simulation idle during flush")
            self.host.kernel.run(until=min(next_event, deadline))
        if done[0].status is not CommandStatus.OK:
            # A failed FLUSH means nothing about durability — fsync and
            # synced renames must report it (the kernel returns EIO), not
            # let the caller ack unflushed data.
            raise FsError(f"flush barrier failed: {done[0].status.value}")

    # ------------------------------------------------------------------- format --

    def format(self) -> None:
        """Initialise an empty filesystem (and mount it)."""
        superblock = json.dumps(
            {"magic": MAGIC, "journal_blocks": self.journal_blocks},
            separators=(",", ":"),
        ).encode("utf-8")
        self._write_blocks(SUPERBLOCK, [self.cas.address_of(superblock)])
        self.state = _State(alloc_watermark=self.data_start)
        self._journal_cursor = JOURNAL_START
        self._ckpt_seq = 0
        self._checkpoint()
        self._flush_barrier()
        self._mounted = True

    # ----------------------------------------------------------------- allocation --

    def _allocate_blocks(self, count: int) -> List[int]:
        blocks: List[int] = []
        free = sorted(self.state.free_blocks)
        for block in free[:count]:
            self.state.free_blocks.discard(block)
            blocks.append(block)
        while len(blocks) < count:
            blocks.append(self.state.alloc_watermark)
            self.state.alloc_watermark += 1
        limit = self.host.ssd.chip.geometry.total_pages
        if self.state.alloc_watermark > limit:
            raise FsError("filesystem out of space")
        return blocks

    # ------------------------------------------------------------------ journaling --

    def _next_txid(self) -> int:
        self.state.last_txid += 1
        return self.state.last_txid

    def _journal_write(self, records: List[TxRecord], sync: bool) -> None:
        if self._journal_cursor + len(records) > JOURNAL_START + self.journal_blocks:
            # Journal full: checkpoint folds it into the snapshot; restart.
            # The checkpoint MUST be durable before the lap it covers is
            # overwritten — otherwise a power fault can roll the checkpoint
            # back while the old journal pages are already gone, losing
            # previously-fsynced transactions.
            self._checkpoint()
            self._flush_barrier()
            self._journal_cursor = JOURNAL_START
        tokens = [self.cas.address_of(record.encode()) for record in records]
        self._write_blocks(self._journal_cursor, tokens)
        self._journal_cursor += len(records)
        self.transactions_written += 1
        if sync:
            self._flush_barrier()

    def _commit_txn(self, payload: List[TxRecord], sync: bool) -> int:
        txid = self._next_txid()
        records = [TxRecord(TxKind.BEGIN, txid)]
        for record in payload:
            record.txid = txid
            records.append(record)
        records.append(TxRecord(TxKind.COMMIT, txid))
        self._journal_write(records, sync=sync)
        return txid

    def _dir_record(self) -> TxRecord:
        return TxRecord(
            TxKind.DIRECTORY, 0, {"entries": dict(self.state.directory)}
        )

    def _inode_record(self, inode: Inode) -> TxRecord:
        return TxRecord(TxKind.INODE, 0, {"inode": inode.encode().decode("utf-8")})

    # ------------------------------------------------------------------ checkpoint --

    def _snapshot_bytes(self) -> bytes:
        return json.dumps(
            {
                "dir": self.state.directory,
                "inodes": {
                    str(num): inode.encode().decode("utf-8")
                    for num, inode in self.state.inodes.items()
                },
                "free": sorted(self.state.free_blocks),
                "watermark": self.state.alloc_watermark,
                "next_inode": self.state.next_inode,
                "last_txid": self.state.last_txid,
            },
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")

    def _checkpoint(self) -> None:
        """Write a full metadata snapshot to the next checkpoint slot."""
        snapshot = self._snapshot_bytes()
        chunk_size = BLOCK - 256  # leave headroom; chunks are raw JSON slices
        chunks = [
            snapshot[i : i + chunk_size] for i in range(0, max(1, len(snapshot)), chunk_size)
        ]
        slot = (self._ckpt_seq + 1) % CKPT_SLOTS
        base = CKPT_START + slot * CKPT_SLOT_BLOCKS
        if len(chunks) + 1 > CKPT_SLOT_BLOCKS:
            raise FsError("metadata snapshot exceeds checkpoint slot")
        chunk_tokens = [self.cas.address_of(chunk) for chunk in chunks]
        self._write_blocks(base + 1, chunk_tokens)
        header = json.dumps(
            {
                "seq": self._ckpt_seq + 1,
                "chunks": len(chunks),
                "digest": hashlib.blake2b(snapshot, digest_size=8).hexdigest(),
                "last_txid": self.state.last_txid,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        self._write_blocks(base, [self.cas.address_of(header)])
        self._ckpt_seq += 1
        self.checkpoints_written += 1

    def _load_checkpoint(self) -> Tuple[int, Optional[_State]]:
        """Pick the newest intact checkpoint.  Returns (seq, state|None)."""
        best_seq, best_state = 0, None
        for slot in range(CKPT_SLOTS):
            base = CKPT_START + slot * CKPT_SLOT_BLOCKS
            header_bytes = self._read_block_bytes(base)
            if header_bytes is None:
                continue
            try:
                header = json.loads(header_bytes.decode("utf-8"))
                chunks = [
                    self._read_block_bytes(base + 1 + i)
                    for i in range(header["chunks"])
                ]
                if any(chunk is None for chunk in chunks):
                    continue
                snapshot = b"".join(chunks)  # type: ignore[arg-type]
                digest = hashlib.blake2b(snapshot, digest_size=8).hexdigest()
                if digest != header["digest"]:
                    continue
                data = json.loads(snapshot.decode("utf-8"))
            except (ValueError, KeyError):
                continue
            if header["seq"] > best_seq:
                state = _State(
                    directory=dict(data["dir"]),
                    inodes={
                        int(num): Inode.decode(text.encode("utf-8"))
                        for num, text in data["inodes"].items()
                    },
                    free_blocks=set(data["free"]),
                    alloc_watermark=data["watermark"],
                    next_inode=data["next_inode"],
                    last_txid=data["last_txid"],
                )
                best_seq, best_state = header["seq"], state
        return best_seq, best_state

    # ---------------------------------------------------------------------- mount --

    def mount(self) -> MountReport:
        """Recover the metadata image: checkpoint + committed journal txns."""
        superblock = self._read_block_bytes(SUPERBLOCK)
        if superblock is None:
            raise FsCorruption("no superblock: device is not a reprofs volume")
        try:
            super_data = json.loads(superblock.decode("utf-8"))
        except ValueError as exc:
            raise FsCorruption(f"corrupt superblock: {exc}") from exc
        if super_data.get("magic") != MAGIC:
            raise FsCorruption("superblock magic mismatch")

        seq, state = self._load_checkpoint()
        clean = state is not None
        if state is None:
            state = _State(alloc_watermark=self.data_start)
        self.state = state
        self._ckpt_seq = seq

        pages = []
        for block in range(JOURNAL_START, JOURNAL_START + self.journal_blocks):
            try:
                pages.append(self._read_block_bytes(block))
            except FsCorruption:
                pages.append(None)
        transactions, discarded = decode_transactions(pages)
        replayed = 0
        for txn in sorted(transactions, key=lambda t: t.txid):
            if txn.txid <= state.last_txid:
                continue  # already folded into the checkpoint
            self._apply_transaction(txn)
            replayed += 1
        # Journal cursor resumes after the newest applied record position;
        # restarting at the region head after a checkpoint keeps it simple.
        # The checkpoint must be durable before the journal region is
        # reused: replayed transactions now live only in that snapshot.
        self._checkpoint()
        self._flush_barrier()
        self._journal_cursor = JOURNAL_START
        self._mounted = True
        return MountReport(
            clean=clean,
            checkpoint_seq=seq,
            transactions_replayed=replayed,
            transactions_discarded=discarded,
            files=len(self.state.directory),
        )

    def _apply_transaction(self, txn: Transaction) -> None:
        for record in txn.payload_records:
            if record.kind is TxKind.DIRECTORY:
                self.state.directory = dict(record.payload["entries"])
            elif record.kind is TxKind.INODE:
                inode = Inode.decode(record.payload["inode"].encode("utf-8"))
                self.state.inodes[inode.number] = inode
                self.state.next_inode = max(self.state.next_inode, inode.number + 1)
                for start, count in inode.extents:
                    self.state.alloc_watermark = max(
                        self.state.alloc_watermark, start + count
                    )
            elif record.kind is TxKind.FREEMAP:
                self.state.free_blocks.update(record.payload["freed"])
        self.state.last_txid = max(self.state.last_txid, txn.txid)
        # Drop inodes no longer referenced by the directory.
        live = set(self.state.directory.values())
        for number in list(self.state.inodes):
            if number not in live:
                del self.state.inodes[number]

    def unmount(self) -> None:
        """Checkpoint and flush everything durable."""
        self._require_mounted()
        self._checkpoint()
        self._flush_barrier()
        self._mounted = False

    def _require_mounted(self) -> None:
        if not self._mounted:
            raise FsError("filesystem is not mounted")

    # ------------------------------------------------------------------- file ops --

    def create(self, name: str, sync: bool = False) -> Inode:
        """Create an empty file."""
        self._require_mounted()
        if not name or "/" in name:
            raise FsError(f"bad file name {name!r}")
        if name in self.state.directory:
            raise FsError(f"file {name!r} exists")
        inode = Inode(number=self.state.next_inode, mtime_us=self.host.kernel.now)
        self.state.next_inode += 1
        self.state.inodes[inode.number] = inode
        self.state.directory[name] = inode.number
        self._commit_txn([self._dir_record(), self._inode_record(inode)], sync=sync)
        return inode

    def _inode_of(self, name: str) -> Inode:
        number = self.state.directory.get(name)
        if number is None:
            raise FileNotFound(name)
        inode = self.state.inodes.get(number)
        if inode is None:
            raise FsCorruption(f"directory points at missing inode {number}")
        return inode

    def write_file(self, name: str, data: bytes, offset: int = 0, sync: bool = False) -> int:
        """Write ``data`` at ``offset`` (extending the file as needed)."""
        self._require_mounted()
        if offset < 0:
            raise FsError("negative offset")
        if offset % BLOCK:
            raise FsError("writes must be 4 KiB aligned (block filesystem)")
        inode = self._inode_of(name)
        end = offset + len(data)
        needed_blocks = -(-end // BLOCK)
        if needed_blocks > inode.block_count:
            new_blocks = self._allocate_blocks(needed_blocks - inode.block_count)
            for block in new_blocks:
                inode.append_extent(block, 1)
        blocks = inode.blocks()
        # Ordered mode: data first.
        cursor = offset
        while cursor < end:
            index = cursor // BLOCK
            chunk = data[cursor - offset : cursor - offset + BLOCK]
            self._write_blocks(blocks[index], [self.cas.address_of(chunk)])
            cursor += BLOCK
        inode.size_bytes = max(inode.size_bytes, end)
        inode.mtime_us = self.host.kernel.now
        inode.generation += 1
        # Then the metadata transaction.
        self._commit_txn([self._inode_record(inode)], sync=sync)
        return len(data)

    def read_file(self, name: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read file content; raises :class:`FsCorruption` on damaged pages."""
        self._require_mounted()
        inode = self._inode_of(name)
        if length is None:
            length = inode.size_bytes - offset
        if offset < 0 or length < 0 or offset + length > inode.size_bytes:
            raise FsError("read outside file bounds")
        if length == 0:
            return b""
        blocks = inode.blocks()
        out = bytearray()
        first = offset // BLOCK
        last = (offset + length - 1) // BLOCK
        for index in range(first, last + 1):
            payload = self._read_block_bytes(blocks[index])
            if payload is None:
                raise FsCorruption(
                    f"file {name!r} block {index} (device block {blocks[index]}) unreadable"
                )
            out.extend(payload.ljust(BLOCK, b"\0"))
        start = offset - first * BLOCK
        return bytes(out[start : start + length])

    def delete(self, name: str, sync: bool = False) -> None:
        """Remove a file and free its blocks."""
        self._require_mounted()
        inode = self._inode_of(name)
        del self.state.directory[name]
        del self.state.inodes[inode.number]
        freed = inode.blocks()
        self.state.free_blocks.update(freed)
        self._commit_txn(
            [self._dir_record(), TxRecord(TxKind.FREEMAP, 0, {"freed": freed})],
            sync=sync,
        )

    def fsync(self, name: str) -> None:
        """Durability barrier for one file (metadata txn + device FLUSH)."""
        self._require_mounted()
        inode = self._inode_of(name)
        self._commit_txn([self._inode_record(inode)], sync=True)

    def rename(self, old_name: str, new_name: str, sync: bool = False) -> None:
        """Atomically rename a file (one directory record = one commit).

        The classic crash-consistency contract: after a fault the file is
        reachable under exactly one of the two names, never both or neither
        (modulo legitimate rollback of the whole rename).
        """
        self._require_mounted()
        if not new_name or "/" in new_name:
            raise FsError(f"bad file name {new_name!r}")
        if new_name in self.state.directory:
            raise FsError(f"file {new_name!r} exists")
        inode_number = self.state.directory.get(old_name)
        if inode_number is None:
            raise FileNotFound(old_name)
        del self.state.directory[old_name]
        self.state.directory[new_name] = inode_number
        self._commit_txn([self._dir_record()], sync=sync)

    def truncate(self, name: str, new_size: int, sync: bool = False) -> None:
        """Shrink a file, freeing whole blocks past the new size."""
        self._require_mounted()
        if new_size < 0:
            raise FsError("negative size")
        inode = self._inode_of(name)
        if new_size > inode.size_bytes:
            raise FsError("truncate cannot grow a file")
        keep_blocks = -(-new_size // BLOCK) if new_size else 0
        blocks = inode.blocks()
        freed = blocks[keep_blocks:]
        kept = blocks[:keep_blocks]
        inode.extents = []
        for block in kept:
            inode.append_extent(block, 1)
        inode.size_bytes = new_size
        inode.mtime_us = self.host.kernel.now
        inode.generation += 1
        self.state.free_blocks.update(freed)
        records = [self._inode_record(inode)]
        if freed:
            records.append(TxRecord(TxKind.FREEMAP, 0, {"freed": freed}))
        self._commit_txn(records, sync=sync)

    # ----------------------------------------------------------------- introspection --

    def list_files(self) -> List[str]:
        """Sorted file names."""
        self._require_mounted()
        return sorted(self.state.directory)

    def stat(self, name: str) -> Inode:
        """Inode of ``name`` (a live reference; do not mutate)."""
        self._require_mounted()
        return self._inode_of(name)

    def exists(self, name: str) -> bool:
        """True when ``name`` is in the directory."""
        return name in self.state.directory
