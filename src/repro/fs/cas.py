"""Content-addressed page store.

The block simulation moves *tokens*, not payload bytes (see
:mod:`repro.workload.checksum`).  The filesystem needs real byte content
for its metadata, so it bridges the two worlds content-addressedly:

- writing a page: ``token = address_of(bytes)`` registers the bytes under a
  collision-checked 63-bit digest and the *token* is what the block layer
  carries;
- reading a page: the device returns a token; ``bytes_for(token)`` yields
  the content **only if that exact token is present on the device** — a
  corrupted or rolled-back page yields a different (or sentinel) token and
  the content is unreachable, exactly like real media.

The store is therefore not a cheat around durability: it is the simulation
equivalent of "the bytes are whatever checksum-verified data the platter
holds".
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from repro.errors import ConfigurationError

FS_TOKEN_BIT = 1 << 62
"""High bit marking filesystem content tokens (disjoint from packet tokens)."""


class ContentStore:
    """Collision-checked digest -> bytes registry."""

    def __init__(self) -> None:
        self._bytes_by_token: Dict[int, bytes] = {}
        # Statistics.
        self.registered = 0
        self.lookups = 0
        self.misses = 0

    def address_of(self, payload: bytes) -> int:
        """Register ``payload`` and return its content token."""
        if not isinstance(payload, (bytes, bytearray)):
            raise ConfigurationError("content must be bytes")
        digest = hashlib.blake2b(bytes(payload), digest_size=7).digest()
        token = FS_TOKEN_BIT | int.from_bytes(digest, "big")
        existing = self._bytes_by_token.get(token)
        if existing is not None:
            if existing != payload:  # pragma: no cover - 2^-56 event
                raise ConfigurationError("content digest collision")
            return token
        self._bytes_by_token[token] = bytes(payload)
        self.registered += 1
        return token

    def bytes_for(self, token: Optional[int]) -> Optional[bytes]:
        """Content registered under ``token``; None when unknown/corrupt."""
        self.lookups += 1
        if token is None:
            self.misses += 1
            return None
        payload = self._bytes_by_token.get(token)
        if payload is None:
            self.misses += 1
        return payload

    def knows(self, token: int) -> bool:
        """True when the token addresses registered content."""
        return token in self._bytes_by_token

    def __len__(self) -> int:
        return len(self._bytes_by_token)
