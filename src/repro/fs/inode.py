"""Inodes and their serialisation.

An inode records a file's size and the extents (block runs) holding its
data.  Inodes serialise to compact JSON (the filesystem journals and
checkpoints them as page content through the content store).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

BLOCK = 4096


@dataclass
class Inode:
    """One file's metadata."""

    number: int
    size_bytes: int = 0
    extents: List[Tuple[int, int]] = field(default_factory=list)  # (block, count)
    mtime_us: int = 0
    generation: int = 0

    def __post_init__(self) -> None:
        if self.number < 0 or self.size_bytes < 0:
            raise ConfigurationError("invalid inode fields")

    @property
    def block_count(self) -> int:
        """Blocks currently allocated to the file."""
        return sum(count for _, count in self.extents)

    def blocks(self) -> List[int]:
        """Flat list of the file's data blocks in logical order."""
        out: List[int] = []
        for start, count in self.extents:
            out.extend(range(start, start + count))
        return out

    def block_for_offset(self, offset: int) -> int:
        """Device block holding byte ``offset`` of the file."""
        if not 0 <= offset < self.size_bytes:
            raise ConfigurationError(f"offset {offset} outside file")
        index = offset // BLOCK
        blocks = self.blocks()
        if index >= len(blocks):
            raise ConfigurationError("inode extents shorter than size")
        return blocks[index]

    def append_extent(self, start: int, count: int) -> None:
        """Add blocks to the end of the file (merging adjacent runs)."""
        if count <= 0 or start < 0:
            raise ConfigurationError("bad extent")
        if self.extents and self.extents[-1][0] + self.extents[-1][1] == start:
            last_start, last_count = self.extents[-1]
            self.extents[-1] = (last_start, last_count + count)
        else:
            self.extents.append((start, count))

    # -- serialisation --------------------------------------------------------------

    def encode(self) -> bytes:
        """Compact JSON encoding (used for journal/checkpoint pages)."""
        return json.dumps(
            {
                "n": self.number,
                "sz": self.size_bytes,
                "ex": self.extents,
                "mt": self.mtime_us,
                "gen": self.generation,
            },
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes) -> "Inode":
        """Inverse of :meth:`encode`."""
        try:
            data = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ConfigurationError(f"corrupt inode encoding: {exc}") from exc
        return cls(
            number=data["n"],
            size_bytes=data["sz"],
            extents=[tuple(pair) for pair in data["ex"]],
            mtime_us=data["mt"],
            generation=data.get("gen", 0),
        )

    def clone(self) -> "Inode":
        """Deep copy (journal records snapshot inode state)."""
        return Inode(
            number=self.number,
            size_bytes=self.size_bytes,
            extents=list(self.extents),
            mtime_us=self.mtime_us,
            generation=self.generation,
        )


def encode_directory(entries: Dict[str, int]) -> bytes:
    """Serialise the root directory (name -> inode number)."""
    return json.dumps(entries, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_directory(payload: bytes) -> Dict[str, int]:
    """Inverse of :func:`encode_directory`."""
    try:
        data = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"corrupt directory encoding: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError("directory must decode to a mapping")
    return {str(name): int(number) for name, number in data.items()}
