"""Metadata journal encoding.

The filesystem's journal is a circular region of blocks; each block holds
one record.  A transaction is the page sequence::

    TxBegin(txid) , payload records... , TxCommit(txid)

Replay applies only transactions whose *commit record is present and whose
every payload page decodes* — a torn transaction (power fault mid-commit)
is discarded wholesale, which is the crash-consistency contract under test.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


class TxKind(enum.Enum):
    """Journal record types."""

    BEGIN = "begin"
    INODE = "inode"
    DIRECTORY = "dir"
    FREEMAP = "freemap"
    COMMIT = "commit"


@dataclass
class TxRecord:
    """One journal page's decoded content."""

    kind: TxKind
    txid: int
    payload: Dict = field(default_factory=dict)

    def encode(self) -> bytes:
        """JSON page content."""
        return json.dumps(
            {"k": self.kind.value, "tx": self.txid, "p": self.payload},
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def decode(cls, payload: Optional[bytes]) -> Optional["TxRecord"]:
        """Parse a journal page; None for unreadable/garbage pages."""
        if payload is None:
            return None
        try:
            data = json.loads(payload.decode("utf-8"))
            return cls(kind=TxKind(data["k"]), txid=int(data["tx"]), payload=data["p"])
        except (ValueError, KeyError, UnicodeDecodeError):
            return None


@dataclass
class Transaction:
    """A decoded, complete journal transaction."""

    txid: int
    records: List[TxRecord]

    @property
    def payload_records(self) -> List[TxRecord]:
        """Records between BEGIN and COMMIT."""
        return [
            r for r in self.records if r.kind not in (TxKind.BEGIN, TxKind.COMMIT)
        ]


def decode_transactions(pages: List[Optional[bytes]]) -> Tuple[List[Transaction], int]:
    """Reassemble committed transactions from raw journal page contents.

    ``pages`` is the journal region in write order (oldest first).  Returns
    ``(committed transactions in order, torn/discarded transaction count)``.

    A transaction is discarded when its commit record never made it, or when
    a page *inside* it is torn — unreadable, or readable but carrying a
    record of a different txid (a power fault rolled the page back to an
    earlier lap's content).  A tear inside an open transaction also ends the
    decode: the journal is written front to back, so nothing past the first
    damaged interior page can be trusted — in particular a valid-looking
    commit record found after the tear must never resurrect the transaction
    it closes (replay stays a strict prefix of the write order).

    Unreadable pages *between* transactions stay a silent skip: that is the
    normal unwritten journal tail.
    """
    committed: List[Transaction] = []
    discarded = 0
    current: Optional[Transaction] = None
    for raw in pages:
        record = TxRecord.decode(raw)
        if record is None:
            if current is not None:
                # Torn interior page: drop the open transaction and stop —
                # later pages (even a valid commit) are past the tear.
                discarded += 1
                current = None
                break
            continue
        if record.kind is TxKind.BEGIN:
            if current is not None:
                discarded += 1  # previous transaction never committed
            current = Transaction(txid=record.txid, records=[record])
            continue
        if current is None:
            # Stray record between transactions (stale page from an earlier
            # lap): skippable, replay filters superseded txids.
            continue
        if record.txid != current.txid:
            # A readable page inside an open transaction with the wrong
            # txid: the device rolled this page back to older content.
            # Same tear contract as an unreadable interior page.
            discarded += 1
            current = None
            break
        current.records.append(record)
        if record.kind is TxKind.COMMIT:
            committed.append(current)
            current = None
    if current is not None:
        discarded += 1  # open at the end of the region: never committed
    return committed, discarded


def validate_region(capacity_blocks: int) -> None:
    """Sanity-check a journal region size."""
    if capacity_blocks < 8:
        raise ConfigurationError("journal region must hold at least 8 blocks")
