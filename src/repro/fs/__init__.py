"""A small journaling filesystem on the simulated SSD.

The paper's related-work survey (§II) faults prior studies for ignoring the
"type of application level operations" under power faults, and its
software-platform ancestor (Kim et al. [17]) tested file systems in the OS
layer.  This package provides that application layer: an extent-based,
metadata-journaling filesystem built directly on the block layer, so file
create/write/fsync/rename-class operations can be studied under the same
realistic power faults as raw block IO.

Design (deliberately ext3-ordered-mode-shaped):

- 4 KiB blocks; superblock at block 0; a fixed journal region; data beyond;
- file data is written in place *before* the metadata transaction commits
  (ordered mode), metadata changes travel as journal transactions
  ``[TxBegin, records..., TxCommit]``;
- :meth:`~repro.fs.filesystem.FileSystem.mount` replays committed
  transactions on top of the last checkpoint and discards torn ones;
- :mod:`repro.fs.checker` audits a remounted filesystem against the
  writer's expectations (the fsync contract), classifying per-file damage.

Byte content rides the simulation's token machinery through a
content-addressed store (:mod:`repro.fs.cas`): every metadata/data page's
token is derived from its bytes, so "what the device holds" remains the
single source of truth for recovery.
"""

from repro.fs.cas import ContentStore
from repro.fs.checker import FileVerdict, FsAudit, FsExpectation, audit_filesystem
from repro.fs.filesystem import (
    FileNotFound,
    FileSystem,
    FsCorruption,
    FsError,
    MountReport,
)
from repro.fs.inode import Inode
from repro.fs.journal import TxRecord, decode_transactions

__all__ = [
    "ContentStore",
    "FileNotFound",
    "FileSystem",
    "FileVerdict",
    "FsAudit",
    "FsCorruption",
    "FsError",
    "FsExpectation",
    "Inode",
    "MountReport",
    "TxRecord",
    "audit_filesystem",
    "decode_transactions",
]
