"""Crash-consistency audit for the filesystem.

After a power fault and remount, three contracts can be broken:

- **durability** — a file the application ``fsync``'d must exist with the
  synced content;
- **integrity** — any readable file's content must decode cleanly (no
  unreadable blocks inside the stated size);
- **ordering** — a file must never show content newer than the metadata
  claims (generation going backwards is allowed — that is rollback — but a
  generation *ahead* of anything the writer produced is corruption).

The audit compares a remounted filesystem against the writer's recorded
expectations and classifies each file, the application-level analogue of
the block-level Analyzer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fs.filesystem import FileNotFound, FileSystem, FsCorruption


class FileVerdict(enum.Enum):
    """Per-file audit outcome."""

    INTACT = "intact"  # expected content present
    ROLLED_BACK = "rolled_back"  # older-but-consistent version (not synced)
    LOST_SYNCED = "lost_synced"  # fsync'd state missing: durability violation
    CORRUPT = "corrupt"  # unreadable content inside the stated size
    MISSING = "missing"  # file vanished entirely


@dataclass
class FsExpectation:
    """What the writer believes about one file.

    ``synced_content`` is the content as of the last ``fsync`` (None if the
    file was never synced); ``latest_content`` is the newest write issued
    (which the filesystem may legitimately lose if it was never synced).
    """

    name: str
    latest_content: bytes = b""
    synced_content: Optional[bytes] = None

    def note_write(self, content: bytes) -> None:
        """Record an issued (not necessarily durable) write."""
        self.latest_content = content

    def note_sync(self) -> None:
        """Record a successful fsync of the latest content."""
        self.synced_content = self.latest_content


@dataclass
class FsAudit:
    """The audit report."""

    verdicts: Dict[str, FileVerdict] = field(default_factory=dict)
    details: List[str] = field(default_factory=list)

    def count(self, verdict: FileVerdict) -> int:
        """Files with one verdict."""
        return sum(1 for v in self.verdicts.values() if v is verdict)

    @property
    def durability_violations(self) -> int:
        """fsync'd files whose synced state is gone — the headline number."""
        return self.count(FileVerdict.LOST_SYNCED) + sum(
            1
            for name, v in self.verdicts.items()
            if v is FileVerdict.MISSING
        )

    @property
    def clean(self) -> bool:
        """True when every file is intact or legitimately rolled back."""
        return all(
            v in (FileVerdict.INTACT, FileVerdict.ROLLED_BACK)
            for v in self.verdicts.values()
        )


def _classify(fs: FileSystem, expect: FsExpectation) -> FileVerdict:
    try:
        observed = fs.read_file(expect.name)
    except FileNotFound:
        if expect.synced_content is None:
            return FileVerdict.ROLLED_BACK  # never synced: loss is allowed
        return FileVerdict.MISSING
    except FsCorruption:
        return FileVerdict.CORRUPT

    if observed == expect.latest_content:
        return FileVerdict.INTACT
    if expect.synced_content is not None and observed == expect.synced_content:
        return FileVerdict.INTACT  # the synced version IS the contract
    if expect.synced_content is not None:
        # Neither latest nor synced: the durable version was lost.
        return FileVerdict.LOST_SYNCED
    return FileVerdict.ROLLED_BACK


def audit_filesystem(fs: FileSystem, expectations: List[FsExpectation]) -> FsAudit:
    """Audit a (re)mounted filesystem against writer expectations."""
    audit = FsAudit()
    for expect in expectations:
        verdict = _classify(fs, expect)
        audit.verdicts[expect.name] = verdict
        if verdict not in (FileVerdict.INTACT, FileVerdict.ROLLED_BACK):
            audit.details.append(f"{expect.name}: {verdict.value}")
    return audit
