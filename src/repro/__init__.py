"""repro — simulated reproduction of *Investigating Power Outage Effects on
Reliability of Solid-State Drives* (Ahmadian et al., DATE 2018).

The package rebuilds the paper's fault-injection testbed end-to-end in a
discrete-event simulation: an ATX PSU with the measured capacitor-discharge
waveform, Arduino/ATX power actuation, complete SATA SSD models (NAND array
with ISPP and paired pages, journaled FTL, volatile write cache), a host
block layer with blktrace-style tooling, and the paper's Scheduler /
IO Generator / Analyzer software stack.

Quick start::

    from repro import Campaign, CampaignConfig, TestPlatform, WorkloadSpec

    platform = TestPlatform(WorkloadSpec(read_fraction=0.0), seed=7)
    result = Campaign(platform, CampaignConfig(faults=10)).run()
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.core.analyzer import Analyzer, FailureKind, FailureRecord
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.platform import TestPlatform
from repro.core.results import CampaignResult, FaultCycleResult
from repro.core.scheduler import FaultScheduler
from repro.engine import (
    CampaignPlan,
    ParallelExecutor,
    SerialExecutor,
    run_plan,
    run_plans,
)
from repro.host.system import HostSystem
from repro.power.psu import AtxPsu, DischargeProfile, InstantCutoffPsu
from repro.ssd import models
from repro.ssd.device import SsdConfig, SsdDevice
from repro.workload.generator import IOGenerator
from repro.workload.spec import AccessPattern, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "AccessPattern",
    "Analyzer",
    "AtxPsu",
    "Campaign",
    "CampaignConfig",
    "CampaignPlan",
    "CampaignResult",
    "DischargeProfile",
    "FailureKind",
    "FailureRecord",
    "FaultCycleResult",
    "FaultScheduler",
    "HostSystem",
    "IOGenerator",
    "InstantCutoffPsu",
    "ParallelExecutor",
    "SerialExecutor",
    "SsdConfig",
    "SsdDevice",
    "TestPlatform",
    "WorkloadSpec",
    "models",
    "run_plan",
    "run_plans",
    "__version__",
]
