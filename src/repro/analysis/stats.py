"""Summary statistics used by benches and tests.

Small, dependency-light implementations (math only) so assertions in the
test suite don't pull in scipy for trivial quantities.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) / (len(values) - 1))


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / mean — the flatness metric for the Fig. 6 claim.

    Returns 0.0 when the mean is zero.
    """
    values = list(values)
    if not values:
        return 0.0
    center = mean(values)
    if center == 0:
        return 0.0
    return (max(values) - min(values)) / center


def proportion_confidence_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    >>> lo, hi = proportion_confidence_interval(10, 100)
    >>> 0.04 < lo < 0.1 < hi < 0.18
    True
    """
    if trials <= 0:
        raise ConfigurationError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ConfigurationError("successes out of range")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    low = max(0.0, min(p, center - margin))  # numerical guard: lo <= p
    high = min(1.0, max(p, center + margin))
    return (low, high)


def saturation_point(
    xs: Sequence[float], ys: Sequence[float], tolerance: float = 0.05
) -> Optional[float]:
    """First x beyond which y stops growing (within ``tolerance`` of max).

    Used for the Fig. 8 responded-IOPS plateau.  Returns None if y is still
    growing at the last point.
    """
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have equal length")
    if not xs:
        return None
    peak = max(ys)
    if peak <= 0:
        return None
    for x, y in zip(xs, ys):
        if y >= peak * (1 - tolerance):
            return x
    return None


def is_monotone_decreasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when each value is <= the previous (within ``slack`` relative)."""
    values = list(values)
    for previous, current in zip(values, values[1:]):
        if current > previous * (1 + slack):
            return False
    return True


def is_monotone_increasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when each value is >= the previous (within ``slack`` relative)."""
    values = list(values)
    for previous, current in zip(values, values[1:]):
        if current < previous * (1 - slack):
            return False
    return True
