"""Result analysis and report rendering.

- :mod:`repro.analysis.stats` — summary statistics, confidence intervals,
  and the trend tests the benches assert on (flatness for Fig. 6,
  monotonicity for Fig. 7, saturation for Fig. 8);
- :mod:`repro.analysis.report` — ASCII tables and bar series that mirror
  the paper's figures in terminal output.
"""

from repro.analysis.export import (
    campaign_to_dict,
    save_campaign_csv,
    save_campaign_json,
    save_series_csv,
    save_sweep_csv,
)
from repro.analysis.report import ascii_bar_series, ascii_table, paper_vs_measured
from repro.analysis.stats import (
    mean,
    proportion_confidence_interval,
    relative_spread,
    saturation_point,
    stdev,
)

__all__ = [
    "ascii_bar_series",
    "ascii_table",
    "campaign_to_dict",
    "save_campaign_csv",
    "save_campaign_json",
    "save_series_csv",
    "save_sweep_csv",
    "mean",
    "paper_vs_measured",
    "proportion_confidence_interval",
    "relative_spread",
    "saturation_point",
    "stdev",
]
