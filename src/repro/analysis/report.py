"""ASCII rendering of experiment output.

The benches regenerate the paper's tables/figures as terminal output: an
aligned table of the measured rows plus a bar series that mirrors the
figure's shape, and a paper-vs-measured block quoting the calibration
anchor being reproduced.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned table.

    >>> print(ascii_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    if not headers:
        raise ConfigurationError("table needs headers")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def ascii_bar_series(
    labels: Sequence, values: Sequence[float], width: int = 40, title: str = ""
) -> str:
    """Render a horizontal bar chart (the figure's shape, in a terminal).

    >>> print(ascii_bar_series(["x"], [1.0], width=4))
    x | #### 1
    """
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    if width <= 0:
        raise ConfigurationError("width must be positive")
    peak = max(values) if values else 0.0
    label_width = max((len(str(label)) for label in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar_len = 0 if peak <= 0 else round(width * value / peak)
        pretty = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{str(label).ljust(label_width)} | {'#' * bar_len} {pretty}")
    return "\n".join(lines)


def paper_vs_measured(
    rows: Sequence[Sequence], title: str = "paper vs measured"
) -> str:
    """Render the EXPERIMENTS.md-style comparison block.

    Each row is ``(quantity, paper_value, measured_value, verdict)``.
    """
    return ascii_table(
        ["quantity", "paper", "measured", "verdict"], rows, title=title
    )


def format_float(value: Optional[float], digits: int = 2) -> str:
    """Stable float formatting for tables ('-' for None)."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"
