"""Result export: CSV and JSON for downstream plotting.

The benches print ASCII; anyone regenerating the paper's figures in a
plotting tool wants machine-readable series.  These helpers serialise
campaign results and sweep series losslessly and dependency-free.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.core.results import CampaignResult
from repro.errors import ConfigurationError

PathLike = Union[str, Path]


def campaign_to_dict(result: CampaignResult) -> Dict:
    """Full JSON-safe dump of one campaign (summary + per-cycle rows)."""
    return {
        "label": result.label,
        "summary": result.summary(),
        "cycles": [
            {
                "cycle": cycle.cycle_index,
                "fault_time_us": cycle.fault_time_us,
                "requests_completed": cycle.requests_completed,
                "writes_completed": cycle.writes_completed,
                "reads_completed": cycle.reads_completed,
                "data_failures": cycle.data_failures,
                "fwa": cycle.fwa_failures,
                "io_errors": cycle.io_errors,
                "stranded_map_updates": cycle.stranded_map_updates,
                "dirty_pages_lost": cycle.dirty_pages_lost,
            }
            for cycle in result.cycles
        ],
    }


def save_campaign_json(result: CampaignResult, path: PathLike) -> None:
    """Write one campaign as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(campaign_to_dict(result), indent=2), encoding="utf-8"
    )


def save_campaign_csv(result: CampaignResult, path: PathLike) -> int:
    """Write per-cycle rows as CSV.  Returns the row count."""
    rows = campaign_to_dict(result)["cycles"]
    if not rows:
        raise ConfigurationError("campaign has no cycles to export")
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def save_sweep_csv(
    results: Dict, path: PathLike, x_label: str = "x"
) -> int:
    """Write a sweep (x -> CampaignResult) as one summary row per point."""
    if not results:
        raise ConfigurationError("empty sweep")
    rows = []
    for x_value, result in results.items():
        summary = result.summary()
        summary[x_label] = x_value
        rows.append(summary)
    field_names = [x_label] + [k for k in rows[0] if k != x_label]
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=field_names)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def save_series_csv(
    path: PathLike,
    columns: Dict[str, Sequence],
) -> int:
    """Write aligned columns (e.g. a waveform) as CSV.  Returns row count."""
    if not columns:
        raise ConfigurationError("no columns to export")
    lengths = {len(values) for values in columns.values()}
    if len(lengths) != 1:
        raise ConfigurationError("columns must have equal length")
    names = list(columns)
    row_count = lengths.pop()
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for index in range(row_count):
            writer.writerow([columns[name][index] for name in names])
    return row_count
