"""Write-ledger persistence — the diskchecker-style workflow.

Scattered power-fail test scripts ("diskchecker.pl" and friends) all share
one pattern: a writer logs *what it wrote and when it was acknowledged* to
stable storage elsewhere, power is cut, and after reboot a checker replays
the log against the device.  This module gives the platform that workflow:

- :func:`save_ledger` / :func:`load_ledger` — JSON-lines serialisation of
  :class:`~repro.workload.packet.DataPacket` headers (the Fig. 2 fields);
- :func:`check_ledger` — replay a saved ledger against any
  ``peek(lpn) -> token`` source (simulated device or a real-device adapter)
  using the same §III-B taxonomy the campaign Analyzer applies.

The format is line-delimited JSON so a writer can append records durably
per-ACK, exactly as the hardware workflow requires.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.core.analyzer import Analyzer, VerificationOutcome
from repro.errors import CampaignError
from repro.workload.packet import DataPacket

FORMAT_VERSION = 1


def packet_to_record(packet: DataPacket) -> Dict:
    """JSON-safe dict of one packet's header (Fig. 2 fields)."""
    return {
        "v": FORMAT_VERSION,
        "id": packet.packet_id,
        "lpn": packet.address_lpn,
        "pages": packet.page_count,
        "write": packet.is_write,
        "queue_time": packet.queue_time,
        "complete_time": packet.complete_time,
        "data": list(packet.data_checksums),
        "initial": list(packet.initial_checksums),
    }


def record_to_packet(record: Dict) -> DataPacket:
    """Inverse of :func:`packet_to_record`."""
    if record.get("v") != FORMAT_VERSION:
        raise CampaignError(f"unsupported ledger record version {record.get('v')}")
    packet = DataPacket(
        packet_id=record["id"],
        address_lpn=record["lpn"],
        page_count=record["pages"],
        is_write=record["write"],
        queue_time=record["queue_time"],
        complete_time=record["complete_time"],
        data_checksums=list(record["data"]),
        initial_checksums=list(record["initial"]),
    )
    return packet


def save_ledger(packets: Iterable[DataPacket], path: Union[str, Path]) -> int:
    """Write packets as JSON lines.  Returns the record count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for packet in packets:
            handle.write(json.dumps(packet_to_record(packet)))
            handle.write("\n")
            count += 1
    return count


def load_ledger(path: Union[str, Path]) -> List[DataPacket]:
    """Read a JSON-lines ledger back into packets."""
    path = Path(path)
    packets: List[DataPacket] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CampaignError(
                    f"{path}:{line_number}: corrupt ledger line: {exc}"
                ) from exc
            packets.append(record_to_packet(record))
    return packets


def check_ledger(
    peek: Callable[[int], Optional[int]],
    packets: Iterable[DataPacket],
    cycle_index: int = 0,
) -> VerificationOutcome:
    """Verify a ledger against a device (the post-reboot checker step).

    ``peek`` maps a logical page number to the data token currently visible
    there (None = erased/unmapped).  Only acknowledged writes are judged;
    unacknowledged ones are classified IO errors, as in the campaign path.
    """
    analyzer = Analyzer.from_peek(peek)
    packets = list(packets)
    acked_writes = [p for p in packets if p.is_write and p.acked]
    unacked = [p for p in packets if p.is_write and not p.acked]
    # Seed the "before" state from the ledgers' own initial checksums so the
    # FWA comparison uses the writer's recorded view.
    for packet in acked_writes:
        if not packet.initial_checksums:
            continue
        for lpn, initial in zip(packet.lpns(), packet.initial_checksums):
            analyzer._expected.setdefault(lpn, initial)
    return analyzer.verify_cycle(cycle_index, acked_writes, unacked)
