"""Result records for fault-injection campaigns."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.units import to_sec


@dataclass
class FaultCycleResult:
    """Outcome of one injection cycle (one power fault)."""

    cycle_index: int
    fault_time_us: int
    requests_completed: int
    writes_completed: int
    reads_completed: int
    data_failures: int
    fwa_failures: int
    io_errors: int
    stranded_map_updates: int = 0
    dirty_pages_lost: int = 0
    collateral_pages: int = 0
    supercap_pages_saved: int = 0
    unsafe_shutdowns: int = 0
    intact_writes: int = 0
    topology_recovered: int = 0
    # Semantic (application-level) outcome counters, filled by app campaigns
    # (see repro.apps.audit): every acked application promise of the cycle is
    # classified into exactly one of the five verdict classes, so
    # app_promises == app_intact + app_torn_recovered + app_committed_loss
    #                 + app_silent_corruption + app_recovery_failed.
    app_promises: int = 0
    app_intact: int = 0
    app_torn_recovered: int = 0
    app_committed_loss: int = 0
    app_silent_corruption: int = 0
    app_recovery_failed: int = 0

    @property
    def total_data_loss(self) -> int:
        """Data failures + FWA (both are host-visible data loss)."""
        return self.data_failures + self.fwa_failures


@dataclass(frozen=True)
class ShardTiming:
    """Execution timing of one shard, as observed by the supervisor.

    ``pickup_latency_s`` is submit-to-pickup (how long the shard queued
    behind other work); ``duration_s`` is pickup-to-completion of the
    *successful* attempt.  Both are ``None`` when the execution path could
    not observe them (resumed shards never ran; plain executors don't
    instrument).  Timing never feeds result numbers — it exists so
    paper-scale sweeps can be profiled for stragglers.
    """

    shard_index: int
    status: str  # "completed" | "resumed" | "quarantined"
    attempts: int = 1
    pickup_latency_s: Optional[float] = None
    duration_s: Optional[float] = None


@dataclass
class ExecutionStats:
    """How a campaign's shards were *executed* (degraded-run accounting).

    Simulation outcomes (cycles, failure counts) are deterministic in the
    plan; execution is not — workers crash, time out, get retried, shards
    may be loaded from a checkpoint or quarantined.  This record keeps that
    operational story separate from :meth:`CampaignResult.summary`, so a
    resumed or retried run still produces *identical* result numbers while
    remaining auditable.  (``timings`` likewise stays out of ``summary()``:
    wall-clock varies run to run, result numbers must not.)
    """

    shards_completed: int = 0
    shards_resumed: int = 0
    shards_quarantined: int = 0
    retries: int = 0
    attempts: List[int] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    timings: List[ShardTiming] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any shard was lost to quarantine."""
        return self.shards_quarantined > 0

    def copy(self) -> "ExecutionStats":
        """Independent copy (fresh lists)."""
        dup = replace(self)
        dup.attempts = list(self.attempts)
        dup.quarantined = list(self.quarantined)
        dup.timings = list(self.timings)
        return dup

    def merged_with(self, other: "ExecutionStats") -> "ExecutionStats":
        """Combine accounting of two merged campaigns."""
        merged = self.copy()
        merged.shards_completed += other.shards_completed
        merged.shards_resumed += other.shards_resumed
        merged.shards_quarantined += other.shards_quarantined
        merged.retries += other.retries
        merged.attempts.extend(other.attempts)
        merged.quarantined.extend(other.quarantined)
        merged.timings.extend(other.timings)
        return merged

    def summary(self) -> Dict[str, object]:
        """Flat dict for console reporting."""
        return {
            "shards_completed": self.shards_completed,
            "shards_resumed": self.shards_resumed,
            "shards_quarantined": self.shards_quarantined,
            "retries": self.retries,
            "quarantined": list(self.quarantined),
        }


@dataclass
class CampaignResult:
    """Aggregated outcome of a whole campaign."""

    label: str
    cycles: List[FaultCycleResult] = field(default_factory=list)
    traffic_time_us: int = 0
    requests_issued: int = 0
    execution: ExecutionStats = field(default_factory=ExecutionStats)

    # -- accumulation ---------------------------------------------------------------

    def add_cycle(self, cycle: FaultCycleResult) -> None:
        """Append one fault cycle's outcome."""
        self.cycles.append(cycle)

    # -- totals ----------------------------------------------------------------------

    @property
    def faults(self) -> int:
        """Number of injected faults."""
        return len(self.cycles)

    @property
    def requests_completed(self) -> int:
        """Requests acknowledged across all cycles."""
        return sum(c.requests_completed for c in self.cycles)

    @property
    def data_failures(self) -> int:
        """Outright corruption count (checksum mismatch, not old data)."""
        return sum(c.data_failures for c in self.cycles)

    @property
    def fwa_failures(self) -> int:
        """False Write-Acknowledge count (old data intact at the address)."""
        return sum(c.fwa_failures for c in self.cycles)

    @property
    def io_errors(self) -> int:
        """Commands lost to device unavailability."""
        return sum(c.io_errors for c in self.cycles)

    @property
    def total_data_loss(self) -> int:
        """Data failures + FWA."""
        return self.data_failures + self.fwa_failures

    @property
    def unsafe_shutdowns(self) -> int:
        """SMART unsafe-shutdown increments across all cycles (stress runs)."""
        return sum(c.unsafe_shutdowns for c in self.cycles)

    @property
    def intact_writes(self) -> int:
        """Acked writes verified intact across all cycles (stress runs)."""
        return sum(c.intact_writes for c in self.cycles)

    @property
    def topology_recovered(self) -> int:
        """Acked writes that lost their device copy but were recovered by
        topology redundancy (mirror leg / backing store) — topology runs."""
        return sum(c.topology_recovered for c in self.cycles)

    # -- semantic (application-level) totals — app campaigns ------------------------

    @property
    def app_promises(self) -> int:
        """Application promises audited across all cycles (app runs)."""
        return sum(c.app_promises for c in self.cycles)

    @property
    def app_intact(self) -> int:
        """Promises whose content was recovered exactly from the primary copy."""
        return sum(c.app_intact for c in self.cycles)

    @property
    def app_torn_recovered(self) -> int:
        """Promises whose primary on-disk record was damaged but whose content
        the app's own recovery restored from a redundant copy."""
        return sum(c.app_torn_recovered for c in self.cycles)

    @property
    def app_committed_loss(self) -> int:
        """Acked promises whose content is gone — and detectably so."""
        return sum(c.app_committed_loss for c in self.cycles)

    @property
    def app_silent_corruption(self) -> int:
        """Acked promises whose recovery served wrong content with no error."""
        return sum(c.app_silent_corruption for c in self.cycles)

    @property
    def app_recovery_failed(self) -> int:
        """Promises orphaned because the app's recovery path itself failed."""
        return sum(c.app_recovery_failed for c in self.cycles)

    # -- rates ------------------------------------------------------------------------

    @property
    def data_loss_per_fault(self) -> float:
        """The paper's headline ratio ('data failure per power fault')."""
        if not self.cycles:
            return 0.0
        return self.total_data_loss / len(self.cycles)

    @property
    def io_errors_per_fault(self) -> float:
        """IO errors per injected fault."""
        if not self.cycles:
            return 0.0
        return self.io_errors / len(self.cycles)

    @property
    def responded_iops(self) -> float:
        """Completed requests per second of traffic time (Fig. 8's y-axis)."""
        if self.traffic_time_us <= 0:
            return 0.0
        return self.requests_completed / to_sec(self.traffic_time_us)

    @property
    def fwa_fraction(self) -> float:
        """Share of data loss that is FWA (Fig. 7's stacked component)."""
        total = self.total_data_loss
        return self.fwa_failures / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "faults": self.faults,
            "requests_completed": self.requests_completed,
            "data_failures": self.data_failures,
            "fwa": self.fwa_failures,
            "total_data_loss": self.total_data_loss,
            "io_errors": self.io_errors,
            "loss_per_fault": round(self.data_loss_per_fault, 3),
            "io_errors_per_fault": round(self.io_errors_per_fault, 3),
            "responded_iops": round(self.responded_iops, 1),
            "fwa_fraction": round(self.fwa_fraction, 3),
        }

    def clone(self, label: Optional[str] = None) -> "CampaignResult":
        """Field-complete copy (fresh cycle list, same cycle records).

        Built on :func:`dataclasses.replace` so a field added to this class
        is carried along automatically instead of being silently dropped by
        hand-written copies (merge code relies on this).
        """
        copy = replace(self, label=self.label if label is None else label)
        copy.cycles = list(self.cycles)
        copy.execution = self.execution.copy()
        return copy

    def merged_with(self, other: "CampaignResult") -> "CampaignResult":
        """Combine two campaigns (e.g. the two units of one Table I model)."""
        merged = self.clone()
        merged.cycles = list(self.cycles) + list(other.cycles)
        merged.traffic_time_us = self.traffic_time_us + other.traffic_time_us
        merged.requests_issued = self.requests_issued + other.requests_issued
        merged.execution = self.execution.merged_with(other.execution)
        return merged
