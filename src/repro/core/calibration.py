"""Calibration constants and their paper anchors.

Every number the simulation cannot derive from first principles is fitted to
a measurement the paper reports.  This module is the single registry: each
constant says *what the paper measured* and *which component consumes it*.
Benches print these anchors next to reproduced values so drift is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.units import MSEC


@dataclass(frozen=True)
class Anchor:
    """One calibrated constant with its provenance."""

    value: float
    unit: str
    paper_anchor: str
    consumer: str


ANCHORS: Dict[str, Anchor] = {
    "psu_unloaded_discharge_ms": Anchor(
        1400,
        "ms",
        "Fig. 4a: unloaded PSU discharges within ~1400 ms",
        "repro.power.psu.DischargeProfile (UNLOADED_HOLDUP_US/UNLOADED_TAU_US)",
    ),
    "psu_loaded_discharge_ms": Anchor(
        900,
        "ms",
        "Fig. 4b / §III-A2: with one SSD the discharge takes ~900 ms",
        "repro.power.psu.DischargeProfile.for_load(1.0)",
    ),
    "host_detach_ms": Anchor(
        40,
        "ms",
        "Fig. 4b / §III-A2: SSD unavailable at 4.5 V after ~40 ms",
        "repro.ssd.power_state.PowerThresholds.detach_volts + PSU waveform",
    ),
    "detach_voltage": Anchor(
        4.5,
        "V",
        "§III-A2: 'SSD turns off in 4.5 V'",
        "repro.ssd.power_state.PowerThresholds.detach_volts",
    ),
    "post_ack_window_ms": Anchor(
        700,
        "ms",
        "§IV-A: corruption observed up to ~700 ms after the request's ACK",
        "repro.ftl.FtlConfig.journal_commit_interval_us (map staleness bound)",
    ),
    "failures_per_fault_write_mixed": Anchor(
        2.0,
        "failures/fault",
        "§IV-B: 'about two data failure per power fault' (write-heavy, 4K-1M)",
        "FtlConfig.page_recovery_prob (per-update loss ~1.5%) x update rate",
    ),
    "responded_iops_saturation": Anchor(
        6900,
        "IOPS",
        "§IV-F: responded IOPS saturates around 6900",
        "SsdConfig.interface_overhead_us=140 + link transfer time (4 KiB)",
    ),
    "sequential_excess_percent": Anchor(
        14,
        "%",
        "§IV-D: sequential workloads show ~14% more data failures",
        "FtlConfig.extent_recovery_prob vs page_recovery_prob (shared-entry loss)",
    ),
    "request_timeout_s": Anchor(
        30,
        "s",
        "§III-B: '30 seconds timeout for delayed requests'",
        "repro.trace.btt.DELAYED_REQUEST_TIMEOUT_US / BlockLayer.timeout_us",
    ),
    "unsafe_shutdowns_per_dirty_cycle": Anchor(
        1,
        "count/cycle",
        "NVMe SMART/Health log: each dirty power cycle increments the "
        "Unsafe Shutdowns field by exactly one (qualification-rig invariant)",
        "repro.ssd.device unsafe_shutdowns counter + repro.stress SMART audit",
    ),
    "wt_zero_app_loss": Anchor(
        0,
        "writes/campaign",
        "Ahmadian et al. (arXiv:1912.01555): a write-through cache "
        "acknowledges only after the durable tier commits, so cache-tier "
        "power faults cannot lose acknowledged writes",
        "repro.topology audit: WT campaigns must report zero app-visible loss",
    ),
    "wb_mirror_recovers_all_fwa": Anchor(
        0,
        "writes/campaign",
        "Ahmadian et al. (arXiv:1912.01555): mirrored write-back cache legs "
        "on independent power rails keep a surviving copy of every acked "
        "write a faulted leg loses",
        "repro.topology audit: device FWAs classify topology-recovered, not lost",
    ),
    "wal_fsync_zero_commit_loss": Anchor(
        0,
        "commits/campaign",
        "§IV-A remedy, application-level: a WAL that acks COMMIT only after "
        "fsync never loses an acknowledged transaction to a power fault — "
        "the FWA failures the paper measures all live in the post-ack, "
        "pre-flush window",
        "repro.apps semantic audit: fsync WAL campaigns report zero committed loss",
    ),
}


# ---------------------------------------------------------------------------
# Canonical campaign scales.  The paper's experiments use 200-800+ faults
# over 16k-64k+ requests.  A fault cycle must run longer than the journal
# commit interval so the stranded-update population reaches steady state;
# benches scale the *fault count* down (REPRO_BENCH_SCALE), never the cycle
# length, so per-fault statistics stay calibrated.
# ---------------------------------------------------------------------------

CYCLE_MIN_US = 750 * MSEC
"""Earliest fault instant after traffic starts (just past one commit)."""

CYCLE_MAX_US = 1_500 * MSEC
"""Latest fault instant — keeps the fault uniform over the commit phase."""

RECOVERY_SETTLE_US = 1_000 * MSEC
"""Rail-discharge settle time before power is restored (paper: 900 ms+)."""

PAPER_FAULTS = {
    "fig5_request_type": 300,
    "fig6_wss": 200,
    "fig7_request_size": 800,
    "fig8_iops": 600,
    "fig9_sequences": 300,
    "sec4d_pattern": 300,
    "dirty_cycle": 300,
    "cache_topology": 300,
    "apps_wal": 300,
}
"""Fault counts the paper reports per experiment family."""


def scaled_faults(paper_count: int, scale: float) -> int:
    """Fault budget for a bench run at ``scale`` of the paper's campaign."""
    return max(4, round(paper_count * scale))
