"""Pre-packaged experiment procedures.

Most of the paper's experiments are plain campaigns over different
:class:`~repro.workload.spec.WorkloadSpec` values (the benches build those
directly).  Two procedures need bespoke control flow and live here:

- :func:`run_post_ack_sweep` — §IV-A: inject the fault at a controlled
  interval *after a request's ACK* and measure whether the already-completed
  request still loses data (the ~700 ms vulnerability window);
- :func:`run_discharge_capture` — Fig. 4: capture the PSU output waveform
  with and without a device on the rail.

The registry at the bottom indexes every reproduced table/figure to its
bench target (mirrored in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.platform import TestPlatform
from repro.errors import CampaignError
from repro.host.system import HostSystem
from repro.power.rails import RailProbe
from repro.ssd.device import SsdConfig
from repro.units import MSEC, SEC
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class PostAckPoint:
    """One interval of the §IV-A sweep."""

    interval_ms: int
    acked_requests: int
    lost_requests: int

    @property
    def loss_fraction(self) -> float:
        """Fraction of ACKed requests that still lost data."""
        if self.acked_requests == 0:
            return 0.0
        return self.lost_requests / self.acked_requests


def amplified_firmware_config(base: Optional[SsdConfig] = None) -> SsdConfig:
    """Device variant with a deliberately weak recovery scan.

    The *position* of the §IV-A window is set by the journal commit interval
    (calibrated to the paper's 700 ms); the per-request loss probability on
    real drives is small, so resolving the window's shape would need
    thousands of trials.  Dropping the scan success amplifies the magnitude
    without moving the boundary — benches state this substitution.
    """
    import dataclasses

    base = base or SsdConfig()
    return dataclasses.replace(
        base,
        name=f"{base.name}-amplified",
        ftl=dataclasses.replace(
            base.ftl, page_recovery_prob=0.35, extent_recovery_prob=0.35
        ),
    )


def run_post_ack_sweep(
    intervals_ms: List[int],
    cycles_per_point: int = 6,
    burst_requests: int = 40,
    seed: int = 1,
    config: Optional[SsdConfig] = None,
    spec: Optional[WorkloadSpec] = None,
) -> List[PostAckPoint]:
    """§IV-A: fault at a fixed interval after the last ACK of a write burst.

    Each cycle issues ``burst_requests`` random writes (4 KiB - 1 MiB unless
    ``spec`` overrides), waits for every ACK, idles exactly ``interval_ms``,
    cuts power, recovers and verifies the burst.  Returns one point per
    interval.  Note the window is anchored at the burst's *first* map
    update; pass a small-request spec when the interval under study is
    comparable to the burst duration.
    """
    if not intervals_ms:
        raise CampaignError("need at least one interval")
    config = config or amplified_firmware_config()
    if spec is None:
        spec = WorkloadSpec(
            wss_bytes=8 * 1024 * 1024 * 1024,
            read_fraction=0.0,
            outstanding=8,
        )
    points: List[PostAckPoint] = []
    for interval_index, interval_ms in enumerate(intervals_ms):
        platform = TestPlatform(
            spec, config=config, seed=seed * 1000 + interval_index
        )
        platform.boot()
        host = platform.host
        generator = platform.generator
        acked = 0
        lost = 0
        for _ in range(cycles_per_point):
            generator.start()
            deadline = host.kernel.now + 60 * SEC
            while len(generator.completed_writes) < burst_requests:
                if host.kernel.now >= deadline:
                    raise CampaignError("burst never completed")
                host.run_for(5 * MSEC)
            generator.stop()
            while generator.inflight > 0 and host.kernel.now < deadline:
                host.run_for(5 * MSEC)
            host.run_for(interval_ms * MSEC)
            host.cut_power()
            host.wait_until_dead()
            host.run_for(1000 * MSEC)
            host.restore_power()
            host.wait_until_ready()
            writes, _, failed = generator.drain_ledgers()
            generator.packets.clear()
            outcome = platform.analyzer.verify_cycle(0, writes, [])
            acked += len(writes)
            lost += sum(
                1
                for record in outcome.records
                if record.kind.value != "io_error"
            )
        points.append(
            PostAckPoint(
                interval_ms=interval_ms, acked_requests=acked, lost_requests=lost
            )
        )
    return points


def run_discharge_capture(
    with_device: bool, seed: int = 2, sample_interval_us: int = 2 * MSEC
) -> List[Tuple[float, float]]:
    """Fig. 4: capture the 5 V rail waveform during one discharge.

    Returns ``(ms since cut, volts)`` samples.  ``with_device`` reproduces
    Fig. 4b (one SSD on the rail), otherwise Fig. 4a (unloaded).
    """
    if with_device:
        host = HostSystem(seed=seed)
        host.boot()
        kernel, psu = host.kernel, host.power.psu
        cut = host.cut_power
    else:
        from repro.power.controller import PowerController
        from repro.sim import Kernel

        kernel = Kernel()
        power = PowerController(kernel)
        power.power_on()
        kernel.run(until=kernel.now + 50 * MSEC)
        psu = power.psu
        cut = power.power_off
    probe = RailProbe(kernel, psu, interval_us=sample_interval_us)
    probe.start_capture(duration_us=1600 * MSEC)
    cut()
    kernel.run(until=kernel.now + 1700 * MSEC)
    return probe.waveform_ms()


# ---------------------------------------------------------------------------
# Experiment registry (mirrors DESIGN.md's per-experiment index).
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, str] = {
    "fig4_psu_discharge": "benchmarks/bench_fig4_psu_discharge.py",
    "sec4a_post_ack_window": "benchmarks/bench_sec4a_post_ack_window.py",
    "fig5_request_type": "benchmarks/bench_fig5_request_type.py",
    "fig6_working_set_size": "benchmarks/bench_fig6_working_set_size.py",
    "sec4d_access_pattern": "benchmarks/bench_sec4d_access_pattern.py",
    "fig7_request_size": "benchmarks/bench_fig7_request_size.py",
    "fig8_iops": "benchmarks/bench_fig8_iops.py",
    "fig9_access_sequence": "benchmarks/bench_fig9_access_sequence.py",
    "table1_devices": "benchmarks/bench_table1_devices.py",
    "ablation_cache": "benchmarks/bench_ablation_cache.py",
    "ablation_discharge": "benchmarks/bench_ablation_discharge.py",
    "ablation_journal_interval": "benchmarks/bench_ablation_journal_interval.py",
    "stress_dirty_cycle": "benchmarks/bench_dirty_cycle.py",
}
