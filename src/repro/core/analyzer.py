"""The Analyzer: checksum comparison and the §III-B failure taxonomy.

After each fault cycle (power restored, device recovered) the Analyzer reads
back every address the cycle's acknowledged writes touched and classifies
each write packet with the paper's two flags:

- ``completed`` — the btt-derived flag: all sub-requests finished OK.  A
  packet that never completed is an **IO error** (taxonomy case 3).
- ``notApplied`` — the written data is absent *and* the address still holds
  exactly what it held before the request issued.  With ``completed=1`` that
  is a **False Write-Acknowledge** (case 1).
- ``completed=1`` with a checksum mismatch that is *not* the prior content
  is a **data failure** (case 2).

A write that a *later* acknowledged write legitimately superseded is judged
against the superseding chain: if the address holds any later writer's data
the earlier packet cannot be blamed.  When both members of a WAW pair are
lost, the earlier one rolls back to the pre-pair content (FWA) and the later
one mismatches everything (data failure) — two failures from one fault,
exactly the amplification §IV-G reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.host.system import HostSystem
from repro.ssd.device import CORRUPT_TOKEN
from repro.workload.checksum import TOKEN_ZERO
from repro.workload.packet import DataPacket


class FailureKind(enum.Enum):
    """The paper's three IO-failure classes (§III-B)."""

    DATA_FAILURE = "data_failure"
    FWA = "false_write_ack"
    IO_ERROR = "io_error"


@dataclass(frozen=True)
class FailureRecord:
    """One classified failure."""

    kind: FailureKind
    packet_id: int
    lpn: int
    cycle_index: int
    observed_token: Optional[int] = None
    expected_token: Optional[int] = None


@dataclass
class VerificationOutcome:
    """Everything one verification pass produced."""

    records: List[FailureRecord]
    packets_checked: int
    pages_checked: int

    def count(self, kind: FailureKind) -> int:
        """Failures of one kind."""
        return sum(1 for r in self.records if r.kind is kind)

    @property
    def intact_packets(self) -> int:
        """Packets that verified clean (each failed packet yields one record)."""
        return self.packets_checked - len(self.records)


class Analyzer:
    """Stateful verifier over one host system.

    Keeps a persistent per-LPN *expected content* ledger across fault
    cycles: after each verification the ledger is reconciled with what the
    device actually holds, so the next cycle's "checksum before issuing the
    request" references (Fig. 2's Initial Checksum) are exact.
    """

    def __init__(self, host: Optional[HostSystem] = None, peek=None) -> None:
        if host is None and peek is None:
            raise ValueError("Analyzer needs a host system or a peek callable")
        self.host = host
        self._peek = peek if peek is not None else host.ssd.peek
        self._expected: Dict[int, int] = {}  # lpn -> token (TOKEN_ZERO if absent)
        # Statistics.
        self.total_records: int = 0
        self.packets_verified: int = 0

    @classmethod
    def from_peek(cls, peek) -> "Analyzer":
        """Standalone checker over any ``peek(lpn) -> token|None`` source.

        This is the diskchecker-style usage: the peek callable can read a
        real block device (returning per-page checksums) instead of the
        simulated one — the taxonomy logic is identical.
        """
        return cls(host=None, peek=peek)

    # -- reference bookkeeping ---------------------------------------------------------

    def expected_at(self, lpn: int) -> int:
        """Verified content of ``lpn`` as of the last reconciliation."""
        return self._expected.get(lpn, TOKEN_ZERO)

    def snapshot_initial_checksums(self, packet: DataPacket) -> None:
        """Fill the packet's Initial Checksum header field (Fig. 2)."""
        packet.initial_checksums = [self.expected_at(lpn) for lpn in packet.lpns()]

    # -- verification --------------------------------------------------------------------

    def verify_cycle(
        self,
        cycle_index: int,
        completed_writes: Sequence[DataPacket],
        failed_packets: Sequence[DataPacket],
    ) -> VerificationOutcome:
        """Classify one cycle's packets after recovery.

        ``completed_writes`` are ACKed write packets (any order);
        ``failed_packets`` are requests that never completed (IO errors).
        """
        records: List[FailureRecord] = []
        ordered = sorted(completed_writes, key=lambda p: p.complete_time)

        # Build per-LPN write chains: [(ack_order, packet, token), ...]
        chains: Dict[int, List[Tuple[int, DataPacket, int]]] = {}
        for order, packet in enumerate(ordered):
            for lpn in packet.lpns():
                chains.setdefault(lpn, []).append(
                    (order, packet, packet.token_for(lpn))
                )

        observed_cache: Dict[int, Optional[int]] = {}

        def observe(lpn: int) -> Optional[int]:
            if lpn not in observed_cache:
                observed_cache[lpn] = self._peek(lpn)
            return observed_cache[lpn]

        pages_checked = 0
        failed_page: Dict[int, Tuple[FailureKind, int, Optional[int], int]] = {}

        for lpn, chain in chains.items():
            observed = observe(lpn)
            observed_token = TOKEN_ZERO if observed is None else observed
            pages_checked += len(chain)
            chain_tokens = [token for _, _, token in chain]
            prior = self.expected_at(lpn)
            for index, (order, packet, token) in enumerate(chain):
                if observed_token == token:
                    continue  # this write's data is present
                if observed_token in chain_tokens[index + 1 :]:
                    continue  # legitimately superseded by a later write
                # This packet's data is gone.  notApplied: the address holds
                # exactly what it held before THIS packet issued.
                prior_for_packet = chain_tokens[index - 1] if index > 0 else prior
                if observed_token == prior_for_packet and observed_token != CORRUPT_TOKEN:
                    kind = FailureKind.FWA
                else:
                    kind = FailureKind.DATA_FAILURE
                existing = failed_page.get(packet.packet_id)
                if existing is None or kind is FailureKind.DATA_FAILURE:
                    failed_page[packet.packet_id] = (
                        kind,
                        lpn,
                        observed,
                        token,
                    )

        # One record per failed packet; data failure outranks FWA.
        for packet in ordered:
            verdict = failed_page.get(packet.packet_id)
            packet.modified = verdict is None
            packet.data_failure = (
                verdict is not None and verdict[0] is FailureKind.DATA_FAILURE
            )
            if verdict is None:
                continue
            kind, lpn, observed, token = verdict
            records.append(
                FailureRecord(
                    kind=kind,
                    packet_id=packet.packet_id,
                    lpn=lpn,
                    cycle_index=cycle_index,
                    observed_token=observed,
                    expected_token=token,
                )
            )

        # IO errors: completed=0 (taxonomy case 3).
        for packet in failed_packets:
            packet.not_issued = True
            records.append(
                FailureRecord(
                    kind=FailureKind.IO_ERROR,
                    packet_id=packet.packet_id,
                    lpn=packet.address_lpn,
                    cycle_index=cycle_index,
                )
            )

        # Reconcile the ledger with observed reality so next cycle's Initial
        # Checksums are exact.
        for lpn in chains:
            observed = observed_cache[lpn]
            self._expected[lpn] = TOKEN_ZERO if observed is None else observed

        self.total_records += len(records)
        self.packets_verified += len(ordered)
        return VerificationOutcome(
            records=records,
            packets_checked=len(ordered) + len(failed_packets),
            pages_checked=pages_checked,
        )

    # -- single-request verification (§IV-A experiment) ------------------------------------

    def verify_single(self, packet: DataPacket, cycle_index: int = 0) -> Optional[FailureRecord]:
        """Verify one ACKed write in isolation; returns its failure or None."""
        outcome = self.verify_cycle(cycle_index, [packet], [])
        return outcome.records[0] if outcome.records else None
