"""The fault Scheduler (paper Fig. 1, software part).

"It determines the random time instances in which power failure will be
occurred.  It sends On/Off Commands to the hardware part ..." — the class
below draws those instants, fires the Off command through the
:class:`~repro.power.controller.PowerController` (serial -> Arduino -> ATX),
and arranges restoration after the rail has fully discharged.
"""

from __future__ import annotations

from random import Random
from typing import List, Optional

from repro.core import calibration
from repro.errors import CampaignError
from repro.power.controller import PowerController
from repro.sim.kernel import Kernel


class FaultScheduler:
    """Draws fault instants and drives the power-control chain.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> from repro.power import PowerController
    >>> from random import Random
    >>> k = Kernel()
    >>> sched = FaultScheduler(k, PowerController(k), Random(3))
    >>> delay = sched.draw_fault_delay()
    >>> calibration.CYCLE_MIN_US <= delay <= calibration.CYCLE_MAX_US
    True
    """

    def __init__(
        self,
        kernel: Kernel,
        power: PowerController,
        rng: Random,
        min_delay_us: int = calibration.CYCLE_MIN_US,
        max_delay_us: int = calibration.CYCLE_MAX_US,
    ) -> None:
        if min_delay_us <= 0 or max_delay_us < min_delay_us:
            raise CampaignError("fault window must satisfy 0 < min <= max")
        self.kernel = kernel
        self.power = power
        self.rng = rng
        self.min_delay_us = min_delay_us
        self.max_delay_us = max_delay_us
        self.injections: List[int] = []

    def draw_fault_delay(self) -> int:
        """Uniform random fault instant within the cycle window."""
        return self.rng.randint(self.min_delay_us, self.max_delay_us)

    def inject_now(self) -> int:
        """Send the Off command immediately.  Returns the injection time."""
        self.power.power_off()
        self.injections.append(self.kernel.now)
        return self.kernel.now

    def schedule_injection(self, delay_us: Optional[int] = None) -> int:
        """Arrange a fault ``delay_us`` from now (drawn if omitted).

        Returns the absolute injection time.
        """
        if delay_us is None:
            delay_us = self.draw_fault_delay()
        if delay_us < 0:
            raise CampaignError("fault delay must be non-negative")
        at = self.kernel.now + delay_us
        self.power.schedule_off(delay_us, note=lambda: self.injections.append(at))
        return at

    def schedule_restore(self, delay_us: int = calibration.RECOVERY_SETTLE_US) -> None:
        """Arrange the On command after the rail has settled."""
        self.power.schedule_on(delay_us)

    @property
    def fault_count(self) -> int:
        """Faults injected so far."""
        return len(self.injections)
