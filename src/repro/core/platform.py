"""The TestPlatform: hardware-software co-designed harness (paper Fig. 1).

One object wiring every part of the paper's platform together:

- the hardware part — independent PSU, Arduino UNO, ATX control — inside
  the :class:`~repro.host.system.HostSystem`'s power chain;
- the software part — Scheduler, IO Generator, Analyzer — as first-class
  members.

``TestPlatform`` is what examples and benches instantiate; the
:class:`~repro.core.campaign.Campaign` drives it through injection cycles.
"""

from __future__ import annotations

from typing import Optional

from repro.core.analyzer import Analyzer
from repro.core.scheduler import FaultScheduler
from repro.host.system import HostSystem
from repro.power.psu import AtxPsu
from repro.rand import RandomStreams
from repro.ssd.device import SsdConfig
from repro.workload.generator import IOGenerator
from repro.workload.spec import WorkloadSpec


class TestPlatform:
    """Fault-injection platform for one device under test.

    (The name mirrors the paper's "proposed test platform"; ``__test__``
    stops pytest from trying to collect it as a test class.)

    Example
    -------
    >>> from repro.workload import WorkloadSpec
    >>> platform = TestPlatform(WorkloadSpec(), seed=11)
    >>> platform.boot()
    >>> platform.generator.start()
    >>> platform.host.run_for_ms(100)
    >>> platform.generator.completions > 0
    True
    """

    __test__ = False  # not a pytest test class despite the Test* name

    def __init__(
        self,
        spec: WorkloadSpec,
        config: Optional[SsdConfig] = None,
        seed: int = 0,
        psu: Optional[AtxPsu] = None,
        psu_factory=None,
        max_segment_pages: int = 128,
    ) -> None:
        self.streams = RandomStreams(seed)
        kernel = None
        if psu_factory is not None:
            if psu is not None:
                raise ValueError("pass either psu or psu_factory, not both")
            from repro.sim import Kernel

            kernel = Kernel()
            psu = psu_factory(kernel)
        self.host = HostSystem(
            config=config,
            seed=seed,
            kernel=kernel,
            psu=psu,
            max_segment_pages=max_segment_pages,
        )
        self.spec = spec
        self.scheduler = FaultScheduler(
            self.host.kernel, self.host.power, self.streams.stream("faults")
        )
        self.generator = IOGenerator(self.host, spec, self.streams.fork("workload"))
        self.analyzer = Analyzer(self.host)

    # -- conveniences -------------------------------------------------------------------

    @property
    def kernel(self):
        """The simulation kernel."""
        return self.host.kernel

    @property
    def ssd(self):
        """The device under test."""
        return self.host.ssd

    def boot(self) -> None:
        """Power up and wait for the device to come READY."""
        self.host.boot()

    def describe(self) -> str:
        """One-line platform description for reports."""
        return (
            f"device={self.ssd.config.name} "
            f"workload=[{self.spec.describe()}]"
        )
