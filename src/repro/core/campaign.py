"""Campaign runner: thousands of injection cycles.

One *cycle* reproduces the paper's experimental loop:

1. traffic runs against the READY device;
2. at a Scheduler-drawn random instant the Off command fires — the rail
   begins its discharge, the device detaches at 4.5 V (~40 ms), internals
   brown out (~120 ms), the rail settles (~900 ms);
3. power is restored; the device boots and runs FTL recovery;
4. the Analyzer reads back every address the cycle's ACKed writes touched
   and classifies failures (data failure / FWA / IO error);
5. ledgers reset and the next cycle begins.

Per-fault statistics depend on the traffic running longer than the map
journal's commit interval before the fault (steady-state stranded-update
population), which is why ``calibration.CYCLE_MIN_US`` exceeds the interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import calibration
from repro.core.analyzer import FailureKind
from repro.core.platform import TestPlatform
from repro.core.results import CampaignResult, FaultCycleResult
from repro.errors import CampaignError
from repro.units import MSEC, SEC


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of a campaign.

    ``faults`` is the number of injection cycles; the fault instant within
    each cycle is drawn uniformly from the Scheduler's window.
    """

    faults: int = 20
    settle_us: int = calibration.RECOVERY_SETTLE_US
    ready_timeout_us: int = 10 * SEC
    warmup_us: int = 200 * MSEC

    def __post_init__(self) -> None:
        if self.faults <= 0:
            raise CampaignError("campaign needs at least one fault")
        if self.settle_us < 0 or self.warmup_us < 0:
            raise CampaignError("negative campaign timing")


class Campaign:
    """Runs injection cycles against a :class:`TestPlatform`.

    Example
    -------
    See ``examples/quickstart.py`` and the benches; minimal use::

        platform = TestPlatform(WorkloadSpec(), seed=3)
        result = Campaign(platform, CampaignConfig(faults=5)).run()
        print(result.summary())
    """

    def __init__(self, platform: TestPlatform, config: Optional[CampaignConfig] = None) -> None:
        self.platform = platform
        self.config = config or CampaignConfig()
        self._traffic_time = 0

    def run(self, label: Optional[str] = None) -> CampaignResult:
        """Execute the full campaign and return aggregated results."""
        platform = self.platform
        host = platform.host
        result = CampaignResult(label=label or platform.describe())
        platform.boot()
        self._traffic_time = 0
        for cycle_index in range(self.config.faults):
            result.add_cycle(self._run_cycle(cycle_index))
        result.requests_issued = platform.generator.issued
        result.traffic_time_us = self._traffic_time
        return result

    # -- one injection cycle --------------------------------------------------------------

    def _run_cycle(self, cycle_index: int) -> FaultCycleResult:
        platform = self.platform
        host = platform.host
        generator = platform.generator
        scheduler = platform.scheduler

        # 1. Traffic.
        traffic_start = host.kernel.now
        generator.start()
        fault_delay = scheduler.draw_fault_delay()
        host.run_for(fault_delay)

        # 2. Fault injection and full discharge.
        fault_time = scheduler.inject_now()
        host.wait_until_dead()
        generator.stop()
        host.run_for(self.config.settle_us)

        # 3. Restore and recover.
        host.restore_power()
        host.wait_until_ready(self.config.ready_timeout_us)

        # 4. Verification.
        writes, reads, failed = generator.drain_ledgers()
        # Packets still in flight at the fault never completed: IO errors in
        # the btt sense (completed=0), unless they were never submitted.
        inflight = list(generator.packets.values())
        generator.packets.clear()
        outcome = platform.analyzer.verify_cycle(cycle_index, writes, list(failed) + inflight)

        # 5. Housekeeping for the next cycle.
        host.block.flush_queue_as_errors()
        host.tracer.reset()
        damage = host.ssd.last_damage

        cycle = FaultCycleResult(
            cycle_index=cycle_index,
            fault_time_us=fault_time,
            requests_completed=len(writes) + len(reads),
            writes_completed=len(writes),
            reads_completed=len(reads),
            data_failures=outcome.count(FailureKind.DATA_FAILURE),
            fwa_failures=outcome.count(FailureKind.FWA),
            io_errors=outcome.count(FailureKind.IO_ERROR),
            stranded_map_updates=damage.stranded_map_updates if damage else 0,
            dirty_pages_lost=damage.dirty_pages_lost if damage else 0,
            collateral_pages=damage.collateral_pages_corrupted if damage else 0,
            supercap_pages_saved=damage.supercap_pages_saved if damage else 0,
        )
        self._accumulate_traffic_time(fault_time - traffic_start)
        return cycle

    def _accumulate_traffic_time(self, duration_us: int) -> None:
        self._traffic_time += max(0, duration_us)
