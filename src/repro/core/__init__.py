"""The test platform — the paper's primary contribution.

Maps one-to-one onto Fig. 1 of the paper:

- :class:`~repro.core.scheduler.FaultScheduler` — "determines the random
  time instances in which power failure will be occurred" and sends On/Off
  commands down the hardware chain;
- :class:`~repro.workload.generator.IOGenerator` — produces the data-packet
  traffic (lives in :mod:`repro.workload`);
- :class:`~repro.core.analyzer.Analyzer` — checksum comparison and the
  §III-B failure taxonomy (data failure / FWA / IO error);
- :class:`~repro.core.platform.TestPlatform` — the HW/SW co-designed
  harness tying scheduler, generator, analyzer, and the device together;
- :class:`~repro.core.campaign.Campaign` — thousands of injection cycles
  with power restoration, recovery, and verification;
- :mod:`repro.core.calibration` — every constant fitted to a measurement
  the paper reports, with the paper anchor cited.
"""

from repro.core.analyzer import Analyzer, FailureKind, FailureRecord
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.fleet import merge_by_model, plan_fleet, rank_by_loss, run_fleet
from repro.core.ledger_io import check_ledger, load_ledger, save_ledger
from repro.core.platform import TestPlatform
from repro.core.results import CampaignResult, FaultCycleResult
from repro.core.scheduler import FaultScheduler

__all__ = [
    "Analyzer",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "FailureKind",
    "FailureRecord",
    "FaultCycleResult",
    "FaultScheduler",
    "TestPlatform",
    "check_ledger",
    "load_ledger",
    "merge_by_model",
    "plan_fleet",
    "rank_by_loss",
    "run_fleet",
    "save_ledger",
]
