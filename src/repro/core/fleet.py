"""Multi-device campaign fleets.

The paper's population is six drives; campaigns across device zoos are a
recurring need (Table I regeneration, vendor comparisons, A/B firmware
studies).  ``run_fleet`` runs one identical workload campaign per device
config with disjoint seeds, and ``merge_by_model`` folds per-unit results
into per-model aggregates (the paper reports per model, two units each).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.platform import TestPlatform
from repro.core.results import CampaignResult
from repro.errors import CampaignError
from repro.ssd.device import SsdConfig
from repro.workload.spec import WorkloadSpec


def run_fleet(
    configs: Dict[str, SsdConfig],
    spec: WorkloadSpec,
    faults: int,
    base_seed: int = 0,
    campaign_config: Optional[CampaignConfig] = None,
    progress: Optional[Callable[[str, CampaignResult], None]] = None,
) -> Dict[str, CampaignResult]:
    """One campaign per device, identical workload, disjoint seeds.

    ``progress`` (if given) is invoked after each device finishes — examples
    use it for console feedback on long fleets.
    """
    if not configs:
        raise CampaignError("fleet needs at least one device")
    if faults <= 0:
        raise CampaignError("fleet needs a positive fault budget")
    results: Dict[str, CampaignResult] = {}
    for index, (name, config) in enumerate(sorted(configs.items())):
        platform = TestPlatform(spec, config=config, seed=base_seed + index * 101)
        campaign = Campaign(
            platform, campaign_config or CampaignConfig(faults=faults)
        )
        result = campaign.run(name)
        results[name] = result
        if progress is not None:
            progress(name, result)
    return results


def merge_by_model(results: Dict[str, CampaignResult]) -> Dict[str, CampaignResult]:
    """Fold unit results (``model#N`` keys) into per-model aggregates.

    Keys without a ``#`` are passed through unchanged (already per-model).
    """
    merged: Dict[str, CampaignResult] = {}
    for name, result in sorted(results.items()):
        model = name.split("#")[0]
        if model in merged:
            merged[model] = merged[model].merged_with(result)
            merged[model].label = model
        else:
            clone = CampaignResult(label=model)
            clone.cycles = list(result.cycles)
            clone.traffic_time_us = result.traffic_time_us
            clone.requests_issued = result.requests_issued
            merged[model] = clone
    return merged


def rank_by_loss(results: Dict[str, CampaignResult]) -> list:
    """Device names ordered from most to least data loss per fault."""
    return sorted(
        results, key=lambda name: results[name].data_loss_per_fault, reverse=True
    )
