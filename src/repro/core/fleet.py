"""Multi-device campaign fleets.

The paper's population is six drives; campaigns across device zoos are a
recurring need (Table I regeneration, vendor comparisons, A/B firmware
studies).  ``run_fleet`` is a thin planner over :mod:`repro.engine`: it
builds one :class:`~repro.engine.plan.CampaignPlan` per device config with
disjoint seeds and hands the whole batch to an engine executor, so a fleet
parallelises across devices (and, with ``shard_faults``, within them) by
passing ``jobs``.  ``merge_by_model`` folds per-unit results into
per-model aggregates (the paper reports per model, two units each).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.campaign import CampaignConfig
from repro.core.results import CampaignResult
from repro.errors import CampaignError
from repro.ssd.device import SsdConfig
from repro.workload.spec import WorkloadSpec

FLEET_SEED_STRIDE = 101
"""Base-seed spacing between fleet devices (legacy-compatible)."""


def plan_fleet(
    configs: Dict[str, SsdConfig],
    spec: WorkloadSpec,
    faults: int,
    base_seed: int = 0,
    campaign_config: Optional[CampaignConfig] = None,
    shard_faults: Optional[int] = None,
) -> list:
    """One :class:`CampaignPlan` per device, identical workload, disjoint seeds.

    Devices are planned in sorted-name order; device ``i`` gets base seed
    ``base_seed + i * FLEET_SEED_STRIDE``.  With ``shard_faults=None`` each
    device is a single shard, which reproduces the legacy serial fleet
    exactly while still letting a parallel executor overlap devices.
    """
    from repro.engine import CampaignPlan

    if not configs:
        raise CampaignError("fleet needs at least one device")
    if faults <= 0:
        raise CampaignError("fleet needs a positive fault budget")
    timing = {}
    if campaign_config is not None:
        # A full CampaignConfig overrides the bare fault budget, as the
        # legacy run_fleet signature did.
        faults = campaign_config.faults
        timing = {
            "settle_us": campaign_config.settle_us,
            "ready_timeout_us": campaign_config.ready_timeout_us,
            "warmup_us": campaign_config.warmup_us,
        }
    return [
        CampaignPlan(
            spec=spec,
            faults=faults,
            device=config,
            base_seed=base_seed + index * FLEET_SEED_STRIDE,
            label=name,
            shard_faults=shard_faults,
            **timing,
        )
        for index, (name, config) in enumerate(sorted(configs.items()))
    ]


def run_fleet(
    configs: Dict[str, SsdConfig],
    spec: WorkloadSpec,
    faults: int,
    base_seed: int = 0,
    campaign_config: Optional[CampaignConfig] = None,
    progress: Optional[Callable[[str, CampaignResult], None]] = None,
    jobs: Optional[int] = None,
    shard_faults: Optional[int] = None,
    executor=None,
    checkpoint=None,
    resume: bool = False,
    max_retries: Optional[int] = None,
    shard_timeout_s: Optional[float] = None,
    quarantine: bool = False,
    engine_progress=None,
    listen: Optional[str] = None,
    lease_timeout_s: Optional[float] = None,
) -> Dict[str, CampaignResult]:
    """One campaign per device through the execution engine.

    ``progress`` (if given) is invoked as each device's plan finishes —
    examples use it for console feedback on long fleets.
    ``engine_progress`` is the engine's per-shard telemetry hook
    (:data:`repro.engine.ProgressHook` — e.g. a ``ConsoleProgress`` or a
    ``TraceWriter``), distinct from the per-device ``progress`` callback.
    ``jobs > 1`` executes the fleet's shards on a process pool; results
    are identical to ``jobs=1`` because the plans (and their shard seeds)
    don't depend on the executor.

    Fault tolerance: ``checkpoint``/``resume`` journal the whole fleet in
    one write-ahead file (records are keyed per plan, so a resumed fleet
    skips exactly the devices/shards that already committed);
    ``max_retries``/``shard_timeout_s``/``quarantine`` configure the shard
    supervisor — with quarantine on, a poisoned shard degrades one
    device's result (see ``result.execution``) instead of killing the
    whole fleet.

    ``listen="HOST:PORT"`` serves the fleet's shards to ``repro worker``
    processes over TCP instead of executing locally (``jobs`` is then
    ignored); ``lease_timeout_s`` bounds how long a silent worker keeps a
    shard before it is requeued.  Merged results are identical either way.
    """
    from repro.engine import run_plans

    plans = plan_fleet(
        configs,
        spec,
        faults,
        base_seed=base_seed,
        campaign_config=campaign_config,
        shard_faults=shard_faults,
    )
    results: Dict[str, CampaignResult] = {}

    def _plan_done(plan_index: int, result: CampaignResult) -> None:
        name = plans[plan_index].label
        results[name] = result
        if progress is not None:
            progress(name, result)

    run_plans(
        plans,
        executor=executor,
        jobs=jobs,
        progress=engine_progress,
        on_plan_done=_plan_done,
        checkpoint=checkpoint,
        resume=resume,
        max_retries=max_retries,
        shard_timeout_s=shard_timeout_s,
        quarantine=quarantine,
        listen=listen,
        lease_timeout_s=lease_timeout_s,
    )
    return {plan.label: results[plan.label] for plan in plans}


def merge_by_model(results: Dict[str, CampaignResult]) -> Dict[str, CampaignResult]:
    """Fold unit results (``model#N`` keys) into per-model aggregates.

    Keys without a ``#`` are passed through unchanged (already per-model).
    """
    merged: Dict[str, CampaignResult] = {}
    for name, result in sorted(results.items()):
        model = name.split("#")[0]
        if model in merged:
            merged[model] = merged[model].merged_with(result)
            merged[model].label = model
        else:
            merged[model] = result.clone(label=model)
    return merged


def rank_by_loss(results: Dict[str, CampaignResult]) -> list:
    """Device names ordered from most to least data loss per fault."""
    return sorted(
        results, key=lambda name: results[name].data_loss_per_fault, reverse=True
    )
