"""The kernel block layer between applications and the device.

Responsibilities modelled:

- **splitting**: requests larger than ``max_segment_pages`` fan out into
  multiple device commands (sub-requests); the parent completes when every
  child does, and fails if any child fails;
- **queueing**: at most ``queue_depth`` commands are outstanding on the
  device (NCQ); excess requests wait in a FIFO dispatch queue;
- **tracing**: every lifecycle step emits a blktrace-style event through an
  attached :class:`~repro.trace.blktrace.BlockTracer`;
- **timeout**: requests stuck longer than ``timeout_us`` (the paper sets
  30 s) complete with IO error, like the kernel's request timeout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional
from collections import deque

from repro.errors import ConfigurationError, ProtocolError
from repro.sim.kernel import Event, Kernel
from repro.ssd.command import CommandStatus, IoCommand
from repro.ssd.device import SsdDevice
from repro.trace.blktrace import BlockTracer
from repro.trace.events import Action
from repro.units import SEC


class RequestState(enum.Enum):
    """Host-visible lifecycle of a block request."""

    QUEUED = "queued"
    DISPATCHED = "dispatched"
    COMPLETED = "completed"
    FAILED = "failed"
    TIMED_OUT = "timed_out"


@dataclass
class BlockRequest:
    """One application-level IO request.

    ``is_write`` requests carry ``tokens`` (one per 4 KiB page); reads get
    their tokens filled on completion.
    """

    lpn: int
    page_count: int
    is_write: bool
    tokens: List[int] = field(default_factory=list)
    on_done: Optional[Callable[["BlockRequest"], None]] = None
    request_id: int = -1
    state: RequestState = RequestState.QUEUED
    queue_time: int = -1
    dispatch_time: int = -1
    complete_time: int = -1
    children: List[IoCommand] = field(default_factory=list)
    _pending_children: int = 0

    def __post_init__(self) -> None:
        if self.page_count <= 0:
            raise ProtocolError("zero-length block request")
        if self.lpn < 0:
            raise ProtocolError("negative LPN")
        if self.is_write and len(self.tokens) != self.page_count:
            raise ProtocolError("write request needs one token per page")

    @property
    def bytes(self) -> int:
        """Request payload size."""
        return self.page_count * 4096

    @property
    def done(self) -> bool:
        """True in any terminal state."""
        return self.state in (
            RequestState.COMPLETED,
            RequestState.FAILED,
            RequestState.TIMED_OUT,
        )

    @property
    def ok(self) -> bool:
        """True when the request completed successfully."""
        return self.state is RequestState.COMPLETED

    @property
    def latency_us(self) -> Optional[int]:
        """Queue-to-completion latency for finished requests."""
        if self.complete_time < 0:
            return None
        return self.complete_time - self.queue_time


class BlockLayer:
    """Splits, queues, dispatches, traces, and times out block requests.

    Example
    -------
    See ``tests/test_host_block_layer.py`` for full scenarios; minimal use::

        layer = BlockLayer(kernel, device, tracer)
        req = BlockRequest(lpn=0, page_count=2, is_write=True, tokens=[1, 2])
        layer.submit(req)
    """

    def __init__(
        self,
        kernel: Kernel,
        device: SsdDevice,
        tracer: Optional[BlockTracer] = None,
        max_segment_pages: int = 128,  # 512 KiB, the kernel's max_sectors_kb
        queue_depth: Optional[int] = None,
        timeout_us: int = 30 * SEC,  # the paper's 30 s request timeout
    ) -> None:
        if max_segment_pages <= 0:
            raise ConfigurationError("max_segment_pages must be positive")
        if timeout_us <= 0:
            raise ConfigurationError("timeout must be positive")
        self.kernel = kernel
        self.device = device
        self.tracer = tracer
        self.max_segment_pages = max_segment_pages
        self.queue_depth = queue_depth or device.config.queue_depth
        self.timeout_us = timeout_us
        self._dispatch_queue: Deque[BlockRequest] = deque()
        self._outstanding = 0
        self._pumping = False
        self._pump_again = False
        self._next_id = 1
        self._timeout_events: Dict[int, Event] = {}
        # Statistics.
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0

    # -- submission ----------------------------------------------------------------

    def submit(self, request: BlockRequest) -> BlockRequest:
        """Enter a request into the block layer (Q event)."""
        request.request_id = self._next_id
        self._next_id += 1
        request.queue_time = self.kernel.now
        request.state = RequestState.QUEUED
        self.submitted += 1
        self._trace(request, Action.QUEUE)
        self._split(request)
        self._trace(request, Action.GET_REQUEST)
        self._timeout_events[request.request_id] = self.kernel.schedule(
            self.timeout_us, self._timeout_fired, request
        )
        self._dispatch_queue.append(request)
        self._pump()
        return request

    def _split(self, request: BlockRequest) -> None:
        """Fan a request out into device-sized sub-commands (X events)."""
        offset = 0
        while offset < request.page_count:
            take = min(self.max_segment_pages, request.page_count - offset)
            if request.is_write:
                child = IoCommand.write(
                    request.lpn + offset,
                    request.tokens[offset : offset + take],
                )
            else:
                child = IoCommand.read(request.lpn + offset, take)
            child.tag = request.request_id
            child.on_complete = self._child_done(request)
            request.children.append(child)
            offset += take
        request._pending_children = len(request.children)
        if len(request.children) > 1:
            self._trace(request, Action.SPLIT)

    # -- dispatch ------------------------------------------------------------------

    def _pump(self) -> None:
        # device.submit can complete a command synchronously (device off),
        # which re-enters _pump through the completion callback; the guard
        # collapses that recursion into one loop.
        if self._pumping:
            self._pump_again = True
            return
        self._pumping = True
        try:
            self._pump_again = True
            while self._pump_again:
                self._pump_again = False
                self._pump_once()
        finally:
            self._pumping = False

    def _pump_once(self) -> None:
        while self._dispatch_queue and self._outstanding < self.queue_depth:
            head = self._dispatch_queue[0]
            if head.done:  # timed out while waiting
                self._dispatch_queue.popleft()
                continue
            remaining = [c for c in head.children if c.status is CommandStatus.PENDING and c.submit_time < 0]
            if not remaining:
                self._dispatch_queue.popleft()
                continue
            budget = self.queue_depth - self._outstanding
            for child in remaining[:budget]:
                self._outstanding += 1
                if head.state is RequestState.QUEUED:
                    head.state = RequestState.DISPATCHED
                    head.dispatch_time = self.kernel.now
                    self._trace(head, Action.ISSUE)
                self.device.submit(child)
            if all(
                c.submit_time >= 0 or c.status is not CommandStatus.PENDING
                for c in head.children
            ):
                self._dispatch_queue.popleft()

    def _child_done(self, request: BlockRequest) -> Callable[[IoCommand], None]:
        def on_complete(command: IoCommand) -> None:
            if command.submit_time >= 0:
                self._outstanding = max(0, self._outstanding - 1)
            request._pending_children -= 1
            if request._pending_children <= 0 and not request.done:
                self._finish(request)
            self._pump()

        return on_complete

    def _finish(self, request: BlockRequest) -> None:
        request.complete_time = self.kernel.now
        failed = any(c.status is not CommandStatus.OK for c in request.children)
        if failed:
            request.state = RequestState.FAILED
            self.failed += 1
            self._trace(request, Action.COMPLETE_ERROR)
        else:
            request.state = RequestState.COMPLETED
            self.completed += 1
            if not request.is_write:
                request.tokens = [
                    token for child in request.children for token in child.tokens
                ]
            self._trace(request, Action.COMPLETE)
        timeout = self._timeout_events.pop(request.request_id, None)
        if timeout is not None:
            timeout.cancel()
        if request.on_done is not None:
            request.on_done(request)

    def _timeout_fired(self, request: BlockRequest) -> None:
        self._timeout_events.pop(request.request_id, None)
        if request.done:
            return
        request.state = RequestState.TIMED_OUT
        request.complete_time = self.kernel.now
        self.timed_out += 1
        self._trace(request, Action.COMPLETE_ERROR)
        if request.on_done is not None:
            request.on_done(request)

    # -- power-fault housekeeping -----------------------------------------------------

    def flush_queue_as_errors(self) -> int:
        """Fail everything still queued (used between fault cycles).

        Device-side commands already got IO errors at detach; this clears
        host-side requests that never dispatched.  Returns how many failed.
        """
        count = 0
        while self._dispatch_queue:
            request = self._dispatch_queue.popleft()
            if request.done:
                continue
            request.state = RequestState.FAILED
            request.complete_time = self.kernel.now
            self.failed += 1
            self._trace(request, Action.COMPLETE_ERROR)
            timeout = self._timeout_events.pop(request.request_id, None)
            if timeout is not None:
                timeout.cancel()
            if request.on_done is not None:
                request.on_done(request)
            count += 1
        self._outstanding = 0
        return count

    @property
    def backlog(self) -> int:
        """Requests waiting to dispatch."""
        return len(self._dispatch_queue)

    # -- tracing --------------------------------------------------------------------

    def _trace(self, request: BlockRequest, action: Action) -> None:
        if self.tracer is not None:
            self.tracer.record(
                action=action,
                request_id=request.request_id,
                lpn=request.lpn,
                page_count=request.page_count,
                is_write=request.is_write,
            )
