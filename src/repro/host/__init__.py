"""Host-side substrate: block layer and host system facade.

Mirrors the pieces of the paper's Host System the experiments depend on:

- the **block layer** splits large host requests into device-sized
  sub-requests (the paper modified ``btt`` precisely because "large size
  requests ... are divided to more than one request in the device block
  layer"), enforces the device queue depth, and emits blktrace-style events
  for every lifecycle step;
- the **host system** bundles kernel + PSU + device + block layer and is
  what the test platform drives.

Public surface: :class:`~repro.host.block_layer.BlockLayer`,
:class:`~repro.host.block_layer.BlockRequest`,
:class:`~repro.host.system.HostSystem`.
"""

from repro.host.block_layer import BlockLayer, BlockRequest, RequestState
from repro.host.system import HostSystem

__all__ = ["BlockLayer", "BlockRequest", "HostSystem", "RequestState"]
