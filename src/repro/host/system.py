"""The Host System facade.

One object bundling everything the paper's Fig. 1 draws on the host side:
the simulation kernel, the power-control chain (Scheduler's actuator), the
device under test, the block layer, and the tracing toolchain.  The test
platform (:mod:`repro.core.platform`) builds on this; examples use it
directly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError
from repro.host.block_layer import BlockLayer, BlockRequest
from repro.power.controller import PowerController
from repro.power.psu import AtxPsu
from repro.rand import RandomStreams
from repro.sim import Kernel
from repro.ssd.device import SsdConfig, SsdDevice
from repro.trace.blktrace import BlockTracer
from repro.trace.btt import Btt
from repro.units import MSEC, SEC


class HostSystem:
    """Kernel + PSU chain + SSD + block layer + tracer, ready to run.

    Example
    -------
    >>> host = HostSystem(seed=7)
    >>> host.boot()
    >>> req = host.write(lpn=0, tokens=[11, 22])
    >>> host.run_for_ms(50)
    >>> req.ok
    True
    """

    def __init__(
        self,
        config: Optional[SsdConfig] = None,
        seed: int = 0,
        kernel: Optional[Kernel] = None,
        psu: Optional[AtxPsu] = None,
        max_segment_pages: int = 128,
    ) -> None:
        self.kernel = kernel if kernel is not None else Kernel()
        self.streams = RandomStreams(seed)
        self.power = PowerController(self.kernel, psu)
        self.tracer = BlockTracer(self.kernel)
        self.config = config if config is not None else SsdConfig()
        self.ssd = SsdDevice(
            self.kernel, self.config, self.power.psu, self.streams.fork("device")
        )
        self.block = BlockLayer(
            self.kernel, self.ssd, self.tracer, max_segment_pages=max_segment_pages
        )
        self.btt = Btt(self.tracer)

    # -- lifecycle -------------------------------------------------------------------

    def boot(self, timeout_us: int = 5 * SEC) -> None:
        """Power the PSU on and wait for the device to reach READY."""
        self.power.power_on()
        deadline = self.kernel.now + timeout_us
        while not self.ssd.is_ready:
            if self.kernel.now >= deadline:
                raise SimulationError("device failed to become ready")
            next_time = self.kernel.next_event_time()
            if next_time is None:
                raise SimulationError("simulation went idle before device ready")
            self.kernel.run(until=min(next_time, deadline))

    def run_for(self, duration_us: int) -> None:
        """Advance simulated time."""
        self.kernel.run(until=self.kernel.now + duration_us)

    def run_for_ms(self, milliseconds: float) -> None:
        """Advance simulated time (milliseconds convenience)."""
        self.run_for(round(milliseconds * MSEC))

    # -- convenience IO ----------------------------------------------------------------

    def write(self, lpn: int, tokens: List[int], on_done=None) -> BlockRequest:
        """Submit a write request."""
        request = BlockRequest(
            lpn=lpn,
            page_count=len(tokens),
            is_write=True,
            tokens=list(tokens),
            on_done=on_done,
        )
        return self.block.submit(request)

    def read(self, lpn: int, page_count: int, on_done=None) -> BlockRequest:
        """Submit a read request."""
        request = BlockRequest(
            lpn=lpn, page_count=page_count, is_write=False, on_done=on_done
        )
        return self.block.submit(request)

    def trim(self, lpn: int, page_count: int, on_complete=None):
        """Submit a TRIM/discard command directly to the device.

        (TRIM does not go through the block layer's splitting path — range
        commands are small; the device applies them atomically.)
        """
        from repro.ssd.command import IoCommand

        command = IoCommand.trim(lpn, page_count, on_complete=on_complete)
        self.ssd.submit(command)
        return command

    # -- fault helpers -----------------------------------------------------------------

    def cut_power(self) -> None:
        """Send the Off command through the Arduino/ATX chain."""
        self.power.power_off()

    def restore_power(self) -> None:
        """Send the On command and let the rail recharge."""
        self.power.power_on()

    def wait_until_dead(self, timeout_us: int = 3 * SEC) -> None:
        """Run until the device browns out (after :meth:`cut_power`)."""
        from repro.ssd.power_state import DevicePowerState

        deadline = self.kernel.now + timeout_us
        while self.ssd.state is not DevicePowerState.DEAD:
            if self.kernel.now >= deadline:
                raise SimulationError("device never browned out")
            next_time = self.kernel.next_event_time()
            if next_time is None:
                raise SimulationError("simulation idle before brownout")
            self.kernel.run(until=min(next_time, deadline))

    def wait_until_ready(self, timeout_us: int = 5 * SEC) -> None:
        """Run until the device is READY (after :meth:`restore_power`)."""
        deadline = self.kernel.now + timeout_us
        while not self.ssd.is_ready:
            if self.kernel.now >= deadline:
                raise SimulationError("device never became ready")
            next_time = self.kernel.next_event_time()
            if next_time is None:
                raise SimulationError("simulation idle before ready")
            self.kernel.run(until=min(next_time, deadline))
