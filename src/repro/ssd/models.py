"""Device presets for the drives the paper tested (Table I) and extras.

Table I of the paper::

    SSD  Size   Interface  Cache  ECC        Bit/Cell  Year
    A    256GB  SATA       Yes    Yes        MLC       2013
    B    120GB  SATA       Yes    Yes(LDPC)  TLC       2015
    C    120GB  SATA       Yes    Yes        MLC       N/A

Two units of each model were tested (six drives total).  The paper
anonymises the vendors; we encode the architectural differences the table
exposes — capacity, cell type, ECC class, and our calibrated per-family
firmware quality (recovery-scan success), which stands in for the vendor
differences the paper attributes failures to.

Extras beyond Table I: a supercap-protected enterprise model (the paper's
§I "high-end devices employ batteries and super-capacitors") and an
HDD-like control device (no volatile ack, conservative firmware).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.cache import FlushPolicy, SupercapBackup
from repro.errors import ConfigurationError
from repro.ftl import FtlConfig
from repro.nand import CellKind, EccScheme, NandTiming
from repro.ssd.device import SsdConfig
from repro.units import GIB


def ssd_a() -> SsdConfig:
    """Table I drive A: 256 GB, MLC, BCH-class ECC, 2013."""
    return SsdConfig(
        name="ssd-a",
        capacity_bytes=256 * GIB,
        cell=CellKind.MLC,
        ecc=EccScheme.bch(),
        release_year=2013,
        ftl=FtlConfig(page_recovery_prob=0.985, extent_recovery_prob=0.962),
    )


def ssd_b() -> SsdConfig:
    """Table I drive B: 120 GB, TLC with LDPC, 2015.

    TLC brings slower programs, three paired pages per wordline, and a much
    higher raw bit-error rate; the LDPC budget claws back most of the
    marginal-program damage.
    """
    return SsdConfig(
        name="ssd-b",
        capacity_bytes=120 * GIB,
        cell=CellKind.TLC,
        ecc=EccScheme.ldpc(),
        release_year=2015,
        ftl=FtlConfig(page_recovery_prob=0.988, extent_recovery_prob=0.968),
    )


def ssd_c() -> SsdConfig:
    """Table I drive C: 120 GB, MLC, BCH-class ECC, release year unknown.

    Modelled as a budget part: same cell/ECC class as A but a weaker
    recovery scan — the firmware-quality spread Zheng et al. observed
    between vendors.
    """
    return SsdConfig(
        name="ssd-c",
        capacity_bytes=120 * GIB,
        cell=CellKind.MLC,
        ecc=EccScheme.bch(),
        release_year=None,
        ftl=FtlConfig(page_recovery_prob=0.970, extent_recovery_prob=0.930),
    )


def ssd_enterprise_supercap() -> SsdConfig:
    """Extension: an enterprise drive with power-loss protection capacitors."""
    base = ssd_a()
    return replace(
        base,
        name="ssd-enterprise-plp",
        supercap=SupercapBackup(),
        ftl=FtlConfig(page_recovery_prob=0.999, extent_recovery_prob=0.998),
    )


def ssd_cache_disabled(base: SsdConfig) -> SsdConfig:
    """Variant of ``base`` with the volatile write cache disabled.

    Reproduces the paper's cache-off experiments (§IV-A, §IV-E): writes are
    acknowledged only after the pages are durable (write-through), yet
    failures persist because the mapping table is still volatile and
    programs still land on a sagging rail.
    """
    return replace(
        base,
        name=f"{base.name}-nocache",
        cache_enabled=False,
        flush=replace(base.flush, write_through=True),
    )


def hdd_like_control() -> SsdConfig:
    """A control device approximating an HDD's power-fault envelope.

    No volatile write ack, near-perfect metadata recovery, SLC-like cell
    behaviour (no paired pages).  Useful in examples to contrast the SSD
    failure modes the paper highlights.
    """
    return SsdConfig(
        name="hdd-like-control",
        capacity_bytes=128 * GIB,
        cell=CellKind.SLC,
        ecc=EccScheme.bch(),
        cache_enabled=False,
        flush=FlushPolicy(write_through=True),
        timing=NandTiming(program_base_us=900),
        ftl=FtlConfig(page_recovery_prob=0.9995, extent_recovery_prob=0.999),
        interface_overhead_us=800,  # seek-ish command cost
    )


_REGISTRY = {
    "ssd-a": ssd_a,
    "ssd-b": ssd_b,
    "ssd-c": ssd_c,
    "ssd-enterprise-plp": ssd_enterprise_supercap,
    "hdd-like-control": hdd_like_control,
}


def by_name(name: str) -> SsdConfig:
    """Look up a preset by its registered name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown device preset {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def preset_names() -> List[str]:
    """Registered preset names."""
    return sorted(_REGISTRY)


def table_one_units() -> Dict[str, SsdConfig]:
    """The paper's experimental population: two units of each Table I model."""
    units: Dict[str, SsdConfig] = {}
    for builder in (ssd_a, ssd_b, ssd_c):
        for unit in (1, 2):
            config = builder()
            units[f"{config.name}#{unit}"] = replace(config, name=f"{config.name}#{unit}")
    return units
