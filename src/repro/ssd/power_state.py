"""Device power states and voltage thresholds.

The state ladder during a fault::

    READY --(rail < detach_volts, ~40 ms after the cut)--> DETACHED
          --(rail < brownout_volts)--------------------->  DEAD

DETACHED is the paper's "SSD becomes unavailable within the software part"
condition: the host link is gone but the controller still runs from the
sagging rail — the window in which destaged data lands marginally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import SSD_DETACH_VOLTAGE


class DevicePowerState(enum.Enum):
    """Host- and controller-level availability.

    RECOVERING is only entered when the device boots after an unclean
    shutdown *and* its config gives recovery a nonzero duration
    (``SsdConfig.recovery_time_us``); with the default of 0 the rebuild
    happens instantaneously inside INITIALIZING, as before.  A power loss
    arriving while RECOVERING has a defined transition: the pending rebuild
    is cancelled, the stranded journal entries stay untouched on media, and
    the next power-on re-enters recovery from that same on-media state.
    """

    OFF = "off"  # rail absent, nothing running
    INITIALIZING = "initializing"  # rail nominal, firmware booting
    RECOVERING = "recovering"  # rebuilding the map after an unclean shutdown
    READY = "ready"  # accepting host commands
    DETACHED = "detached"  # link lost (rail < 4.5 V), internals alive
    DEAD = "dead"  # rail below brownout floor


@dataclass(frozen=True)
class PowerThresholds:
    """Voltage levels that drive the state ladder.

    ``detach_volts`` is the paper's measured 4.5 V; ``brownout_volts`` is
    where controller logic and NAND programming cease entirely.
    """

    detach_volts: float = SSD_DETACH_VOLTAGE
    brownout_volts: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 < self.brownout_volts < self.detach_volts <= 5.0:
            raise ConfigurationError(
                "thresholds must satisfy 0 < brownout < detach <= 5.0"
            )

    def state_for_voltage(self, volts: float) -> DevicePowerState:
        """Steady-state classification of a rail voltage (ignores boot time)."""
        if volts >= self.detach_volts:
            return DevicePowerState.READY
        if volts >= self.brownout_volts:
            return DevicePowerState.DETACHED
        return DevicePowerState.DEAD
