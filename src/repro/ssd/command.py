"""Host-visible IO commands.

Commands are page-granular (the block layer converts byte/sector requests):
a write carries one data token per 4 KiB page; a read returns the tokens it
found.  ``IoCommand`` doubles as the completion record — the block layer
keeps a reference and inspects ``status`` / timing after the callback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ProtocolError


class CommandOp(enum.Enum):
    """Operation kinds the device accepts."""

    READ = "read"
    WRITE = "write"
    FLUSH = "flush"
    TRIM = "trim"


class CommandStatus(enum.Enum):
    """Terminal state of a command."""

    PENDING = "pending"
    OK = "ok"
    IO_ERROR = "io_error"


@dataclass
class IoCommand:
    """One device command.

    Attributes
    ----------
    op:
        READ / WRITE / FLUSH.
    lpn:
        First logical page (ignored for FLUSH).
    page_count:
        Pages covered (0 for FLUSH).
    tokens:
        WRITE: one data token per page.  READ: filled in on completion.
    """

    op: CommandOp
    lpn: int = 0
    page_count: int = 0
    tokens: List[int] = field(default_factory=list)
    on_complete: Optional[Callable[["IoCommand"], None]] = None
    submit_time: int = -1
    complete_time: int = -1
    status: CommandStatus = CommandStatus.PENDING
    tag: int = -1

    def __post_init__(self) -> None:
        if self.op is CommandOp.FLUSH:
            if self.page_count != 0:
                raise ProtocolError("FLUSH carries no pages")
            return
        if self.page_count <= 0:
            raise ProtocolError("zero-length IO command")
        if self.lpn < 0:
            raise ProtocolError("negative LPN")
        if self.op is CommandOp.WRITE and len(self.tokens) != self.page_count:
            raise ProtocolError("write needs one token per page")
        if self.op is CommandOp.TRIM and self.tokens:
            raise ProtocolError("TRIM carries no data")

    @property
    def bytes(self) -> int:
        """Transfer size (4 KiB logical pages)."""
        return self.page_count * 4096

    @property
    def done(self) -> bool:
        """True once the command reached a terminal status."""
        return self.status is not CommandStatus.PENDING

    @property
    def latency_us(self) -> Optional[int]:
        """Submit-to-complete latency, if the command finished."""
        if self.complete_time < 0 or self.submit_time < 0:
            return None
        return self.complete_time - self.submit_time

    @classmethod
    def write(cls, lpn: int, tokens: List[int], **kwargs) -> "IoCommand":
        """Convenience write constructor."""
        return cls(CommandOp.WRITE, lpn=lpn, page_count=len(tokens), tokens=list(tokens), **kwargs)

    @classmethod
    def read(cls, lpn: int, page_count: int, **kwargs) -> "IoCommand":
        """Convenience read constructor."""
        return cls(CommandOp.READ, lpn=lpn, page_count=page_count, **kwargs)

    @classmethod
    def flush(cls, **kwargs) -> "IoCommand":
        """Convenience flush-barrier constructor."""
        return cls(CommandOp.FLUSH, **kwargs)

    @classmethod
    def trim(cls, lpn: int, page_count: int, **kwargs) -> "IoCommand":
        """Convenience TRIM/discard constructor."""
        return cls(CommandOp.TRIM, lpn=lpn, page_count=page_count, **kwargs)
