"""SMART-style health reporting.

Real drives expose the aftermath of power faults through SMART attributes —
unsafe-shutdown counts, ECC statistics, wear. The paper's methodology notes
that vendor datasheets and device self-reporting understate power-fault
vulnerability; this module exposes the simulated device's equivalent
counters so experiments can compare *self-reported* health against the
Analyzer's ground-truth failure counts.

Attribute IDs follow common vendor conventions (12 = power cycles,
174 = unexpected power loss, 187 = reported uncorrectable, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ssd.device import SsdDevice


@dataclass(frozen=True)
class SmartAttribute:
    """One SMART attribute reading."""

    attr_id: int
    name: str
    raw_value: int

    def render(self) -> str:
        """blktrace-style fixed-width line."""
        return f"{self.attr_id:>3}  {self.name:<32} {self.raw_value}"


@dataclass(frozen=True)
class SmartLog:
    """A point-in-time SMART snapshot of one device."""

    device_name: str
    attributes: Tuple[SmartAttribute, ...]

    def value(self, attr_id: int) -> int:
        """Raw value of one attribute (KeyError if absent)."""
        for attribute in self.attributes:
            if attribute.attr_id == attr_id:
                return attribute.raw_value
        raise KeyError(f"no SMART attribute {attr_id}")

    def by_name(self, name: str) -> int:
        """Raw value looked up by attribute name."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute.raw_value
        raise KeyError(f"no SMART attribute {name!r}")

    def as_dict(self) -> Dict[str, int]:
        """Name -> raw value mapping."""
        return {a.name: a.raw_value for a in self.attributes}

    def render(self) -> str:
        """Multi-line smartctl-ish output."""
        lines = [f"SMART data for {self.device_name}", "ID   ATTRIBUTE                        RAW"]
        lines.extend(a.render() for a in self.attributes)
        return "\n".join(lines)


POWER_CYCLE_COUNT = 12
UNEXPECTED_POWER_LOSS = 174
UNSAFE_SHUTDOWN_COUNT = 192
REPORTED_UNCORRECTABLE = 187
PROGRAM_FAIL_COUNT = 181
ERASE_COUNT_AVG = 173
WEAR_SPREAD = 233
HOST_PAGES_WRITTEN = 241
NAND_PAGES_WRITTEN = 249
GC_PAGES_RELOCATED = 250
WRITE_AMPLIFICATION_X100 = 251
READ_RETRY_COUNT = 252


def collect_smart(device: "SsdDevice") -> SmartLog:
    """Build a SMART snapshot from the device's live counters."""
    ftl = device.ftl
    chip = device.chip
    host_pages = ftl.host_pages_written
    nand_pages = chip.programs_committed
    waf_x100 = round(100 * nand_pages / host_pages) if host_pages else 100
    total_erases = ftl.wear.total_erases()
    avg_erases = round(total_erases / chip.geometry.blocks)
    attributes = (
        SmartAttribute(POWER_CYCLE_COUNT, "Power_Cycle_Count", device.power_cycles),
        SmartAttribute(
            UNEXPECTED_POWER_LOSS, "Unexpect_Power_Loss_Ct", device.unclean_losses
        ),
        SmartAttribute(
            UNSAFE_SHUTDOWN_COUNT, "Unsafe_Shutdown_Ct", device.unsafe_shutdowns
        ),
        SmartAttribute(
            REPORTED_UNCORRECTABLE, "Reported_Uncorrect", chip.uncorrectable_reads
        ),
        SmartAttribute(
            PROGRAM_FAIL_COUNT,
            "Program_Fail_Cnt_Total",
            chip.corrupt_page_count(),
        ),
        SmartAttribute(ERASE_COUNT_AVG, "Average_Block_Erase_Ct", avg_erases),
        SmartAttribute(WEAR_SPREAD, "Erase_Count_Spread", ftl.wear.wear_spread()),
        SmartAttribute(HOST_PAGES_WRITTEN, "Host_Pages_Written", host_pages),
        SmartAttribute(NAND_PAGES_WRITTEN, "NAND_Pages_Written", nand_pages),
        SmartAttribute(GC_PAGES_RELOCATED, "GC_Pages_Relocated", ftl.gc.pages_relocated),
        SmartAttribute(
            WRITE_AMPLIFICATION_X100, "Write_Amplification_x100", waf_x100
        ),
        SmartAttribute(READ_RETRY_COUNT, "Read_Retry_Invocations", chip.read_retries),
    )
    return SmartLog(device_name=device.name, attributes=attributes)
