"""The integrated SSD device model.

See the package docstring for the power-behaviour overview.  The device runs
two internal processes while READY:

- the **dispatcher** serves host commands in FIFO order through a single
  command processor (its per-command overhead is what caps random-write
  IOPS — the saturation the paper measures in Fig. 8);
- the **flusher** destages the write cache to flash in parallel batches,
  carrying precise per-page planned commit times so that a power fault can
  be resolved page-exactly: pages whose commit instant had passed are
  durable (at whatever voltage the rail had *at that instant*), the pages
  in flight are torn mid-ISPP, the rest die with the DRAM.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.cache import FlushPolicy, SupercapBackup, WriteCache
from repro.errors import ConfigurationError, ProtocolError
from repro.ftl import Ftl, FtlConfig, RecoveryReport
from repro.ftl.ftl import WritePlan
from repro.nand import (
    CellKind,
    CorruptionModel,
    EccScheme,
    FlashChip,
    NandGeometry,
    NandTiming,
)
from repro.nand.chip import PageState
from repro.power.psu import AtxPsu
from repro.rand import RandomStreams
from repro.sim import Kernel, Process, Signal
from repro.ssd.command import CommandOp, CommandStatus, IoCommand
from repro.ssd.power_state import DevicePowerState, PowerThresholds
from repro.units import GIB, KIB, MSEC

CORRUPT_TOKEN = -1
"""Peek result for a page whose data is uncorrectable."""


@dataclass(frozen=True)
class SsdConfig:
    """Full device specification (one row of the paper's Table I).

    All component configs are immutable; build variants with
    ``dataclasses.replace``.
    """

    name: str = "generic-mlc"
    capacity_bytes: int = 128 * GIB
    cell: CellKind = CellKind.MLC
    ecc: EccScheme = EccScheme.bch()
    timing: NandTiming = NandTiming()
    corruption: CorruptionModel = CorruptionModel()
    ftl: FtlConfig = FtlConfig()
    flush: FlushPolicy = FlushPolicy()
    cache_enabled: bool = True
    cache_capacity_pages: int = 65536  # 256 MiB of 4 KiB pages
    thresholds: PowerThresholds = PowerThresholds()
    interface_overhead_us: int = 140
    link_mib_per_sec: int = 550
    queue_depth: int = 32
    current_draw_amps: float = 1.0
    init_time_us: int = 400 * MSEC
    recovery_time_us: int = 0
    supercap: Optional[SupercapBackup] = None
    release_year: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.interface_overhead_us < 0 or self.link_mib_per_sec <= 0:
            raise ConfigurationError("bad interface parameters")
        if self.queue_depth <= 0:
            raise ConfigurationError("queue depth must be positive")
        if self.cache_capacity_pages <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if not 0.0 < self.current_draw_amps < 10.0:
            raise ConfigurationError("implausible current draw")
        if self.recovery_time_us < 0:
            raise ConfigurationError("recovery time cannot be negative")

    @property
    def write_back(self) -> bool:
        """True when writes are acknowledged from DRAM."""
        return self.cache_enabled and not self.flush.write_through

    def transfer_us(self, nbytes: int) -> int:
        """Host-link transfer time for ``nbytes``."""
        return round(nbytes / (self.link_mib_per_sec * KIB * KIB) * 1_000_000)


@dataclass
class _FlushBatch:
    """Bookkeeping for one in-flight destage batch."""

    plans: List[WritePlan]
    tokens: List[List[int]]  # parallel to plans
    run_bounds: List[Tuple[int, int]]  # batch-index range per plan
    start_us: int
    page_write_us: int
    parallelism: int
    total_pages: int

    def commit_time(self, batch_index: int) -> int:
        """Planned commit instant of the batch's ``batch_index``-th page."""
        round_number = batch_index // self.parallelism
        return self.start_us + (round_number + 1) * self.page_write_us

    def committed_prefix(self, now: int) -> int:
        """Number of leading pages whose commit instant has passed."""
        full_rounds = max(0, (now - self.start_us) // self.page_write_us)
        return min(self.total_pages, full_rounds * self.parallelism)

    def started_count(self, now: int) -> int:
        """Pages whose program pulse train had begun by ``now``."""
        if now <= self.start_us:
            return 0
        rounds_started = (now - self.start_us + self.page_write_us - 1) // self.page_write_us
        return min(self.total_pages, rounds_started * self.parallelism)

    @property
    def duration_us(self) -> int:
        """Wall time of the whole batch."""
        rounds = -(-self.total_pages // self.parallelism)
        return rounds * self.page_write_us


@dataclass
class PowerFaultDamage:
    """Per-fault internal damage summary (forensics / tests)."""

    dirty_pages_lost: int = 0
    inflight_pages_torn: int = 0
    inflight_pages_corrupted: int = 0
    collateral_pages_corrupted: int = 0
    stranded_map_updates: int = 0
    commands_errored: int = 0
    supercap_pages_saved: int = 0


class SsdDevice:
    """A complete SSD wired to a PSU rail.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> from repro.power import AtxPsu
    >>> k = Kernel()
    >>> psu = AtxPsu(k); psu.mains_on()
    >>> ssd = SsdDevice(k, SsdConfig(), psu, RandomStreams(1))
    >>> psu.set_ps_on(True); k.run()
    >>> ssd.state
    <DevicePowerState.READY: 'ready'>
    """

    def __init__(
        self,
        kernel: Kernel,
        config: SsdConfig,
        psu: AtxPsu,
        streams: RandomStreams,
        name: str = "",
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.psu = psu
        self.name = name or config.name
        self.streams = streams
        geometry = NandGeometry.for_capacity(config.capacity_bytes)
        self._backup_power = False  # supercap holding the internals up
        self.chip = FlashChip(
            kernel,
            geometry,
            cell=config.cell,
            timing=config.timing,
            ecc=config.ecc,
            corruption=config.corruption,
            rng=streams.stream("nand"),
            voltage_source=self._internal_volts_now,
        )
        self.ftl = Ftl(kernel, self.chip, config.ftl, streams.stream("ftl"))
        self.cache = WriteCache(config.cache_capacity_pages)
        self.parallelism = geometry.planes
        self.page_write_us = config.timing.page_write_us(config.cell, geometry.page_size)
        self.page_read_us = config.timing.page_read_us(geometry.page_size)

        self.state = DevicePowerState.OFF
        self._unclean_shutdown = False
        self._clean_shutdown_armed = False
        self._queue: Deque[IoCommand] = deque()
        self._current_cmd: Optional[IoCommand] = None
        self._arrival = Signal(kernel, f"{self.name}.arrival")
        self._dirty = Signal(kernel, f"{self.name}.dirty")
        self._drain = Signal(kernel, f"{self.name}.drain")
        self.ready_signal = Signal(kernel, f"{self.name}.ready")
        self._dispatcher: Optional[Process] = None
        self._flusher: Optional[Process] = None
        self._active_batch: Optional[_FlushBatch] = None
        self._init_event = None
        self._recovery_event = None
        self.last_recovery: Optional[RecoveryReport] = None
        self.last_damage: Optional[PowerFaultDamage] = None

        # Statistics.
        self.commands_ok = 0
        self.commands_errored = 0
        self.reads_ok = 0
        self.writes_ok = 0
        self.power_cycles = 0
        self.unclean_losses = 0
        self.unsafe_shutdowns = 0
        self.recovery_interruptions = 0

        psu.attach_load(self)
        thresholds = config.thresholds
        psu.watch_threshold(
            thresholds.detach_volts, self._on_detach, on_rising=self._on_rail_up
        )
        psu.watch_threshold(thresholds.brownout_volts, self._on_brownout)

    # -- internal rail -----------------------------------------------------------

    def _internal_volts_now(self) -> float:
        """Voltage the controller/NAND actually see right now.

        A PLP (supercap) drive switches to its capacitor bank the moment the
        external rail sags below the detach threshold, so its internals keep
        seeing nominal voltage; everything else rides the PSU waveform.
        """
        if self._backup_power:
            return 5.0
        return self.psu.voltage()

    def _internal_volts_at(self, time_us: int) -> float:
        """Voltage the internals saw at a (past) commit instant."""
        if self._backup_power:
            return 5.0
        return self.psu.voltage_at(time_us)

    # -- PSU load protocol ---------------------------------------------------------

    def current_draw_amps(self) -> float:
        """Load presented to the 5 V rail."""
        if self.state in (DevicePowerState.OFF, DevicePowerState.DEAD):
            return 0.02  # leakage only
        return self.config.current_draw_amps

    # -- host interface ---------------------------------------------------------------

    def submit(self, command: IoCommand) -> None:
        """Queue a command; completion is reported via ``command.on_complete``.

        Commands submitted while the device is not READY fail immediately
        with IO_ERROR — the host-visible unavailability the paper measures.
        """
        command.submit_time = self.kernel.now
        self._clean_shutdown_armed = False  # new work voids a shutdown notification
        if self.state is not DevicePowerState.READY:
            self._complete(command, CommandStatus.IO_ERROR)
            return
        max_pages = self.chip.geometry.total_pages
        if command.op is not CommandOp.FLUSH and command.lpn + command.page_count > max_pages:
            raise ProtocolError(
                f"command beyond device capacity ({command.lpn}+{command.page_count})"
            )
        self._queue.append(command)
        self._arrival.fire()

    @property
    def queue_length(self) -> int:
        """Commands waiting for the dispatcher (excludes the one in service)."""
        return len(self._queue)

    def arm_clean_shutdown(self) -> None:
        """Record an NVMe-style shutdown notification (CC.SHN).

        Callers must have drained volatile state first (FLUSH); the next
        power removal is then an *orderly* shutdown: it neither marks the
        device unclean nor bumps the unsafe-shutdown SMART counter.  Any
        subsequently submitted command disarms the notification.
        """
        self._clean_shutdown_armed = True

    def peek(self, lpn: int) -> Optional[int]:
        """Zero-time forensic read used by the Analyzer after recovery.

        Returns the data token visible at ``lpn``: the dirty-cache token if
        buffered, the flash token if mapped and correctable,
        :data:`CORRUPT_TOKEN` if unreadable, or None when the page reads as
        erased/unmapped.
        """
        if self.config.write_back:
            entry = self.cache.peek(lpn)
            if entry is not None:
                return entry.token
        result = self.ftl.read(lpn)
        if result.state is PageState.ERASED:
            return None
        if not result.ok:
            return CORRUPT_TOKEN
        return result.token

    # -- completion plumbing -------------------------------------------------------------

    def _complete(self, command: IoCommand, status: CommandStatus) -> None:
        if command.done:
            return
        command.status = status
        command.complete_time = self.kernel.now
        if status is CommandStatus.OK:
            self.commands_ok += 1
            if command.op is CommandOp.READ:
                self.reads_ok += 1
            elif command.op is CommandOp.WRITE:
                self.writes_ok += 1
        else:
            self.commands_errored += 1
        if command.on_complete is not None:
            command.on_complete(command)

    # -- dispatcher process -----------------------------------------------------------------

    def _dispatcher_body(self):
        config = self.config
        while True:
            if not self._queue:
                yield self._arrival
                continue
            command = self._queue.popleft()
            self._current_cmd = command
            transfer = (
                config.transfer_us(command.bytes)
                if command.op in (CommandOp.READ, CommandOp.WRITE)
                else 0
            )
            yield config.interface_overhead_us + transfer
            if command.op is CommandOp.WRITE:
                if config.write_back:
                    # Admission throttle (oversized requests admit once the
                    # cache drains — see FlushPolicy.throttled).
                    while self.config.flush.throttled(
                        self.cache.dirty_count, command.page_count
                    ):
                        self._dirty.fire()
                        yield self._drain
                    now = self.kernel.now
                    for offset in range(command.page_count):
                        self.cache.insert(
                            command.lpn + offset, command.tokens[offset], now
                        )
                    self._dirty.fire()
                    self._complete(command, CommandStatus.OK)
                else:
                    # Write-through: durable before ACK (cache disabled).
                    yield from self._write_through(command)
            elif command.op is CommandOp.READ:
                nand_pages = 0
                tokens: List[int] = []
                for offset in range(command.page_count):
                    lpn = command.lpn + offset
                    hit = (
                        self.cache.read_hit(lpn) if config.write_back else None
                    )
                    if hit is not None:
                        tokens.append(hit)
                        continue
                    nand_pages += 1
                    result = self.ftl.read(lpn)
                    if result.state is PageState.ERASED:
                        tokens.append(0)
                    elif not result.ok:
                        tokens.append(CORRUPT_TOKEN)
                    else:
                        tokens.append(result.token)
                if nand_pages:
                    rounds = -(-nand_pages // self.parallelism)
                    yield rounds * self.page_read_us
                command.tokens = tokens
                self._complete(command, CommandStatus.OK)
            elif command.op is CommandOp.TRIM:
                if config.write_back:
                    self.cache.discard(command.lpn, command.page_count)
                self.ftl.trim_range(command.lpn, command.page_count)
                self._complete(command, CommandStatus.OK)
            elif command.op is CommandOp.FLUSH:
                # A batch the flusher has already taken out of the cache
                # (dirty_count no longer sees it) records its map updates
                # only when it lands — FLUSH must wait for it, or the
                # checkpoint would miss acked data still in flight.
                while self.cache.dirty_count > 0 or self._active_batch is not None:
                    self._dirty.fire()
                    yield self._drain
                self.ftl.checkpoint()
                self._complete(command, CommandStatus.OK)
            self._current_cmd = None

    def _write_through(self, command: IoCommand):
        lpns = list(range(command.lpn, command.lpn + command.page_count))
        batch = self._build_batch([(lpn, tok) for lpn, tok in zip(lpns, command.tokens)])
        self._active_batch = batch
        yield (batch.start_us - self.kernel.now) + batch.duration_us
        self._commit_batch_full(batch)
        self._active_batch = None
        self._complete(command, CommandStatus.OK)

    # -- flusher process --------------------------------------------------------------------

    def _flusher_body(self):
        policy = self.config.flush
        while True:
            if self.cache.dirty_count == 0:
                yield self._dirty
                continue
            if self.cache.dirty_count < policy.batch_pages and policy.linger_us > 0:
                yield policy.linger_us  # small-write aggregation window
            entries = self.cache.take_batch(policy.batch_pages)
            if not entries:
                continue
            batch = self._build_batch([(e.lpn, e.token) for e in entries])
            self._active_batch = batch
            yield (batch.start_us - self.kernel.now) + batch.duration_us
            self._commit_batch_full(batch)
            self._active_batch = None
            self._drain.fire()

    def _build_batch(self, pages: List[Tuple[int, int]]) -> _FlushBatch:
        """Split a page list into contiguous runs and allocate flash for them."""
        runs: List[List[Tuple[int, int]]] = []
        for lpn, token in pages:
            if runs and runs[-1][-1][0] + 1 == lpn:
                runs[-1].append((lpn, token))
            else:
                runs.append([(lpn, token)])
        plans: List[WritePlan] = []
        tokens: List[List[int]] = []
        bounds: List[Tuple[int, int]] = []
        cursor = 0
        for run in runs:
            plan = self.ftl.prepare_write([lpn for lpn, _ in run])
            plans.append(plan)
            tokens.append([token for _, token in run])
            bounds.append((cursor, cursor + len(run)))
            cursor += len(run)
        extra_us = self.ftl.consume_background_us()
        batch = _FlushBatch(
            plans=plans,
            tokens=tokens,
            run_bounds=bounds,
            start_us=self.kernel.now + extra_us,
            page_write_us=self.page_write_us,
            parallelism=self.parallelism,
            total_pages=cursor,
        )
        return batch

    def _commit_batch_full(self, batch: _FlushBatch) -> None:
        for plan, run_tokens, (lo, hi) in zip(batch.plans, batch.tokens, batch.run_bounds):
            volts = [
                self._internal_volts_at(batch.commit_time(index))
                for index in range(lo, hi)
            ]
            self.ftl.commit_write(plan, run_tokens, volts)

    def _resolve_batch_partial(self, batch: _FlushBatch, damage: PowerFaultDamage) -> None:
        """Page-exact resolution of a batch torn by brownout."""
        now = self.kernel.now
        committed = batch.committed_prefix(now)
        started = batch.started_count(now)
        for plan, run_tokens, (lo, hi) in zip(batch.plans, batch.tokens, batch.run_bounds):
            commit_hi = max(lo, min(hi, committed))
            if commit_hi > lo:
                volts = [
                    self._internal_volts_at(batch.commit_time(index))
                    for index in range(lo, commit_hi)
                ]
                self.ftl.commit_write_slice(
                    plan, run_tokens, 0, commit_hi - lo, volts
                )
            # Pages whose pulse train had begun but not finished are torn.
            torn: List[Tuple[int, float, int]] = []
            for index in range(max(lo, committed), min(hi, started)):
                _, ppa = plan.assignments[index - lo]
                progress_base = batch.commit_time(index) - batch.page_write_us
                progress = (now - progress_base) / batch.page_write_us
                progress = min(1.0, max(0.0, progress))
                torn.append((ppa, progress, run_tokens[index - lo]))
            if torn:
                report = self.chip.apply_interruption_batch(torn)
                damage.inflight_pages_torn += len(torn)
                damage.inflight_pages_corrupted += len(report.corrupted_pages)
                damage.collateral_pages_corrupted += len(report.collateral_pages)
            # Later pages never reached the array; their data dies with DRAM.
            damage.dirty_pages_lost += max(0, hi - max(lo, started))

    # -- power-event handlers ------------------------------------------------------------------

    def _on_detach(self, volts: float) -> None:
        if self.state not in (
            DevicePowerState.READY,
            DevicePowerState.INITIALIZING,
            DevicePowerState.RECOVERING,
        ):
            return
        was_booting = self.state is not DevicePowerState.READY
        was_recovering = self.state is DevicePowerState.RECOVERING
        self.state = DevicePowerState.DETACHED
        if self._init_event is not None:
            self._init_event.cancel()
            self._init_event = None
        if self._recovery_event is not None:
            self._recovery_event.cancel()
            self._recovery_event = None
        if was_recovering:
            # Power loss *during* recovery: the rebuild never applied, so the
            # stranded journal entries stay on media untouched and the next
            # power-on re-enters recovery from exactly that state.
            self.recovery_interruptions += 1
            self.ftl.recovery.note_interrupted()
        if was_booting:
            return
        # Host side: the link is gone.  Every outstanding command errors.
        damage = PowerFaultDamage()
        if self._dispatcher is not None:
            self._dispatcher.kill()
            self._dispatcher = None
        if self._current_cmd is not None and not self._current_cmd.done:
            self._complete(self._current_cmd, CommandStatus.IO_ERROR)
            damage.commands_errored += 1
            self._current_cmd = None
        while self._queue:
            self._complete(self._queue.popleft(), CommandStatus.IO_ERROR)
            damage.commands_errored += 1
        self.last_damage = damage
        # Internals (flusher, journal timer) keep running — PLP drives hand
        # over to the capacitor bank, everything else rides the sagging rail.
        if self.config.supercap is not None:
            self._backup_power = True

    def _on_brownout(self, volts: float) -> None:
        if self.state is not DevicePowerState.DETACHED:
            return
        self.state = DevicePowerState.DEAD
        if self._clean_shutdown_armed:
            # Orderly shutdown (NVMe CC.SHN acknowledged): the cache and
            # journal were drained before the rail fell, so this power
            # removal is neither unclean nor unsafe.
            self._clean_shutdown_armed = False
            if self._flusher is not None and self._flusher.alive:
                self._flusher.kill()
            self._flusher = None
            if self._dispatcher is not None and self._dispatcher.alive:
                self._dispatcher.kill()
            self._dispatcher = None
            self._backup_power = False
            self.ftl.power_loss()
            self.chip.power_loss()
            self.last_damage = self.last_damage or PowerFaultDamage()
            return
        self.unclean_losses += 1
        self.unsafe_shutdowns += 1
        self._unclean_shutdown = True
        damage = self.last_damage or PowerFaultDamage()
        # Supercap (if fitted) destages what its energy budget allows.
        if self.config.supercap is not None:
            saved = self._supercap_destage(self.config.supercap)
            damage.supercap_pages_saved = saved
        if self._flusher is not None and self._flusher.alive:
            batch = self._active_batch
            self._flusher.kill()
            if batch is not None:
                self._resolve_batch_partial(batch, damage)
                self._active_batch = None
        self._flusher = None
        if self._dispatcher is not None and self._dispatcher.alive:
            # Write-through path may have a batch in flight too.
            batch = self._active_batch
            self._dispatcher.kill()
            if batch is not None:
                self._resolve_batch_partial(batch, damage)
                self._active_batch = None
            self._dispatcher = None
        lost = self.cache.drop_all()
        damage.dirty_pages_lost += len(lost)
        damage.stranded_map_updates = self.ftl.journal.pending_count
        self._backup_power = False  # the capacitor bank is spent
        self.ftl.power_loss()
        self.chip.power_loss()
        self.last_damage = damage

    def _supercap_destage(self, supercap: SupercapBackup) -> int:
        budget_pages = supercap.destageable_pages(self.page_write_us, self.parallelism)
        saved = 0
        while saved < budget_pages and self.cache.dirty_count > 0:
            entries = self.cache.take_batch(
                min(self.config.flush.batch_pages, budget_pages - saved)
            )
            if not entries:
                break
            batch = self._build_batch([(e.lpn, e.token) for e in entries])
            # Supercap keeps the internals at nominal voltage while it lasts.
            for plan, run_tokens, _ in zip(batch.plans, batch.tokens, batch.run_bounds):
                self.ftl.commit_write(plan, run_tokens, [5.0] * plan.page_count)
            saved += batch.total_pages
        if self.cache.dirty_count == 0:
            self.ftl.checkpoint()  # clean map on the way down
        return saved

    def _on_rail_up(self, volts: float) -> None:
        if self.state not in (DevicePowerState.OFF, DevicePowerState.DEAD, DevicePowerState.DETACHED):
            return
        self.state = DevicePowerState.INITIALIZING
        self._backup_power = False  # external rail is back
        self.power_cycles += 1
        self._init_event = self.kernel.schedule(self.config.init_time_us, self._init_done)

    def _init_done(self) -> None:
        self._init_event = None
        if self.state is not DevicePowerState.INITIALIZING:
            return
        self.chip.power_on()
        if self._unclean_shutdown and self.config.recovery_time_us > 0:
            # Recovery takes wall time: the OOB scan runs while RECOVERING
            # and its result is applied atomically at the end of the window.
            # A power loss inside the window cancels the application; the
            # stranded updates stay on media for the next attempt.
            self.state = DevicePowerState.RECOVERING
            self._recovery_event = self.kernel.schedule(
                self.config.recovery_time_us, self._recovery_done
            )
            return
        self._finish_bringup()

    def _recovery_done(self) -> None:
        self._recovery_event = None
        if self.state is not DevicePowerState.RECOVERING:
            return
        self._finish_bringup()

    def _finish_bringup(self) -> None:
        if self._unclean_shutdown:
            self.last_recovery = self.ftl.power_on_recover()
            self._unclean_shutdown = False
        else:
            self.ftl.start()
        self.state = DevicePowerState.READY
        self._queue.clear()
        self._dispatcher = Process(
            self.kernel, self._dispatcher_body(), name=f"{self.name}.dispatcher"
        )
        self._flusher = Process(
            self.kernel, self._flusher_body(), name=f"{self.name}.flusher"
        )
        self.ready_signal.fire()

    # -- introspection -------------------------------------------------------------------------

    @property
    def is_ready(self) -> bool:
        """True while the device accepts host commands."""
        return self.state is DevicePowerState.READY

    def smart_log(self):
        """SMART-style health snapshot (see :mod:`repro.ssd.smart`)."""
        from repro.ssd.smart import collect_smart

        return collect_smart(self)

    def stats(self) -> Dict:
        """Counters snapshot."""
        return {
            "state": self.state.value,
            "commands_ok": self.commands_ok,
            "commands_errored": self.commands_errored,
            "reads_ok": self.reads_ok,
            "writes_ok": self.writes_ok,
            "power_cycles": self.power_cycles,
            "unclean_losses": self.unclean_losses,
            "unsafe_shutdowns": self.unsafe_shutdowns,
            "recovery_interruptions": self.recovery_interruptions,
            "cache_dirty": self.cache.dirty_count,
            "ftl": self.ftl.stats(),
        }
