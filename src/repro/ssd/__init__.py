"""The device under test: a complete SATA SSD model.

Ties the substrates together — NAND array (:mod:`repro.nand`), FTL
(:mod:`repro.ftl`), volatile write cache (:mod:`repro.cache`) — behind a
host-visible command interface with realistic power behaviour:

- the device drops off the bus when its rail crosses **4.5 V** (the paper's
  measured detach threshold, Fig. 4b) — host-side, every outstanding and
  subsequent command fails (*IO error*);
- the controller keeps operating internally down to the **brownout floor**,
  so the flusher destages cache content *onto a sagging rail* during the
  PSU discharge window — programs committed there are marginal;
- at brownout, in-flight programs are torn, the DRAM cache evaporates, and
  the volatile map strands its unjournaled updates.

Public surface: :class:`~repro.ssd.device.SsdDevice`,
:class:`~repro.ssd.device.SsdConfig`, :class:`~repro.ssd.command.IoCommand`,
:class:`~repro.ssd.models` (Table I presets).
"""

from repro.ssd.command import CommandStatus, IoCommand
from repro.ssd.device import SsdConfig, SsdDevice
from repro.ssd.power_state import DevicePowerState, PowerThresholds

__all__ = [
    "CommandStatus",
    "DevicePowerState",
    "IoCommand",
    "PowerThresholds",
    "SsdConfig",
    "SsdDevice",
]
