"""Append-only command log for the dirty-power-cycle harness.

Every NVMe submission and completion of a stress run is appended to a
JSONL log with the same crash-consistency discipline the engine's shard
checkpoint journal applies to itself (:mod:`repro.engine.checkpoint`):

- **append-only**: records are only ever appended, never rewritten;
- **per-record CRC**: each line carries a CRC32 over its canonical JSON
  payload, so torn or bit-flipped records are detected on replay;
- **fsync on the records that matter**: cycle markers (power fault,
  power on, verified) are fsync'd immediately, bulk IO records are
  fsync'd every ``fsync_every`` appends and at close;
- **torn-tail-tolerant replay**: a damaged *final* line (crash
  mid-append) is dropped silently; damage anywhere before the tail raises
  :class:`~repro.errors.CmdlogError`;
- **duplicate-record idempotence**: replay drops exact re-appends (same
  kind/cycle/cid identity), so a shard re-run that appends the same
  deterministic records again cannot double-count an acknowledgement.

After each power-on the harness replays this log, re-reads every
acknowledged LBA through the Analyzer, and classifies each acked write
**intact / flying-write-ACK (FWA) / data-loss / IO-error** — the
failure-classification the paper's blktrace pipeline cannot see, because
only the command log knows exactly which writes were acknowledged before
the rail fell.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

from repro.core.analyzer import Analyzer, FailureKind, VerificationOutcome
from repro.errors import CmdlogError
from repro.nvme.command import NvmeCommand, NvmeCompletion, NvmeOpcode
from repro.workload.packet import DataPacket

PathLike = Union[str, Path]

CMDLOG_VERSION = 1

_WRITE_OPS = ("write", "write_zeroes")


# -- line codec ---------------------------------------------------------------------


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_record(payload: Dict) -> str:
    """Canonical JSON line with an appended CRC32 field.

    ``crc`` is the codec's own reserved field: a payload carrying one
    would be silently clobbered on encode and then fail its checksum on
    decode, so it is rejected loudly here instead.
    """
    if "crc" in payload:
        raise CmdlogError("payload key 'crc' is reserved for the line codec")
    crc = zlib.crc32(_canonical(payload).encode("utf-8"))
    record = dict(payload)
    record["crc"] = crc
    return _canonical(record)


def decode_record(line: str) -> Dict:
    """Parse + checksum-verify one log line (raises on any damage)."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise CmdlogError(f"unparseable command-log line: {exc}") from exc
    if not isinstance(record, dict):
        raise CmdlogError("command-log line is not an object")
    crc = record.pop("crc", None)
    if crc != zlib.crc32(_canonical(record).encode("utf-8")):
        raise CmdlogError("command-log record checksum mismatch")
    return record


def record_identity(record: Dict) -> Tuple:
    """The idempotence key: re-appends of the same fact collapse on replay."""
    kind = record.get("kind")
    if kind == "mark":
        return (kind, record.get("cycle"), record.get("event"))
    return (kind, record.get("cycle"), record.get("cid"))


# -- replay -------------------------------------------------------------------------


@dataclass
class ReplayedLog:
    """Everything one replay pass recovered."""

    records: List[Dict] = field(default_factory=list)
    dropped_tail: bool = False
    duplicates_dropped: int = 0

    def for_cycle(self, cycle_index: int) -> List[Dict]:
        """Records belonging to one fault cycle."""
        return [r for r in self.records if r.get("cycle") == cycle_index]


def dedupe_records(records: Sequence[Dict]) -> Tuple[List[Dict], int]:
    """Drop exact duplicate facts (first occurrence wins)."""
    seen = set()
    unique: List[Dict] = []
    duplicates = 0
    for record in records:
        key = record_identity(record)
        if key in seen:
            duplicates += 1
            continue
        seen.add(key)
        unique.append(record)
    return unique, duplicates


def replay_cmdlog(path: PathLike) -> ReplayedLog:
    """Torn-tail-tolerant, duplicate-idempotent read of one command log.

    A corrupt or truncated final line is discarded (crash mid-append);
    corruption before the tail raises :class:`CmdlogError` because the
    file was damaged, not torn.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    records: List[Dict] = []
    dropped_tail = False
    for index, line in enumerate(lines):
        if not line.strip():
            raise CmdlogError(f"blank line {index + 1} inside command log")
        try:
            records.append(decode_record(line))
        except CmdlogError:
            if index == len(lines) - 1:
                dropped_tail = True
                break
            raise
    unique, duplicates = dedupe_records(records)
    return ReplayedLog(
        records=unique, dropped_tail=dropped_tail, duplicates_dropped=duplicates
    )


# -- writer -------------------------------------------------------------------------


class CommandLog:
    """Append side of the command log (one stress shard, one writer).

    With ``path=None`` the log is memory-only (unit tests, ad-hoc runs);
    records are kept in :attr:`records` either way, so the audit path is
    identical.  File-backed logs are truncated on open: a shard attempt
    is re-run from scratch after a crash, and replay's duplicate handling
    covers the overlap if truncation itself is interrupted.
    """

    def __init__(self, path: Optional[PathLike] = None, fsync_every: int = 64) -> None:
        self.path = Path(path) if path is not None else None
        self.fsync_every = max(1, fsync_every)
        self.records: List[Dict] = []
        self._handle: Optional[IO[str]] = None
        self._since_sync = 0

    # -- logging hooks (wired to NvmeController.on_submission/on_completion) --------

    def log_submission(self, cycle_index: int, command: NvmeCommand) -> Dict:
        """Record one submission-queue entry."""
        payload = {
            "v": CMDLOG_VERSION,
            "kind": "sub",
            "cycle": cycle_index,
            "cid": command.cid,
            "op": NvmeOpcode(command.opcode).name.lower(),
            "slba": command.slba,
            "nlb": command.nlb,
            "tokens": list(command.tokens),
            "t": command.submit_time,
        }
        self._append(payload)
        return payload

    def log_completion(self, cycle_index: int, completion: NvmeCompletion) -> Dict:
        """Record one completion (CQE posted == acknowledged)."""
        payload = {
            "v": CMDLOG_VERSION,
            "kind": "cpl",
            "cycle": cycle_index,
            "cid": completion.cid,
            "op": NvmeOpcode(completion.opcode).name.lower(),
            "status": completion.status.value,
            "t": completion.complete_time,
        }
        self._append(payload)
        return payload

    def mark(self, cycle_index: int, event: str, time_us: int) -> Dict:
        """Record a cycle boundary (power_fault / power_on / verified); fsync'd."""
        payload = {
            "v": CMDLOG_VERSION,
            "kind": "mark",
            "cycle": cycle_index,
            "event": event,
            "t": time_us,
        }
        self._append(payload, sync=True)
        return payload

    # -- plumbing -------------------------------------------------------------------

    def _append(self, payload: Dict, sync: bool = False) -> None:
        self.records.append(payload)
        if self.path is None:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        self._handle.write(encode_record(payload) + "\n")
        self._since_sync += 1
        if sync or self._since_sync >= self.fsync_every:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._since_sync = 0

    def close(self) -> None:
        """Flush, fsync, and close the file (memory records stay available)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def replayed(self) -> ReplayedLog:
        """Replay this log as the audit will see it.

        File-backed logs are flushed and re-read from disk — the audit
        consumes what actually survived the filesystem, exercising the
        codec end-to-end every cycle; memory-only logs replay the list.
        """
        if self.path is not None:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._since_sync = 0
            return replay_cmdlog(self.path)
        unique, duplicates = dedupe_records(self.records)
        return ReplayedLog(records=unique, duplicates_dropped=duplicates)


# -- acked-write audit --------------------------------------------------------------


@dataclass
class CycleAudit:
    """Per-LBA classification of one cycle's acknowledged writes."""

    cycle_index: int
    acked_writes: int
    reads_completed: int
    intact: int
    fwa: int
    data_failures: int
    io_errors: int
    flush_errors: int
    pages_audited: int
    outcome: VerificationOutcome

    @property
    def requests_completed(self) -> int:
        """Acked writes + completed reads (FLUSH barriers excluded)."""
        return self.acked_writes + self.reads_completed


def packets_from_records(
    records: Sequence[Dict], cycle_index: int
) -> Tuple[List[DataPacket], List[DataPacket], int, int]:
    """Rebuild the cycle's packets from replayed log records.

    Returns ``(acked_writes, failed_packets, reads_completed,
    flush_errors)``.  A write whose completion record is missing or
    carries an error status was never acknowledged — it is an IO error,
    not a data-loss candidate; only CQE-confirmed writes enter the
    re-read audit.
    """
    submissions: Dict[int, Dict] = {}
    completions: Dict[int, Dict] = {}
    for record in records:
        if record.get("cycle") != cycle_index:
            continue
        if record.get("kind") == "sub":
            submissions[record["cid"]] = record
        elif record.get("kind") == "cpl":
            completions[record["cid"]] = record

    acked: List[DataPacket] = []
    failed: List[DataPacket] = []
    reads_completed = 0
    flush_errors = 0
    for cid in sorted(submissions):
        sub = submissions[cid]
        cpl = completions.get(cid)
        ok = cpl is not None and cpl.get("status") == "success"
        op = sub.get("op")
        if op == "flush":
            if not ok:
                flush_errors += 1
            continue
        if op == "read":
            if ok:
                reads_completed += 1
            else:
                failed.append(
                    DataPacket(
                        packet_id=cid,
                        address_lpn=sub["slba"],
                        page_count=sub["nlb"],
                        is_write=False,
                        queue_time=sub["t"],
                    )
                )
            continue
        if op not in _WRITE_OPS:
            raise CmdlogError(f"unknown op {op!r} in command log")
        packet = DataPacket(
            packet_id=cid,
            address_lpn=sub["slba"],
            page_count=sub["nlb"],
            is_write=True,
            queue_time=sub["t"],
            data_checksums=list(sub["tokens"]),
        )
        if ok:
            packet.complete_time = cpl["t"]
            acked.append(packet)
        else:
            failed.append(packet)
    return acked, failed, reads_completed, flush_errors


def audit_cycle(
    analyzer: Analyzer, records: Sequence[Dict], cycle_index: int
) -> CycleAudit:
    """Replay one cycle's records and classify every acknowledged LBA.

    The Analyzer re-reads each address an acked write touched (through the
    device's forensic ``peek``) and applies the paper's taxonomy; the
    remainder — acked writes whose data is present or legitimately
    superseded — is **intact**.
    """
    acked, failed, reads_completed, flush_errors = packets_from_records(
        records, cycle_index
    )
    outcome = analyzer.verify_cycle(cycle_index, acked, failed)
    return CycleAudit(
        cycle_index=cycle_index,
        acked_writes=len(acked),
        reads_completed=reads_completed,
        intact=outcome.intact_packets,
        fwa=outcome.count(FailureKind.FWA),
        data_failures=outcome.count(FailureKind.DATA_FAILURE),
        io_errors=outcome.count(FailureKind.IO_ERROR),
        flush_errors=flush_errors,
        pages_audited=outcome.pages_checked,
        outcome=outcome,
    )
