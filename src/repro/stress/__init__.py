"""Dirty-power-cycle stress harness with acked-write audit.

The paper injects faults and checks checksums once per cycle; this package
runs the *qualification* version of that experiment the way NVMe power-loss
rigs do: repeated fault → power-on → recover → verify loops driven through
the NVMe queue-pair front-end (:mod:`repro.nvme`), with every submission
and completion recorded in a crash-consistent command log that is replayed
after each power-on to classify every acknowledged LBA as intact /
flying-write-ACK / data-loss / IO-error — and the device's own SMART
counters (unsafe shutdowns, power cycles) audited against the number of
faults actually injected.

- :mod:`repro.stress.cmdlog` — the append-only, torn-tail-tolerant
  command log and the replay/audit pipeline;
- :mod:`repro.stress.dirty_cycle` — :class:`DirtyCyclePlan`, an engine
  :class:`~repro.engine.plan.CampaignPlan` whose shards run dirty cycles
  (CLI: ``repro stress dirty-cycle --repeat N``).
"""

from repro.stress.cmdlog import (
    CommandLog,
    CycleAudit,
    ReplayedLog,
    audit_cycle,
    replay_cmdlog,
)
from repro.stress.dirty_cycle import (
    DEFAULT_RECOVERY_TIME_US,
    DirtyCyclePlan,
    run_dirty_shard,
)

__all__ = [
    "CommandLog",
    "CycleAudit",
    "DEFAULT_RECOVERY_TIME_US",
    "DirtyCyclePlan",
    "ReplayedLog",
    "audit_cycle",
    "replay_cmdlog",
    "run_dirty_shard",
]
