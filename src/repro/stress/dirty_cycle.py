"""The dirty-power-cycle stress harness.

One **dirty cycle** is the qualification loop real NVMe power-loss rigs
(pynvme's ``test_dirty_power_cycle_and_check_data``) run thousands of
times: drive traffic through the NVMe queue pair, drop the rail mid-burst,
power back on, replay the command log, re-read every *acknowledged* LBA and
classify it intact / flying-write-ACK / data-loss / IO-error, then assert
the drive's own SMART counters agree with the number of faults injected.

:class:`DirtyCyclePlan` packages the loop as a
:class:`~repro.engine.plan.CampaignPlan` subclass, so the entire engine
surface — sharding, process pools, checkpoint/resume, retry, quarantine,
tracing — applies to stress runs unchanged, and ``jobs=1`` and ``jobs=N``
produce bit-identical merged summaries by construction (executors only ever
call :meth:`DirtyCyclePlan.run_shard`).

Recovery-path faults are first-class: with ``recovery_fault_every=N`` set,
every Nth cycle of a shard cuts power a *second* time while the device is
mid-FTL-recovery (state ``RECOVERING``), exercising the
power-loss-during-power-loss-recovery path the paper's §V calls out as the
hardest consistency case.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from repro.core.analyzer import Analyzer
from repro.core.results import CampaignResult, FaultCycleResult
from repro.engine.plan import CampaignPlan, ShardSpec
from repro.errors import CampaignError, SimulationError, StressAuditError
from repro.host.system import HostSystem
from repro.nvme.command import NvmeCommand, NvmeOpcode
from repro.nvme.controller import NvmeController
from repro.rand import uniform_int
from repro.ssd.device import SsdConfig
from repro.ssd.power_state import DevicePowerState
from repro.stress.cmdlog import CommandLog, audit_cycle
from repro.units import MSEC

DEFAULT_RECOVERY_TIME_US = 150 * MSEC
"""Recovery window applied when recovery faults are requested against a
config whose rebuild is instantaneous (``recovery_time_us == 0``) — without
wall time in RECOVERING there is nothing to interrupt.  The window must
comfortably exceed the rail's decay-to-detach time (tens of ms): the second
power cut only *interrupts* recovery if the rail reaches the detach
threshold while the device is still RECOVERING, and the shard audit
verifies that it did."""


@dataclass(frozen=True)
class DirtyCyclePlan(CampaignPlan):
    """A :class:`CampaignPlan` whose shards run NVMe dirty power cycles.

    ``faults`` is the number of dirty cycles (``--repeat``).  Extra knobs:

    - ``qdepth``: submission/completion queue depth of the IO queue pair;
    - ``flush_every``: chase every Nth write with a FLUSH (0 disables);
    - ``write_zeroes_frac``: fraction of writes issued as WRITE ZEROES;
    - ``recovery_fault_every``: every Nth cycle of a shard also cuts power
      mid-recovery (0 disables); configs with no recovery window get
      :data:`DEFAULT_RECOVERY_TIME_US` applied deterministically;
    - ``fault_window_us``: the fault instant is drawn uniformly from
      ``[warmup_us, warmup_us + fault_window_us)`` of each cycle's traffic;
    - ``cmdlog_dir``: directory for per-shard command logs (``None`` keeps
      the log in memory; the audit path is identical either way).
    """

    qdepth: int = 64
    flush_every: int = 0
    write_zeroes_frac: float = 0.0
    recovery_fault_every: int = 0
    fault_window_us: int = 400 * MSEC
    cmdlog_dir: Optional[str] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.qdepth <= 0:
            raise CampaignError("queue depth must be positive")
        if self.flush_every < 0 or self.recovery_fault_every < 0:
            raise CampaignError("every-Nth knobs must be non-negative")
        if not 0.0 <= self.write_zeroes_frac <= 1.0:
            raise CampaignError("write_zeroes_frac must be in [0, 1]")
        if self.fault_window_us <= 0:
            raise CampaignError("fault window must be positive")

    def display_label(self) -> str:
        if self.label:
            return self.label
        device = self.device.name if self.device is not None else "generic"
        return f"dirty-cycle device={device} qd={self.qdepth} [{self.spec.describe()}]"

    def device_config(self) -> SsdConfig:
        """The hydrated device config (recovery window applied if needed)."""
        config = self.device if self.device is not None else SsdConfig()
        if self.recovery_fault_every and config.recovery_time_us == 0:
            config = replace(config, recovery_time_us=DEFAULT_RECOVERY_TIME_US)
        return config

    def shard_cmdlog_path(self, shard: ShardSpec) -> Optional[Path]:
        """Where this shard's command log lives (None = memory only)."""
        if self.cmdlog_dir is None:
            return None
        return Path(self.cmdlog_dir) / f"shard{shard.index:04d}.cmdlog.jsonl"

    def run_shard(self, shard: ShardSpec) -> CampaignResult:
        return run_dirty_shard(self, shard)


def _wait_for_recovering(host: HostSystem, timeout_us: int) -> None:
    """Run until the device enters its recovery window (after restore)."""
    deadline = host.kernel.now + timeout_us
    while host.ssd.state is not DevicePowerState.RECOVERING:
        if host.ssd.state is DevicePowerState.READY:
            raise StressAuditError(
                "device reached READY without a recovery window; "
                "recovery faults need recovery_time_us > 0"
            )
        if host.kernel.now >= deadline:
            raise SimulationError("device never entered recovery")
        next_time = host.kernel.next_event_time()
        if next_time is None:
            raise SimulationError("simulation idle before recovery")
        host.kernel.run(until=min(next_time, deadline))


class _IoWorker:
    """Closed- or open-loop traffic source over one NVMe queue pair.

    Closed loop keeps the submission queue topped up (classic qd=N
    worker); open loop (``spec.requested_iops`` set) paces submissions
    with a fractional-credit accumulator so the long-run rate matches the
    request.  All randomness comes from one named stream of the host's
    seed tree, so traffic is a pure function of ``(plan, shard seed)``.
    """

    def __init__(self, plan: DirtyCyclePlan, host: HostSystem,
                 ctrl: NvmeController, qpair) -> None:
        self.plan = plan
        self.spec = plan.spec
        self.host = host
        self.ctrl = ctrl
        self.qpair = qpair
        self.rng = host.streams.stream("stress")
        self._credit = 0.0
        self._writes_since_flush = 0

    def _next_command(self) -> NvmeCommand:
        spec = self.spec
        rng = self.rng
        if self.plan.flush_every and self._writes_since_flush >= self.plan.flush_every:
            self._writes_since_flush = 0
            return NvmeCommand(NvmeOpcode.FLUSH)
        nlb = uniform_int(rng, spec.size_min_pages, spec.size_max_pages)
        slba = spec.region_start_lpn + rng.randrange(spec.wss_pages - nlb + 1)
        if rng.random() < spec.read_fraction:
            return NvmeCommand(NvmeOpcode.READ, slba=slba, nlb=nlb)
        self._writes_since_flush += 1
        if self.plan.write_zeroes_frac and rng.random() < self.plan.write_zeroes_frac:
            return NvmeCommand(NvmeOpcode.WRITE_ZEROES, slba=slba, nlb=nlb)
        return NvmeCommand(NvmeOpcode.WRITE, slba=slba, nlb=nlb)

    def _submission_budget(self, quantum_us: int) -> int:
        if not self.spec.open_loop:
            return self.qpair.depth  # closed loop: top up to the SQ limit
        self._credit += self.spec.requested_iops * quantum_us / 1_000_000.0
        budget = int(self._credit)
        self._credit -= budget
        return budget

    def run(self, duration_us: int, quantum_us: int = 1 * MSEC) -> None:
        """Drive traffic for ``duration_us`` of simulated time."""
        kernel = self.host.kernel
        deadline = kernel.now + duration_us
        while kernel.now < deadline:
            budget = self._submission_budget(min(quantum_us, deadline - kernel.now))
            while budget > 0 and not self.qpair.sq.full:
                self.ctrl.submit(self.qpair, self._next_command())
                budget -= 1
            self.ctrl.ring_doorbell(self.qpair)
            kernel.run(until=min(deadline, kernel.now + quantum_us))
            self.ctrl.reap(self.qpair)


def run_dirty_shard(plan: DirtyCyclePlan, shard: ShardSpec) -> CampaignResult:
    """Execute one shard's dirty cycles; the engine's worker entry point.

    Cycle indices in the result (and in the command log) are shard-local;
    :func:`repro.engine.plan.merge_shard_results` renumbers them into one
    campaign-wide sequence, exactly as for ordinary fault campaigns.
    """
    config = plan.device_config()
    host = HostSystem(
        config, seed=shard.seed, max_segment_pages=plan.max_segment_pages
    )
    ctrl = NvmeController(host.ssd)
    qpair = ctrl.create_io_qpair(depth=plan.qdepth)
    analyzer = Analyzer.from_peek(host.ssd.peek)
    cmdlog = CommandLog(plan.shard_cmdlog_path(shard))
    current_cycle = [0]
    ctrl.on_submission = lambda cmd: cmdlog.log_submission(current_cycle[0], cmd)
    ctrl.on_completion = lambda cpl: cmdlog.log_completion(current_cycle[0], cpl)

    result = CampaignResult(label=plan.shard_label(shard))
    worker = _IoWorker(plan, host, ctrl, qpair)
    kernel = host.kernel
    traffic_time = 0
    # Recovery faults key on the *campaign-wide* cycle number, so which
    # cycles get a second fault depends only on the plan — not on how the
    # budget was sharded or how many workers executed it.
    cycle_offset = sum(s.faults for s in plan.shards()[: shard.index])

    host.boot()
    try:
        for cycle_index in range(shard.faults):
            current_cycle[0] = cycle_index

            # 1. Traffic until the drawn fault instant.
            fault_delay = plan.warmup_us + worker.rng.randrange(plan.fault_window_us)
            worker.run(fault_delay)
            fault_time = kernel.now
            health_before = ctrl.get_log_page_smart()
            cmdlog.mark(cycle_index, "power_fault", fault_time)

            # 2. Dirty power cycle: rail falls, device detaches and browns
            # out mid-IO; the host stack aborts whatever never left the SQ.
            host.cut_power()
            host.wait_until_dead()
            ctrl.abort_backlog(qpair)
            ctrl.reap(qpair)  # error CQEs posted at link-down
            host.run_for(plan.settle_us)
            host.restore_power()

            # 3. Optional second fault inside the FTL recovery window.
            recovery_faults = 0
            if plan.recovery_fault_every and (
                cycle_offset + cycle_index + 1
            ) % plan.recovery_fault_every == 0:
                _wait_for_recovering(host, plan.ready_timeout_us)
                # Cut early in the window: the rail needs tens of ms to
                # decay to the detach threshold, and only a detach that
                # lands while still RECOVERING interrupts the rebuild.
                host.run_for(max(1, config.recovery_time_us // 8))
                interruptions_before = host.ssd.recovery_interruptions
                cmdlog.mark(cycle_index, "recovery_fault", kernel.now)
                host.cut_power()
                host.wait_until_dead()
                if host.ssd.recovery_interruptions != interruptions_before + 1:
                    raise StressAuditError(
                        f"cycle {cycle_index}: recovery fault did not land "
                        f"inside the recovery window (recovery_time_us="
                        f"{config.recovery_time_us} is shorter than the "
                        "rail's decay-to-detach time)"
                    )
                host.run_for(plan.settle_us)
                host.restore_power()
                recovery_faults = 1

            host.wait_until_ready(plan.ready_timeout_us)
            cmdlog.mark(cycle_index, "power_on", kernel.now)

            # 4. SMART audit: the drive's own health log must agree with
            # the faults this harness injected, cycle by cycle.
            faults_injected = 1 + recovery_faults
            health = ctrl.get_log_page_smart()
            if health.unsafe_shutdowns != health_before.unsafe_shutdowns + faults_injected:
                raise StressAuditError(
                    f"cycle {cycle_index}: unsafe shutdowns "
                    f"{health.unsafe_shutdowns} != "
                    f"{health_before.unsafe_shutdowns} + {faults_injected}"
                )
            if health.power_cycles != health_before.power_cycles + faults_injected:
                raise StressAuditError(
                    f"cycle {cycle_index}: power cycles {health.power_cycles} != "
                    f"{health_before.power_cycles} + {faults_injected}"
                )

            # 5. Acked-write audit via command-log replay.
            replayed = cmdlog.replayed()
            audit = audit_cycle(analyzer, replayed.for_cycle(cycle_index), cycle_index)
            cmdlog.mark(cycle_index, "verified", kernel.now)

            damage = host.ssd.last_damage
            result.add_cycle(
                FaultCycleResult(
                    cycle_index=cycle_index,
                    fault_time_us=fault_time,
                    requests_completed=audit.requests_completed,
                    writes_completed=audit.acked_writes,
                    reads_completed=audit.reads_completed,
                    data_failures=audit.data_failures,
                    fwa_failures=audit.fwa,
                    io_errors=audit.io_errors + audit.flush_errors,
                    stranded_map_updates=damage.stranded_map_updates if damage else 0,
                    dirty_pages_lost=damage.dirty_pages_lost if damage else 0,
                    collateral_pages=damage.collateral_pages_corrupted if damage else 0,
                    supercap_pages_saved=damage.supercap_pages_saved if damage else 0,
                    unsafe_shutdowns=faults_injected,
                    intact_writes=audit.intact,
                )
            )
            traffic_time += fault_delay
    finally:
        cmdlog.close()

    result.requests_issued = qpair.submitted
    result.traffic_time_us = traffic_time
    return result
