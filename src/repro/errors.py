"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from runtime device conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, running a kernel that has
    already been shut down, or re-entering ``run`` from inside a handler.
    """


class PowerError(ReproError):
    """Invalid interaction with the power substrate.

    For instance driving the ATX ``PS_ON#`` pin of a PSU that has no mains
    input, or probing a rail that does not exist.
    """


class DeviceUnavailableError(ReproError):
    """An IO command was issued to a device that is not powered/ready.

    Mirrors the host-visible condition the paper reports as *IO error*:
    the SSD drops off the bus once its supply falls below 4.5 V.
    """


class ProtocolError(ReproError):
    """A device command violated the link/command protocol.

    E.g. reading past the device capacity or issuing a zero-length request.
    """


class AddressError(ProtocolError):
    """A logical block address is outside the device's addressable range."""


class EccUncorrectableError(ReproError):
    """Raw bit errors in a page exceeded the ECC correction budget."""


class RecoveryError(ReproError):
    """Power-on recovery could not reconstruct FTL state.

    Corresponds to the catastrophic "unserializable"/"dead device" outcomes
    reported by Zheng et al. (FAST'13) and referenced by the paper.
    """


class CampaignError(ReproError):
    """A fault-injection campaign was configured or sequenced incorrectly."""


class ShardFailureError(CampaignError):
    """A campaign shard exhausted its retry budget.

    Raised by the engine supervisor when a shard keeps crashing, timing
    out, or killing its worker and quarantine is not enabled; the message
    names the shard and its last failure reason.
    """


class CampaignInterrupted(CampaignError):
    """A campaign run was stopped by SIGINT/SIGTERM.

    The supervisor flushes the checkpoint journal before raising, so a
    run started with ``--checkpoint`` can be restarted with ``--resume``.
    """


class RemoteProtocolError(CampaignError):
    """A distributed-execution peer violated the coordinator wire protocol.

    Raised for malformed or oversized frames, handshake version or plan
    fingerprint mismatches, and frames that arrive out of protocol order.
    A worker rejected at handshake receives the reason before the
    connection closes.
    """


class CheckpointError(ReproError):
    """The shard checkpoint journal is unreadable or internally corrupt.

    A torn final record (crash mid-append) is *not* an error — replay
    discards it — but corruption anywhere before the tail is.
    """


class NvmeQueueError(ProtocolError):
    """An NVMe queue-pair invariant was violated.

    Raised for a submission pushed into a full submission queue, a
    completion posted to a full completion queue (fatal on real hardware),
    or admin access to an unknown log page.
    """


class CmdlogError(ReproError):
    """The stress harness's command log is unreadable or internally corrupt.

    Mirrors :class:`CheckpointError`'s contract: a torn *final* record
    (crash mid-append) is tolerated on replay, damage anywhere before the
    tail raises.
    """


class StressAuditError(ReproError):
    """A dirty-power-cycle audit assertion failed.

    Raised when the device's self-reported SMART counters (unsafe
    shutdowns, power cycles) disagree with the number of faults the harness
    actually injected — the self-reporting-vs-ground-truth comparison the
    paper's methodology calls for.
    """


class AppAuditError(ReproError):
    """An application-level semantic audit invariant was violated.

    Raised when the verdict partition over an app's promise log is not
    exact (a promise classified twice, or an acked promise left
    unclassified), or when a protocol invariant the apps stake their
    recovery on — e.g. rename atomicity of a manifest/checkpoint swap, or
    durability of a synced rename — does not hold after a power cycle.
    Unlike an app-level data loss (which is *classified*, not raised),
    these are harness/filesystem contract violations.
    """


class TraceError(ReproError):
    """The block-layer tracer was queried for an unknown request or event."""


class EngineTraceError(ReproError):
    """An engine telemetry trace file is unreadable or internally corrupt.

    As with the checkpoint journal, a torn *final* record (crash mid-append)
    is tolerated on read; damage anywhere before the tail raises.
    """
