"""Flush policy knobs.

The flusher drains the write cache to flash in batches.  Three quantities
govern the host-visible failure exposure:

- ``batch_pages`` — pages flushed per NAND round-trip (array parallelism);
- ``linger_us`` — how long a non-full batch waits for company before being
  flushed anyway (small-write aggregation);
- ``max_dirty_pages`` — admission throttle: once this many pages are dirty,
  write commands stall instead of acknowledging, bounding the amount of
  ACKed-but-volatile data.

``max_dirty_pages`` is the knob that shapes the paper's Fig. 7: small
requests run far below the throttle (their exposure scales with IOPS ×
flush latency), while large requests slam into it (their exposure is capped
at ``max_dirty_pages`` worth of requests — only a couple of 1 MiB writes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MSEC


@dataclass(frozen=True)
class FlushPolicy:
    """Write-back flusher configuration.

    ``write_through`` models the paper's cache-disabled experiments: every
    write is acknowledged only after its pages are durable in flash.
    """

    batch_pages: int = 64
    linger_us: int = 2 * MSEC
    max_dirty_pages: int = 256
    write_through: bool = False

    def __post_init__(self) -> None:
        if self.batch_pages <= 0:
            raise ConfigurationError("batch_pages must be positive")
        if self.linger_us < 0:
            raise ConfigurationError("linger_us must be non-negative")
        if self.max_dirty_pages < self.batch_pages:
            raise ConfigurationError("max_dirty_pages must be >= batch_pages")

    def throttled(self, dirty_pages: int, incoming_pages: int) -> bool:
        """True when a write of ``incoming_pages`` must stall for drain.

        A write larger than ``max_dirty_pages`` can never satisfy the sum
        condition, so it is admitted once the cache has fully drained —
        otherwise a single oversized command would stall forever against a
        throttle it can never clear.
        """
        if incoming_pages > self.max_dirty_pages:
            return dirty_pages > 0
        return dirty_pages + incoming_pages > self.max_dirty_pages
