"""Backup-energy model (super-capacitors / batteries).

High-end drives hold enough stored energy to destage the write buffer and
checkpoint the mapping table after the supply fails (paper §I: "some
high-end devices employ batteries and super-capacitors while low-end devices
do not support such costly recovery schemes").  None of the paper's Table I
drives has one — the model exists for the ablation/extension benches that
show what the mechanism buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MSEC


@dataclass(frozen=True)
class SupercapBackup:
    """Stored-energy budget expressed as guaranteed runtime after power loss.

    Attributes
    ----------
    hold_time_us:
        How long the controller, DRAM, and NAND can keep operating from the
        capacitor bank once the external rail collapses.
    """

    hold_time_us: int = 30 * MSEC

    def __post_init__(self) -> None:
        if self.hold_time_us <= 0:
            raise ConfigurationError("supercap hold time must be positive")

    def can_destage(self, dirty_pages: int, page_write_us: int, parallelism: int) -> bool:
        """Whether the full dirty set fits in the energy budget.

        Exactly ``dirty_pages <= destageable_pages(...)``: both sides are
        derived from the same whole-round count, so the two views of the
        budget agree at the boundary by construction.
        """
        if dirty_pages < 0:
            raise ConfigurationError("invalid destage parameters")
        return dirty_pages <= self.destageable_pages(page_write_us, parallelism)

    def destage_time_us(self, dirty_pages: int, page_write_us: int, parallelism: int) -> int:
        """Time to flush ``dirty_pages`` with ``parallelism`` concurrent programs."""
        if dirty_pages < 0:
            raise ConfigurationError("invalid destage parameters")
        self._check_rate(page_write_us, parallelism)
        rounds = -(-dirty_pages // parallelism)
        return rounds * page_write_us

    def destageable_pages(self, page_write_us: int, parallelism: int) -> int:
        """How many pages fit in the budget (partial destage on overrun).

        ``parallelism`` pages per whole ``page_write_us`` round: a round
        that does not fully fit in the hold time saves nothing, so only
        ``hold_time_us // page_write_us`` rounds count.
        """
        return self._whole_rounds(page_write_us, parallelism) * parallelism

    def _whole_rounds(self, page_write_us: int, parallelism: int) -> int:
        """Complete destage rounds the energy budget covers — the single
        arithmetic source both :meth:`can_destage` and
        :meth:`destageable_pages` are defined in terms of."""
        self._check_rate(page_write_us, parallelism)
        return self.hold_time_us // page_write_us

    @staticmethod
    def _check_rate(page_write_us: int, parallelism: int) -> None:
        if page_write_us <= 0 or parallelism <= 0:
            raise ConfigurationError("invalid destage parameters")
