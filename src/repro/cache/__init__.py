"""Device-internal volatile write cache.

SSDs acknowledge writes as soon as the data lands in their DRAM buffer
("SSDs keep write pending requests in a volatile write-back DRAM cache",
paper §I).  Everything dirty in this buffer at the instant the controller
browns out is lost — the host has an ACK for data that never reached flash,
which the paper's Analyzer classifies as **False Write-Acknowledge**.

Public surface: :class:`~repro.cache.dram.WriteCache`,
:class:`~repro.cache.flush.FlushPolicy`,
:class:`~repro.cache.supercap.SupercapBackup`.
"""

from repro.cache.dram import CacheEntry, WriteCache
from repro.cache.flush import FlushPolicy
from repro.cache.supercap import SupercapBackup

__all__ = ["CacheEntry", "FlushPolicy", "SupercapBackup", "WriteCache"]
