"""The volatile write-back buffer.

Entries are page-granular (4 KiB) and keyed by LPN.  Insertion order is the
flush order (FIFO), and a write to an LPN that is already dirty *coalesces*:
the old payload is simply replaced, meaning that under WAW traffic two
acknowledged host writes share one cache entry — if power fails before the
flush, **both** are lost at once.  This coalescing is a real write-buffer
behaviour and one of the mechanisms behind the paper's Fig. 9 (WAW accesses
show by far the most failures).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError


@dataclass
class CacheEntry:
    """One dirty logical page waiting for flash."""

    lpn: int
    token: int
    inserted_at: int
    coalesce_depth: int = 0
    """How many earlier acknowledged-but-unflushed writes this entry replaced."""


class WriteCache:
    """FIFO write-back buffer with coalescing and explicit capacity.

    Example
    -------
    >>> cache = WriteCache(capacity_pages=8)
    >>> cache.insert(5, token=1, now=0)
    False
    >>> cache.insert(5, token=2, now=10)   # WAW coalesce
    True
    >>> cache.dirty_count
    1
    >>> cache.read_hit(5)
    2
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity_pages = capacity_pages
        self._entries: "OrderedDict[int, CacheEntry]" = OrderedDict()
        # Statistics.
        self.inserts = 0
        self.coalesces = 0
        self.read_hits = 0
        self.read_misses = 0
        self.peak_dirty = 0

    # -- write path -------------------------------------------------------------------

    def insert(self, lpn: int, token: int, now: int) -> bool:
        """Buffer one dirty page.  Returns True when it coalesced onto an
        existing dirty entry (a WAW overwrite)."""
        if lpn < 0:
            raise ConfigurationError(f"negative LPN {lpn}")
        self.inserts += 1
        existing = self._entries.get(lpn)
        if existing is not None:
            existing.token = token
            existing.inserted_at = now
            existing.coalesce_depth += 1
            self.coalesces += 1
            return True
        self._entries[lpn] = CacheEntry(lpn, token, now)
        if len(self._entries) > self.peak_dirty:
            self.peak_dirty = len(self._entries)
        return False

    def has_space(self, pages: int = 1) -> bool:
        """True when ``pages`` more dirty pages fit under the capacity."""
        return len(self._entries) + pages <= self.capacity_pages

    # -- flush path --------------------------------------------------------------------

    def take_batch(self, max_pages: int) -> List[CacheEntry]:
        """Pop up to ``max_pages`` oldest entries for flushing (FIFO order)."""
        if max_pages <= 0:
            raise ConfigurationError("batch size must be positive")
        batch: List[CacheEntry] = []
        while self._entries and len(batch) < max_pages:
            _, entry = self._entries.popitem(last=False)
            batch.append(entry)
        return batch

    def put_back(self, entries: List[CacheEntry]) -> None:
        """Return un-flushed entries to the head of the FIFO (flush aborted).

        Newer writes to the same LPN (arrived while the batch was in flight)
        win over the put-back copy.
        """
        for entry in reversed(entries):
            if entry.lpn not in self._entries:
                self._entries[entry.lpn] = entry
                self._entries.move_to_end(entry.lpn, last=False)

    # -- read path ----------------------------------------------------------------------

    def read_hit(self, lpn: int) -> Optional[int]:
        """Token of a dirty page, or None (read-through to flash)."""
        entry = self._entries.get(lpn)
        if entry is None:
            self.read_misses += 1
            return None
        self.read_hits += 1
        return entry.token

    def peek(self, lpn: int) -> Optional[CacheEntry]:
        """Entry for ``lpn`` without touching statistics (forensics)."""
        return self._entries.get(lpn)

    def discard(self, start_lpn: int, count: int) -> int:
        """Drop dirty entries in a logical range (TRIM).  Returns drops."""
        dropped = 0
        for lpn in range(start_lpn, start_lpn + count):
            if self._entries.pop(lpn, None) is not None:
                dropped += 1
        return dropped

    # -- power events ---------------------------------------------------------------------

    def drop_all(self) -> List[CacheEntry]:
        """Volatile contents vanish at brownout; returns what was lost."""
        lost = list(self._entries.values())
        self._entries.clear()
        return lost

    # -- introspection ----------------------------------------------------------------------

    @property
    def dirty_count(self) -> int:
        """Dirty pages currently buffered."""
        return len(self._entries)

    @property
    def dirty_bytes(self) -> int:
        """Dirty payload size assuming 4 KiB pages."""
        return len(self._entries) * 4096

    def oldest_age_us(self, now: int) -> Optional[int]:
        """Age of the oldest dirty page (bounds cache-side ACK exposure)."""
        if not self._entries:
            return None
        first_key = next(iter(self._entries))
        return now - self._entries[first_key].inserted_at

    def dirty_lpns(self) -> List[int]:
        """LPNs currently dirty, oldest first."""
        return list(self._entries.keys())
