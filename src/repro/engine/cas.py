"""Content-addressed store of completed shard results.

The campaign service (:mod:`repro.engine.serve`) is long-lived, and the
engine's determinism guarantee makes completed work *cacheable*: a shard
is fully determined by the plan batch it belongs to, its position in that
batch, and its seed.  :class:`ResultCAS` persists every completed shard
under exactly that key —

    ``(plans fingerprint, plan index, shard index, shard seed)``

— so a campaign resubmitted to the service (today or after a daemon
restart) is served from disk without touching a worker.  The plan-batch
fingerprint folds in each plan's class and every field (see
:meth:`repro.engine.plan.CampaignPlan.fingerprint`), so two campaigns
share an entry only when their definitions are byte-equivalent; the seed
rides in the filename as a belt-and-braces guard for the same reason it
rides in the journal's shard records.

Entries reuse the checkpoint journal's lossless line codec
(:func:`~repro.engine.checkpoint.encode_line`: canonical JSON + CRC32),
stamped with :func:`~repro.engine.checkpoint.result_schema_version`.  A
corrupt entry is quarantined (renamed aside) and reported as a miss; an
entry written under a different codec schema is *rejected without being
decoded* — both degrade to re-execution, never to wrong results.  Writes
are atomic (tmp + fsync + rename) so a crashed daemon can't leave a torn
entry behind.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.results import CampaignResult
from repro.engine.checkpoint import (
    decode_line,
    encode_line,
    result_from_record,
    result_schema_version,
    result_to_record,
)

CAS_VERSION = 1
"""Layout version of one CAS entry (bumped only on key-shape changes)."""

QUARANTINE_SUFFIX = ".quarantined"
"""Corrupt entries are renamed aside with this suffix, never deleted."""


class ResultCAS:
    """Filesystem CAS of shard results, keyed by content fingerprints.

    Layout: ``<root>/<plans-fingerprint>/p<plan>-s<shard>-<seed>.json``,
    one entry per line-encoded file.  The store is append-only from the
    daemon's point of view; eviction is an operator decision (delete the
    directory), which keeps the trust story identical to the checkpoint
    journal's.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.schema = result_schema_version()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        self.schema_rejects = 0

    def entry_path(
        self, fingerprint: str, plan_index: int, shard_index: int, seed: int
    ) -> Path:
        return (
            self.root
            / fingerprint
            / f"p{plan_index:03d}-s{shard_index:04d}-{int(seed) & (2**64 - 1):016x}.json"
        )

    # -- read side --------------------------------------------------------------------

    def get(
        self, fingerprint: str, plan_index: int, shard_index: int, seed: int
    ) -> Optional[CampaignResult]:
        """The cached result for one shard key, or ``None`` (a miss).

        Every failure mode is a miss: absent entry, torn/corrupt entry
        (quarantined aside), key fields that disagree with the path, or a
        schema version from a different codec (rejected before any result
        field is interpreted).
        """
        path = self.entry_path(fingerprint, plan_index, shard_index, seed)
        try:
            line = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            self.misses += 1
            return None
        try:
            record = decode_line(line.strip())
        except Exception:
            self._quarantine(path)
            self.misses += 1
            return None
        if record.get("schema") != self.schema:
            # A different codec wrote this (field added/renamed since).
            # Decoding it could mint plausible-but-wrong results, so the
            # entry is dead to us until re-executed under this schema.
            self.schema_rejects += 1
            self.misses += 1
            return None
        expected_key = {
            "v": CAS_VERSION,
            "fingerprint": fingerprint,
            "plan": plan_index,
            "shard": shard_index,
            "seed": int(seed),
        }
        if any(record.get(field) != value for field, value in expected_key.items()):
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            result = result_from_record(record["result"])
        except Exception:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    # -- write side -------------------------------------------------------------------

    def put(
        self,
        fingerprint: str,
        plan_index: int,
        shard_index: int,
        seed: int,
        result: CampaignResult,
    ) -> Path:
        """Durably store one completed shard result (atomic, idempotent)."""
        path = self.entry_path(fingerprint, plan_index, shard_index, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = encode_line(
            {
                "v": CAS_VERSION,
                "schema": self.schema,
                "fingerprint": fingerprint,
                "plan": plan_index,
                "shard": shard_index,
                "seed": int(seed),
                "result": result_to_record(result),
            }
        )
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._fsync_dir(path.parent)
        self.puts += 1
        return path

    # -- bookkeeping ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters snapshot for the daemon's status lines and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "schema_rejects": self.schema_rejects,
        }

    def _quarantine(self, path: Path) -> None:
        self.corrupt += 1
        try:
            os.replace(path, path.with_name(path.name + QUARANTINE_SUFFIX))
        except OSError:
            pass  # racing daemon or read-only store: the miss still stands

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
