"""Engine progress/telemetry hooks.

Executors report shard lifecycle events through an :class:`EngineTelemetry`
instance; consumers (CLI, benches, tests, the trace exporter) receive
:class:`ProgressEvent` snapshots carrying throughput (cycles/sec) and an
ETA estimate.  The hook is a plain callable, so tests can collect events
into a list, the CLI can render them as console lines, and
:class:`repro.engine.trace.TraceWriter` can persist them as JSONL.

Throughput accounting distinguishes *executed* cycles from cycles loaded
out of a checkpoint journal: skipped shards count toward progress totals
(``cycles_done``) but never toward the rate, so a resumed run's
``cycles_per_sec``/ETA describe the work actually being performed instead
of crediting the engine with cycles a previous run already paid for.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, TextIO, Union

PLAN_EVENT_INDEX = -1
"""Sentinel ``shard_index`` for plan-level events (``plan-finished``).

Plan-level events describe no particular shard; using a real index would
alias a shard for any consumer keying events by ``(plan_label,
shard_index)``.
"""


@dataclass(frozen=True)
class ProgressEvent:
    """One telemetry snapshot, emitted on every shard state change.

    ``kind`` is one of ``shard-started`` (a worker actually picked the
    shard up), ``shard-finished``, ``shard-retried``, ``shard-skipped``
    (loaded from a checkpoint instead of executed), ``shard-quarantined``
    (retry budget exhausted), ``checkpoint-written`` (shard committed to
    the journal), or ``plan-finished`` (whose ``shard_index`` is the
    :data:`PLAN_EVENT_INDEX` sentinel, never a real shard).

    ``attempt`` is the attempt number the event describes (``None`` when
    not applicable); ``worker_pid`` identifies the executing worker when
    the emitter knows it — a bare pid for in-process execution (pool
    workers are anonymous), or a ``"host:pid"`` string for distributed
    workers, so trace reports can attribute stragglers to machines;
    ``commit_lag_s`` (checkpoint-written only) is how long a finished
    shard result waited before being durably journaled.
    """

    kind: str
    plan_label: str
    shard_index: int
    shard_count: int
    shards_done: int
    shards_total: int
    cycles_done: int
    cycles_total: int
    elapsed_s: float
    cycles_per_sec: float
    eta_s: Optional[float]
    detail: str = ""
    cycles_skipped: int = 0
    attempt: Optional[int] = None
    worker_pid: Optional[Union[int, str]] = None
    commit_lag_s: Optional[float] = None


ProgressHook = Callable[[ProgressEvent], None]


def format_eta(eta_s: Optional[float]) -> str:
    """Render an ETA estimate (``"?"`` until throughput is known).

    Shared by :class:`ConsoleProgress` and the live follow dashboard
    (:mod:`repro.engine.live`) so the two surfaces can't disagree.
    """
    return f"{eta_s:.0f}s" if eta_s is not None else "?"


def fanout_hooks(*hooks: Optional[ProgressHook]) -> Optional[ProgressHook]:
    """Combine hooks into one (``None`` entries dropped; empty -> ``None``)."""
    live = [hook for hook in hooks if hook is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def _fanout(event: ProgressEvent) -> None:
        for hook in live:
            hook(event)

    return _fanout


class EngineTelemetry:
    """Aggregates shard events into throughput/ETA snapshots.

    Executors call the ``shard_*``/``plan_finished`` methods; each call
    builds a :class:`ProgressEvent` and forwards it to the hook (if any).

    Event entry points are serialized by a mutex: the asyncio coordinator
    emits worker-driven events from its event-loop thread while the
    engine's driver thread emits ``shard-skipped``/``plan-finished``, and
    both the counters and the hook (often a shared
    :class:`~repro.engine.trace.TraceWriter`) must see one event at a
    time.
    """

    def __init__(
        self,
        shards_total: int,
        cycles_total: int,
        hook: Optional[ProgressHook] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.shards_total = shards_total
        self.cycles_total = cycles_total
        self.shards_done = 0
        self.cycles_done = 0
        self.cycles_skipped = 0
        self.retries = 0
        self.skipped = 0
        self.quarantined = 0
        self.checkpoints = 0
        self._hook = hook
        self._clock = clock
        self._start = clock()
        self._mutex = threading.RLock()

    # -- derived ------------------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Wall-clock seconds since the engine run started."""
        return self._clock() - self._start

    @property
    def cycles_executed(self) -> int:
        """Cycles actually run this session (checkpoint-loaded ones excluded)."""
        return self.cycles_done - self.cycles_skipped

    @property
    def cycles_per_sec(self) -> float:
        """Observed *executed*-cycle throughput.

        Cycles served from a checkpoint journal are excluded: they took no
        work this run, and folding them in made a resumed run's rate (and
        therefore its ETA) wildly optimistic.
        """
        elapsed = self.elapsed_s
        if elapsed <= 0.0 or self.cycles_executed <= 0:
            return 0.0
        return self.cycles_executed / elapsed

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion (None until throughput is known).

        Remaining work is everything not yet *done* (skipped shards do
        count as done — they need no further time); the rate it is divided
        by comes from executed cycles only.
        """
        rate = self.cycles_per_sec
        if rate <= 0.0:
            return None
        return max(0.0, (self.cycles_total - self.cycles_done) / rate)

    # -- event entry points -------------------------------------------------------

    def shard_started(
        self,
        plan_label: str,
        index: int,
        count: int,
        attempt: Optional[int] = None,
        worker_pid: Optional[Union[int, str]] = None,
    ) -> None:
        """A shard began executing (a worker actually picked it up)."""
        self._emit(
            "shard-started",
            plan_label,
            index,
            count,
            attempt=attempt,
            worker_pid=worker_pid,
        )

    def shard_finished(
        self,
        plan_label: str,
        index: int,
        count: int,
        cycles: int,
        attempt: Optional[int] = None,
        worker_pid: Optional[Union[int, str]] = None,
    ) -> None:
        """A shard completed; fold its cycles into the throughput estimate."""
        with self._mutex:
            self.shards_done += 1
            self.cycles_done += cycles
            self._emit(
                "shard-finished",
                plan_label,
                index,
                count,
                attempt=attempt,
                worker_pid=worker_pid,
            )

    def shard_retried(
        self,
        plan_label: str,
        index: int,
        count: int,
        reason: str,
        attempt: Optional[int] = None,
    ) -> None:
        """A shard failed or timed out and is being retried in-process."""
        with self._mutex:
            self.retries += 1
            self._emit(
                "shard-retried",
                plan_label,
                index,
                count,
                detail=reason,
                attempt=attempt,
            )

    def shard_skipped(
        self, plan_label: str, index: int, count: int, cycles: int
    ) -> None:
        """A shard was loaded from the checkpoint journal, not executed.

        Its cycles advance the progress totals but are tracked separately
        so the throughput/ETA estimate only reflects executed work.
        """
        with self._mutex:
            self.shards_done += 1
            self.cycles_done += cycles
            self.cycles_skipped += cycles
            self.skipped += 1
            self._emit(
                "shard-skipped", plan_label, index, count, detail="from checkpoint"
            )

    def shard_quarantined(
        self,
        plan_label: str,
        index: int,
        count: int,
        reason: str,
        attempt: Optional[int] = None,
    ) -> None:
        """A shard exhausted its retry budget and was quarantined."""
        with self._mutex:
            self.shards_done += 1
            self.quarantined += 1
            self._emit(
                "shard-quarantined",
                plan_label,
                index,
                count,
                detail=reason,
                attempt=attempt,
            )

    def checkpoint_written(
        self,
        plan_label: str,
        index: int,
        count: int,
        commit_lag_s: Optional[float] = None,
    ) -> None:
        """A shard result was durably committed to the journal."""
        with self._mutex:
            self.checkpoints += 1
            self._emit(
                "checkpoint-written",
                plan_label,
                index,
                count,
                commit_lag_s=commit_lag_s,
            )

    def plan_finished(self, plan_label: str, shard_count: int) -> None:
        """Every shard of one plan has merged (shard index is the sentinel)."""
        self._emit("plan-finished", plan_label, PLAN_EVENT_INDEX, shard_count)

    # -- internals ----------------------------------------------------------------

    def _emit(
        self,
        kind: str,
        plan_label: str,
        index: int,
        count: int,
        detail: str = "",
        attempt: Optional[int] = None,
        worker_pid: Optional[Union[int, str]] = None,
        commit_lag_s: Optional[float] = None,
    ) -> None:
        if self._hook is None:
            return
        with self._mutex:
            self._hook(
                ProgressEvent(
                    kind=kind,
                    plan_label=plan_label,
                    shard_index=index,
                    shard_count=count,
                    shards_done=self.shards_done,
                    shards_total=self.shards_total,
                    cycles_done=self.cycles_done,
                    cycles_total=self.cycles_total,
                    elapsed_s=self.elapsed_s,
                    cycles_per_sec=self.cycles_per_sec,
                    eta_s=self.eta_s,
                    detail=detail,
                    cycles_skipped=self.cycles_skipped,
                    attempt=attempt,
                    worker_pid=worker_pid,
                    commit_lag_s=commit_lag_s,
                )
            )


class ConsoleProgress:
    """Progress hook rendering one console line per event.

    Writes to ``stderr`` by default so the engine's chatter never pollutes
    parseable stdout tables.
    """

    def __init__(self, stream: Optional[TextIO] = None, verbose: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose

    QUIET_KINDS = ("shard-started", "checkpoint-written")

    def __call__(self, event: ProgressEvent) -> None:
        if event.kind in self.QUIET_KINDS and not self.verbose:
            return
        eta = format_eta(event.eta_s)
        if event.shard_index == PLAN_EVENT_INDEX:
            scope = f"all {event.shard_count} shards"
        else:
            scope = f"shard {event.shard_index + 1}/{event.shard_count}"
        line = (
            f"[engine] {event.kind:<14} {event.plan_label} "
            f"{scope} | "
            f"shards {event.shards_done}/{event.shards_total} | "
            f"cycles {event.cycles_done}/{event.cycles_total} | "
            f"{event.cycles_per_sec:.2f} cycles/s | ETA {eta}"
        )
        if event.detail:
            line += f" | {event.detail}"
        print(line, file=self.stream)
        self.stream.flush()
