"""Live follow-mode observability for engine traces (``--follow``).

The paper's platform streams blktrace/btt events off the device *while*
the campaign runs, so the Analyzer can watch failures as they happen; at
paper scale (thousands of fault cycles across six device models and
remote workers) a sweep runs for hours and the only live signal used to
be ``ConsoleProgress`` scroll.  This module tails the JSONL shard traces
the engine already writes (:mod:`repro.engine.trace`) and renders a live
straggler view:

- :class:`TraceSource` pairs one :class:`~repro.engine.trace.TraceCursor`
  (incremental tailing, torn-tail retention, truncation/rotation reset)
  with one :class:`~repro.engine.trace.TraceReportBuilder` (O(new
  records) per poll);
- :class:`FollowSession` follows one trace file — or multiplexes every
  trace in a directory, so a whole ``REPRO_BENCH_TRACE`` bench sweep can
  be watched from one terminal, discovering new campaigns as they start;
- :class:`LiveRenderer` repaints an ANSI dashboard when the output is a
  TTY (running shards with their in-flight age flagged against the
  completed-shard p95, slowest-N, per-worker counts, throughput/ETA) and
  prints plain periodic snapshot lines otherwise;
- :func:`follow_trace` is the CLI loop behind ``repro trace report
  --follow [--interval S]``: renders every interval, idle-polls on the
  engine's capped-exponential :class:`~repro.engine.executors.BackoffPoller`,
  exits cleanly on the final ``plan-finished`` record or Ctrl-C, and then
  prints a final aggregate report byte-identical to the post-hoc
  ``repro trace report`` of the same file.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, List, Optional, Set, TextIO

from repro.engine.executors import BackoffPoller
from repro.engine.progress import format_eta
from repro.engine.trace import (
    PathLike,
    TraceCursor,
    TraceReportBuilder,
)
from repro.errors import EngineTraceError

FOLLOW_GLOB = "*.jsonl"
"""Directory mode follows every JSONL file (bench traces are
``<label-slug>.trace.jsonl``; keep a checkpoint directory separate)."""

DEFAULT_INTERVAL_S = 2.0
"""Default snapshot cadence of ``--follow`` (seconds)."""


class TraceSource:
    """One followed trace file: a live cursor feeding an incremental builder."""

    def __init__(self, path: PathLike, name: Optional[str] = None) -> None:
        self.path = Path(path)
        self.name = name if name is not None else self.path.name
        self.cursor = TraceCursor(self.path, live=True)
        self.builder = TraceReportBuilder()
        self.finished = False
        self.restarts = 0

    def poll(self) -> int:
        """Consume newly-appended records; returns how many arrived.

        A truncation/rotation detected by the cursor means the writer
        restarted the file: the old run's story would poison the view, so
        the builder starts over and the re-read records land in a fresh
        one.
        """
        truncations = self.cursor.truncations
        records = self.cursor.poll()
        if self.cursor.truncations != truncations:
            self.builder = TraceReportBuilder()
            self.finished = False
            self.restarts += 1
        for record in records:
            self.builder.add(record)
            if (
                record.kind == "plan-finished"
                and record.shards_done >= record.shards_total
            ):
                self.finished = True
        return len(records)


class FollowSession:
    """Follow state over one trace file or a directory of them.

    A file path waits for the file to appear (a follower may attach
    before the campaign starts) and ends at the run's final
    ``plan-finished`` record.  A directory path is an open-ended sweep:
    new trace files are discovered on every poll and the session never
    self-finishes — more campaigns may start at any time, so only the
    user (Ctrl-C) ends a directory follow.
    """

    def __init__(self, path: PathLike, top: int = 5) -> None:
        self.path = Path(path)
        self.top = top
        self.sources: List[TraceSource] = []
        self._known: Set[str] = set()
        self.directory_mode = self.path.is_dir()

    def _discover(self) -> None:
        if self.path.is_dir():
            self.directory_mode = True
            for file in sorted(self.path.glob(FOLLOW_GLOB)):
                if file.name not in self._known:
                    self._known.add(file.name)
                    self.sources.append(TraceSource(file))
        elif not self.directory_mode and not self.sources and self.path.exists():
            self.sources.append(TraceSource(self.path))

    def poll(self) -> int:
        """Discover new sources, drain all cursors; returns new-record count."""
        self._discover()
        return sum(source.poll() for source in self.sources)

    @property
    def events(self) -> int:
        return sum(source.builder.events for source in self.sources)

    @property
    def finished(self) -> bool:
        """True once a single-file follow saw the run's last ``plan-finished``."""
        if self.directory_mode:
            return False
        return bool(self.sources) and all(s.finished for s in self.sources)


def snapshot_lines(session: FollowSession) -> List[str]:
    """Plain one-line-per-source snapshots (the non-TTY rendering)."""
    if not session.sources:
        return [f"[follow] waiting for {session.path} ..."]
    lines = []
    for source in session.sources:
        builder = source.builder
        last = builder.last_record
        if last is None:
            lines.append(f"[follow] {source.name}: no records yet")
            continue
        line = (
            f"[follow] {source.name}: "
            f"shards {last.shards_done}/{last.shards_total} | "
            f"cycles {last.cycles_done}/{last.cycles_total} | "
            f"{last.cycles_per_sec:.2f} cycles/s | "
            f"ETA {format_eta(last.eta_s)} | "
            f"running {len(builder.running_shards())} | "
            f"retries {len(builder.retry_timeline)} | "
            f"quarantined {len(builder.quarantine_timeline)}"
        )
        if source.restarts:
            line += f" | restarts {source.restarts}"
        if source.finished:
            line += " | finished"
        lines.append(line)
    return lines


def dashboard_lines(session: FollowSession) -> List[str]:
    """The full-screen dashboard body (the TTY rendering)."""
    lines = [f"following {session.path} — Ctrl-C to stop"]
    if not session.sources:
        lines.append("  waiting for trace file(s) to appear ...")
        return lines
    for source in session.sources:
        builder = source.builder
        if builder.last_record is None:
            lines.append(f"{source.name}: no records yet")
            continue
        report = builder.report(slowest=session.top)
        running = sorted(
            builder.running_shards(),
            key=lambda p: builder.shard_age_s(p) or 0.0,
            reverse=True,
        )
        status = "finished" if source.finished else f"{len(running)} running"
        lines.append(f"{source.name}: {status}")
        p95 = report.duration_p95_s
        for profile in running[: max(1, session.top)]:
            age = builder.shard_age_s(profile)
            age_text = f"{age:8.2f}s" if age is not None else "       ?"
            flag = ""
            if p95 is not None and age is not None and age > p95:
                flag = f"  !straggler (p95 {p95:.2f}s)"
            worker = f"  worker={profile.worker}" if profile.worker else ""
            lines.append(
                f"  in flight {profile.name:<40} {age_text}{worker}{flag}"
            )
        lines.extend(report.render().splitlines())
    return lines


class LiveRenderer:
    """Renders follow snapshots: ANSI repaint on a TTY, plain lines otherwise.

    The dashboard repaints in place (home + clear-to-end per line, so a
    shrinking frame leaves no stale rows); non-TTY output appends one
    snapshot line per source per render, which is what a log file or CI
    capture wants.
    """

    def __init__(
        self, stream: Optional[TextIO] = None, tty: Optional[bool] = None
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if tty is None:
            isatty = getattr(self.stream, "isatty", None)
            tty = bool(isatty()) if callable(isatty) else False
        self.tty = tty
        self.snapshots = 0

    def render(self, session: FollowSession) -> None:
        if self.tty:
            prefix = "\x1b[2J\x1b[H" if self.snapshots == 0 else "\x1b[H"
            body = "".join(
                line + "\x1b[K\n" for line in dashboard_lines(session)
            )
            self.stream.write(prefix + body + "\x1b[J")
        else:
            for line in snapshot_lines(session):
                self.stream.write(line + "\n")
        self.snapshots += 1
        self.stream.flush()

    def close(self) -> None:
        """Leave the terminal on a fresh line after a repaint dashboard."""
        if self.tty and self.snapshots:
            self.stream.write("\n")
            self.stream.flush()


def follow_trace(
    path: PathLike,
    interval_s: float = DEFAULT_INTERVAL_S,
    top: int = 5,
    stream: Optional[TextIO] = None,
    out: Optional[TextIO] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    renderer: Optional[LiveRenderer] = None,
) -> int:
    """Tail a growing trace (or directory of traces) until the run ends.

    Renders a snapshot to ``stream`` every ``interval_s`` seconds; file
    polls between renders follow a capped-exponential idle schedule
    (:class:`~repro.engine.executors.BackoffPoller`), resetting whenever
    new records arrive.  Returns 0 after the final ``plan-finished``
    record (single-file mode) or Ctrl-C, having printed the final
    aggregate report(s) to ``out`` — byte-identical to ``repro trace
    report`` run post-hoc on the same file; returns 1 on a corrupt trace.
    ``clock``/``sleep``/``renderer`` are injectable for tests.
    """
    stream = stream if stream is not None else sys.stderr
    out = out if out is not None else sys.stdout
    interval_s = max(0.0, interval_s)
    session = FollowSession(path, top=top)
    view = renderer if renderer is not None else LiveRenderer(stream=stream)
    poller = BackoffPoller(base_s=0.02, cap_s=max(0.25, interval_s))
    next_render = clock()
    try:
        while True:
            if session.poll():
                poller.reset()
            if session.finished:
                view.render(session)
                break
            if clock() >= next_render:
                view.render(session)
                next_render = clock() + interval_s
            sleep(poller.next_delay())
    except KeyboardInterrupt:
        try:
            session.poll()  # drain whatever is already on disk
        except EngineTraceError:
            pass
    except EngineTraceError as exc:
        view.close()
        print(f"[trace] {exc}", file=stream)
        return 1
    view.close()
    reported = [s for s in session.sources if s.builder.events]
    for index, source in enumerate(reported):
        if session.directory_mode or len(reported) > 1:
            if index:
                print(file=out)
            print(f"== {source.name} ==", file=out)
        print(source.builder.report(slowest=top).render(), file=out)
    return 0
