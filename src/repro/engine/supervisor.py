"""Fault-tolerant shard supervision: retries, backoff, quarantine, resume.

:class:`ShardSupervisor` is the production execution path of the engine
(the default behind :func:`repro.engine.run_plans`).  Where the plain
executors treat a failure as "retry once, in-process, and hope", the
supervisor treats the campaign harness itself as a reliability-critical
system — the same stance the paper takes toward SSD firmware:

- **bounded retries with exponential backoff** — each failed shard is
  retried up to :attr:`RetryPolicy.max_retries` times with exponentially
  growing, deterministically jittered delays.  The jitter derives from the
  shard seed and attempt number only; it never feeds the simulation, so
  retried shards reproduce their first attempt's result bit-for-bit and
  ``jobs=1`` / ``jobs=N`` determinism survives any failure pattern.
- **true timeout enforcement** — a shard's clock starts when a worker is
  *observed running* it (not at submit).  On expiry the wedged future is
  cancelled and, since a running worker cannot be cancelled, the whole
  pool is killed (worker processes terminated) and rebuilt; remaining
  shards keep running on the fresh pool instead of silently degrading to
  serial in-process execution.
- **broken-pool recovery with isolation probing** — when a worker dies
  (``BrokenProcessPool``) every pending future is lost and the culprit is
  unknown, so nobody is charged an attempt; the pool is rebuilt and the
  head shard is re-run *alone*.  Only a shard that fails in isolation has
  its attempt count incremented, so a single poison shard cannot exhaust
  innocent shards' retry budgets by repeatedly crashing shared pools.
- **poison-shard quarantine** — a shard that exhausts its budget is
  quarantined: the campaign completes, the shard is recorded in
  :class:`~repro.core.results.ExecutionStats` (and the journal) instead of
  crashing the fleet.  With ``quarantine_enabled=False`` (the library
  default) the supervisor raises
  :class:`~repro.errors.ShardFailureError` instead, because a silently
  short merged result is worse than a loud failure.
- **write-ahead checkpointing** — with a
  :class:`~repro.engine.checkpoint.CheckpointJournal` attached, every
  completed shard is fsync'd to the journal before it is reported
  finished, and a :class:`~repro.engine.checkpoint.ResumeState` lets a
  restarted campaign skip already-journaled shards entirely.
- **graceful interrupt** — SIGINT/SIGTERM set a flag; at the next safe
  point the supervisor kills the pool and raises
  :class:`~repro.errors.CampaignInterrupted`.  Journal appends are
  per-record durable, so everything acknowledged before the signal is
  resumable.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.core.results import CampaignResult, ExecutionStats, ShardTiming
from repro.engine.checkpoint import CheckpointJournal, ResumeState
from repro.engine.executors import (
    BackoffPoller,
    POLL_CAP_S,
    ShardKey,
    ShardTask,
    _run_shard_task,
)
from repro.engine.plan import merge_shard_results
from repro.engine.progress import EngineTelemetry
from repro.errors import CampaignInterrupted, ShardFailureError

_MASK64 = 0xFFFFFFFFFFFFFFFF


class InterruptFlag:
    """Latch set by SIGINT/SIGTERM; truthy once a signal has landed."""

    def __init__(self) -> None:
        self.signal_name: Optional[str] = None

    def __bool__(self) -> bool:
        return self.signal_name is not None


@contextmanager
def interrupt_flag_guard() -> Iterator[InterruptFlag]:
    """Install SIGINT/SIGTERM flag handlers for the guarded block.

    Handlers only install on the main thread (signal semantics); elsewhere
    the yielded flag simply never trips.  Previous handlers are restored on
    exit.  Shared by :class:`ShardSupervisor` and the remote coordinator so
    both interpret an interrupt the same way: set a flag, let the execution
    loop reach a safe point, flush, raise
    :class:`~repro.errors.CampaignInterrupted`.
    """
    flag = InterruptFlag()
    previous = {}
    if threading.current_thread() is threading.main_thread():
        def _set(signum, frame):  # pragma: no cover - exercised via CLI test
            flag.signal_name = signal.Signals(signum).name

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, _set)
            except (ValueError, OSError):  # pragma: no cover
                pass
    try:
        yield flag
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def _mix64(a: int, b: int) -> int:
    """SplitMix64-style avalanche of a pair (for backoff jitter only)."""
    x = (int(a) ^ (int(b) * 0x9E3779B97F4A7C15)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule for one campaign run.

    ``max_retries`` is the number of *re*-attempts after the first try
    (budget of ``max_retries + 1`` attempts per shard).  Backoff for the
    ``n``-th failure is ``base * factor**(n-1)`` capped at ``max_s``, then
    shrunk by up to ``jitter_fraction`` using a deterministic hash of
    ``(shard seed, attempt)`` — reproducible, desynchronised, and
    guaranteed never to touch simulation seeds.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter_fraction: float = 0.5

    @property
    def max_attempts(self) -> int:
        """Total attempts allowed per shard."""
        return self.max_retries + 1

    def backoff_s(self, shard_seed: int, failure_index: int) -> float:
        """Delay before retrying after the ``failure_index``-th failure (1-based)."""
        raw = self.backoff_base_s * self.backoff_factor ** max(0, failure_index - 1)
        raw = min(self.backoff_max_s, raw)
        jitter = _mix64(shard_seed, failure_index) / float(2**64)
        return raw * (1.0 - self.jitter_fraction * jitter)


@dataclass
class ShardRun:
    """How one shard concluded: its result (if any) and execution story.

    ``pickup_latency_s`` (submit to observed pickup) and ``duration_s``
    (pickup to completion of the successful attempt) are populated by the
    supervisor where observable; resumed shards never ran, so theirs stay
    ``None``.  The timing feeds
    :class:`~repro.core.results.ShardTiming` on the merged result.
    """

    result: Optional[CampaignResult]
    attempts: int
    status: str  # "completed" | "resumed" | "quarantined"
    error: str = ""
    pickup_latency_s: Optional[float] = None
    duration_s: Optional[float] = None


def merge_plan_runs(plan, ordered_runs: Sequence[ShardRun]) -> CampaignResult:
    """Fold one plan's shard runs into a merged result + execution stats.

    Quarantined shards contribute no cycles (the merged result is
    *degraded*, and says so through ``result.execution``); a plan whose
    every shard was quarantined still completes, as an empty result.

    Shared by the in-process driver (:func:`repro.engine.run_plans`) and
    the campaign service client (:mod:`repro.engine.serve`), which both
    rebuild merged campaign results from per-shard runs — keeping the two
    paths bit-identical by construction.
    """
    completed = tuple(run.result for run in ordered_runs if run.result is not None)
    if completed:
        merged = merge_shard_results(plan, completed)
    else:
        merged = CampaignResult(label=plan.display_label())
    stats = ExecutionStats()
    for index, run in enumerate(ordered_runs):
        stats.attempts.append(run.attempts)
        stats.retries += max(0, run.attempts - 1)
        if run.status == "resumed":
            stats.shards_resumed += 1
            stats.retries -= max(0, run.attempts - 1)  # not retried *this* run
        elif run.status == "quarantined":
            stats.shards_quarantined += 1
            stats.quarantined.append(f"{plan.display_label()}#s{index}")
        else:
            stats.shards_completed += 1
        stats.timings.append(
            ShardTiming(
                shard_index=index,
                status=run.status,
                attempts=run.attempts,
                pickup_latency_s=run.pickup_latency_s,
                duration_s=run.duration_s,
            )
        )
    merged.execution = stats
    return merged


class ShardSupervisor:
    """Executes shard tasks with retries, quarantine, checkpoint, resume.

    Drop-in for the executor protocol except that it yields
    ``(key, ShardRun)`` pairs (:func:`repro.engine.run_plans` accepts
    both).  ``jobs <= 1`` runs shards in-process (retry/quarantine/journal
    still apply; timeouts need worker processes and are ignored);
    ``jobs > 1`` manages its own ``ProcessPoolExecutor``, killing and
    rebuilding it when workers wedge or die.
    """

    def __init__(
        self,
        jobs: int = 1,
        shard_timeout_s: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[CheckpointJournal] = None,
        resume: Optional[ResumeState] = None,
        quarantine_enabled: bool = False,
        sleep=time.sleep,
        poll_interval_s: float = POLL_CAP_S,
    ) -> None:
        self.jobs = max(1, jobs if jobs else 1)
        self.shard_timeout_s = shard_timeout_s
        self.policy = policy if policy is not None else RetryPolicy()
        self.journal = journal
        self.resume = resume if resume is not None else ResumeState()
        self.quarantine_enabled = quarantine_enabled
        # Cap of the exponential head-of-line poll schedule (also bounds
        # how long an interrupt waits to be noticed).
        self.poll_interval_s = poll_interval_s
        self._sleep = sleep
        self._interrupt = InterruptFlag()

    # -- public entry ---------------------------------------------------------------

    def execute(
        self, tasks: Sequence[ShardTask], telemetry: EngineTelemetry
    ) -> Iterator[Tuple[ShardKey, ShardRun]]:
        """Yield ``(key, ShardRun)`` in task order, supervising execution."""
        with self._signal_guard():
            if self.jobs <= 1:
                yield from self._execute_serial(tasks, telemetry)
            else:
                yield from self._execute_parallel(tasks, telemetry)

    # -- signal handling ------------------------------------------------------------

    @contextmanager
    def _signal_guard(self):
        """Install SIGINT/SIGTERM flag handlers (main thread only)."""
        with interrupt_flag_guard() as flag:
            self._interrupt = flag
            yield

    def _raise_if_interrupted(self, pool: Optional[ProcessPoolExecutor]) -> None:
        if not self._interrupt:
            return
        if self.journal is not None:
            self.journal.close()  # appends are already fsync'd; release the handle
        if pool is not None:
            self._kill_pool(pool)
        raise CampaignInterrupted(
            f"campaign interrupted by {self._interrupt.signal_name}; "
            "checkpoint journal is flushed — restart with resume to continue"
        )

    # -- shared helpers -------------------------------------------------------------

    def _commit(
        self,
        plan_index: int,
        plan,
        shard,
        result: CampaignResult,
        attempts: int,
        telemetry: EngineTelemetry,
        worker_pid: Optional[int] = None,
        commit_lag_s: Optional[float] = None,
    ) -> None:
        """Durably journal a completed shard, then report it."""
        label = plan.display_label()
        if self.journal is not None:
            self.journal.append_shard(
                plan_index, shard.index, result, attempts, label=label
            )
            telemetry.checkpoint_written(
                label, shard.index, shard.count, commit_lag_s=commit_lag_s
            )
        telemetry.shard_finished(
            label,
            shard.index,
            shard.count,
            shard.faults,
            attempt=attempts,
            worker_pid=worker_pid,
        )

    def _quarantine(
        self,
        plan_index: int,
        plan,
        shard,
        attempts: int,
        reason: str,
        telemetry: EngineTelemetry,
        pool: Optional[ProcessPoolExecutor],
    ) -> ShardRun:
        """Record a poisoned shard; raise instead if quarantine is disabled."""
        label = plan.display_label()
        if self.journal is not None:
            self.journal.append_quarantine(plan_index, shard.index, attempts, reason)
        telemetry.shard_quarantined(
            label, shard.index, shard.count, reason, attempt=attempts
        )
        if not self.quarantine_enabled:
            if pool is not None:
                self._kill_pool(pool)
            raise ShardFailureError(
                f"shard {label}#s{shard.index} failed after {attempts} attempts "
                f"({reason}); enable quarantine to complete degraded campaigns"
            )
        return ShardRun(result=None, attempts=attempts, status="quarantined", error=reason)

    def _resumed_run(self, plan, shard, key: ShardKey, telemetry) -> ShardRun:
        telemetry.shard_skipped(
            plan.display_label(), shard.index, shard.count, shard.faults
        )
        return ShardRun(
            result=self.resume.results[key],
            attempts=self.resume.attempts.get(key, 1),
            status="resumed",
        )

    # -- serial path ----------------------------------------------------------------

    def _execute_serial(
        self, tasks: Sequence[ShardTask], telemetry: EngineTelemetry
    ) -> Iterator[Tuple[ShardKey, ShardRun]]:
        for plan_index, plan, shard in tasks:
            key = (plan_index, shard.index)
            if key in self.resume.results:
                yield key, self._resumed_run(plan, shard, key, telemetry)
                continue
            label = plan.display_label()
            attempt = 1
            while True:
                self._raise_if_interrupted(None)
                telemetry.shard_started(
                    label,
                    shard.index,
                    shard.count,
                    attempt=attempt,
                    worker_pid=os.getpid(),
                )
                attempt_started = time.monotonic()
                try:
                    result = _run_shard_task(plan, shard, attempt)
                except Exception as exc:
                    reason = repr(exc)
                    if attempt >= self.policy.max_attempts:
                        yield key, self._quarantine(
                            plan_index, plan, shard, attempt, reason, telemetry, None
                        )
                        break
                    telemetry.shard_retried(
                        label, shard.index, shard.count, reason, attempt=attempt
                    )
                    self._sleep(self.policy.backoff_s(shard.seed, attempt))
                    attempt += 1
                    continue
                duration = time.monotonic() - attempt_started
                self._commit(
                    plan_index,
                    plan,
                    shard,
                    result,
                    attempt,
                    telemetry,
                    worker_pid=os.getpid(),
                    commit_lag_s=0.0 if self.journal is not None else None,
                )
                yield key, ShardRun(
                    result=result,
                    attempts=attempt,
                    status="completed",
                    pickup_latency_s=0.0,
                    duration_s=duration,
                )
                break

    # -- parallel path --------------------------------------------------------------

    def _new_pool(self, task_count: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=min(self.jobs, max(1, task_count)))

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even when its workers are wedged.

        ``shutdown`` alone never reclaims a worker stuck in user code (the
        interpreter would then hang at exit joining it), so remaining
        worker processes are terminated outright.
        """
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        finally:
            workers = getattr(pool, "_processes", None)
            members = list(workers.values()) if workers else []
            for process in members:
                if process.is_alive():
                    process.terminate()
            for process in members:
                process.join(timeout=2.0)

    def _execute_parallel(
        self, tasks: Sequence[ShardTask], telemetry: EngineTelemetry
    ) -> Iterator[Tuple[ShardKey, ShardRun]]:
        by_key: Dict[ShardKey, ShardTask] = {
            (plan_index, shard.index): (plan_index, plan, shard)
            for plan_index, plan, shard in tasks
        }
        live = [
            (plan_index, shard.index)
            for plan_index, plan, shard in tasks
            if (plan_index, shard.index) not in self.resume.results
        ]
        attempts: Dict[ShardKey, int] = {key: 1 for key in live}
        futures: Dict[ShardKey, object] = {}
        started: Set[ShardKey] = set()
        submitted_at: Dict[ShardKey, float] = {}
        started_at: Dict[ShardKey, float] = {}
        done_at: Dict[ShardKey, float] = {}
        collected: Set[ShardKey] = set()
        probing = False

        pool = self._new_pool(len(live))

        def submit(key: ShardKey) -> None:
            nonlocal pool
            plan_index, plan, shard = by_key[key]
            started.discard(key)
            started_at.pop(key, None)
            done_at.pop(key, None)
            submitted_at[key] = time.monotonic()
            try:
                futures[key] = pool.submit(_run_shard_task, plan, shard, attempts[key])
            except BrokenExecutor:
                # A poison shard submitted an instant ago can kill the pool
                # before this submit lands.  A fresh pool cannot be broken,
                # so one rebuild is always enough; stale futures from the
                # dead pool read as cancelled and re-enter via wait_head.
                pool = self._rebuild_pool(pool, len(live))
                futures[key] = pool.submit(_run_shard_task, plan, shard, attempts[key])

        def scan_starts() -> bool:
            """Observe pickups and completions (for telemetry and timing).

            Returns whether anything new was observed, so the wait loop can
            reset its poll backoff when the pool is making progress.
            """
            now = time.monotonic()
            observed = False
            for key, future in futures.items():
                if key in collected:
                    continue
                if key not in started and (future.running() or future.done()):
                    started.add(key)
                    started_at[key] = now
                    observed = True
                    plan_index, plan, shard = by_key[key]
                    telemetry.shard_started(
                        plan.display_label(),
                        shard.index,
                        shard.count,
                        attempt=attempts[key],
                    )
                if key not in done_at and future.done() and not future.cancelled():
                    # First observation of the result being available; the
                    # gap until head-of-line commit is the checkpoint lag.
                    done_at[key] = now
                    observed = True
            return observed

        def resubmit_pending(except_key: Optional[ShardKey]) -> None:
            """Re-queue every uncollected shard whose future died with the pool."""
            for key in live:
                if key in collected or key == except_key:
                    continue
                future = futures.get(key)
                if (
                    future is not None
                    and future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    continue  # finished before the pool broke; result retained
                submit(key)

        def wait_head(key: ShardKey):
            """Block (politely) on the head-of-line shard; classify the outcome.

            Polls on a capped exponential schedule: pool progress resets
            the backoff, a quiet pool settles at ``poll_interval_s``.
            """
            future = futures[key]
            poller = BackoffPoller(cap_s=self.poll_interval_s)
            while True:
                self._raise_if_interrupted(pool)
                if scan_starts():
                    poller.reset()
                if future.done() and not future.cancelled():
                    exc = future.exception()
                    if exc is None:
                        return "ok", future.result()
                    if isinstance(exc, BrokenExecutor):
                        return "broken", exc
                    return "error", exc
                if future.cancelled():
                    return "broken", RuntimeError("future cancelled by pool teardown")
                if (
                    self.shard_timeout_s is not None
                    and key in started_at
                    and time.monotonic() - started_at[key] > self.shard_timeout_s
                ):
                    return "timeout", None
                time.sleep(poller.next_delay())

        try:
            for key in live:
                submit(key)
            for plan_index, plan, shard in tasks:
                key = (plan_index, shard.index)
                if key in self.resume.results:
                    yield key, self._resumed_run(plan, shard, key, telemetry)
                    continue
                label = plan.display_label()
                while True:
                    kind, payload = wait_head(key)
                    if kind == "ok":
                        now = time.monotonic()
                        finished_at = done_at.get(key, now)
                        picked_up = started_at.get(key, finished_at)
                        pickup = (
                            picked_up - submitted_at[key]
                            if key in submitted_at
                            else None
                        )
                        self._commit(
                            plan_index,
                            plan,
                            shard,
                            payload,
                            attempts[key],
                            telemetry,
                            commit_lag_s=(
                                now - finished_at if self.journal is not None else None
                            ),
                        )
                        collected.add(key)
                        yield key, ShardRun(
                            result=payload,
                            attempts=attempts[key],
                            status="completed",
                            pickup_latency_s=pickup,
                            duration_s=finished_at - picked_up,
                        )
                        if probing:
                            resubmit_pending(except_key=None)
                            probing = False
                        break

                    if kind == "timeout":
                        reason = (
                            f"timeout: no result {self.shard_timeout_s}s after pickup"
                        )
                        charged = True
                        futures[key].cancel()
                        pool = self._rebuild_pool(pool, len(live))
                        probing = True
                    elif kind == "broken":
                        reason = repr(payload)
                        # In probe mode the shard ran alone, so the crash is
                        # provably its own; otherwise nobody is charged yet.
                        charged = probing
                        pool = self._rebuild_pool(pool, len(live))
                        probing = True
                    else:  # worker raised; pool is still healthy
                        reason = repr(payload)
                        charged = True

                    if charged:
                        if attempts[key] >= self.policy.max_attempts:
                            collected.add(key)
                            run = self._quarantine(
                                plan_index,
                                plan,
                                shard,
                                attempts[key],
                                reason,
                                telemetry,
                                pool,
                            )
                            yield key, run
                            if probing:
                                resubmit_pending(except_key=key)
                                probing = False
                            break
                        telemetry.shard_retried(
                            label, shard.index, shard.count, reason,
                            attempt=attempts[key],
                        )
                        self._raise_if_interrupted(pool)
                        self._sleep(
                            self.policy.backoff_s(shard.seed, attempts[key])
                        )
                        attempts[key] += 1
                    submit(key)
        finally:
            self._kill_pool(pool)

    def _rebuild_pool(
        self, pool: ProcessPoolExecutor, task_count: int
    ) -> ProcessPoolExecutor:
        self._kill_pool(pool)
        return self._new_pool(task_count)
