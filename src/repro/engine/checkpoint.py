"""Write-ahead shard-result journal (crash-safe campaign checkpoints).

The engine applies the paper's own crash-consistency discipline to itself:
every completed shard is committed to an **append-only JSONL journal**
before the campaign moves on, so a killed multi-hour run restarts from the
last durable shard instead of from zero.  The design mirrors
:mod:`repro.ftl.journal`'s contract at the host level:

- **append-only**: records are only ever appended; a resumed run keeps
  appending to the same file (no rewrite, so there is no window in which
  the journal itself can be lost);
- **per-record checksums**: each line carries a CRC32 over its canonical
  JSON payload, so torn or bit-flipped records are detected on replay;
- **fsync on commit**: a record is flushed *and* fsync'd before the
  supervisor reports the shard finished — an acknowledged shard is a
  durable shard;
- **torn-tail tolerant replay**: a partial or checksum-failing *final*
  line (the crash-mid-append case) is silently discarded, exactly like a
  torn journal transaction; corruption anywhere before the tail raises
  :class:`~repro.errors.CheckpointError` because it means the file was
  damaged, not torn.

Records are keyed by ``(plan fingerprint, plan index, shard index)``.  The
fingerprint hashes every plan field (workload spec, device config, fault
budget, seeds, shard granularity), so a journal written for one campaign
can never leak results into a different one: mismatched records are
counted and ignored on replay.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, IO, Optional, Sequence, Tuple, Union

from repro.core.results import CampaignResult, FaultCycleResult
from repro.errors import CheckpointError

PathLike = Union[str, Path]
ShardKey = Tuple[int, int]

JOURNAL_VERSION = 1


# -- lossless CampaignResult codec --------------------------------------------------
#
# ``repro.analysis.export`` serialises for *plotting* (it includes derived
# summaries and may drop bookkeeping fields); the journal must round-trip
# exactly, so it walks dataclass fields — a field added to
# ``FaultCycleResult`` is carried automatically.


def result_to_record(result: CampaignResult) -> Dict:
    """JSON-safe, field-complete dump of one shard's result."""
    return {
        "label": result.label,
        "traffic_time_us": result.traffic_time_us,
        "requests_issued": result.requests_issued,
        "cycles": [
            {f.name: getattr(cycle, f.name) for f in fields(FaultCycleResult)}
            for cycle in result.cycles
        ],
    }


def result_from_record(record: Dict) -> CampaignResult:
    """Rebuild a shard result from :func:`result_to_record` output."""
    try:
        result = CampaignResult(
            label=record["label"],
            traffic_time_us=record["traffic_time_us"],
            requests_issued=record["requests_issued"],
        )
        for cycle in record["cycles"]:
            result.add_cycle(FaultCycleResult(**cycle))
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed shard result record: {exc!r}") from exc
    return result


def result_schema_version() -> str:
    """Content-derived version of the shard-result codec's field layout.

    Hashes the journal version, the record's top-level keys, and the
    sorted :class:`FaultCycleResult` field names — so adding (or renaming)
    a cycle counter bumps the version automatically, without anyone
    remembering to.  Long-lived stores (the serve daemon's CAS) stamp
    every entry with this and treat a mismatch as a miss: a record written
    by a codec with a different shape is re-executed, never silently
    decoded into wrong-shaped results.
    """
    cycle_fields = ",".join(sorted(f.name for f in fields(FaultCycleResult)))
    blob = (
        f"journal={JOURNAL_VERSION};"
        f"record=label,traffic_time_us,requests_issued,cycles;"
        f"cycle={cycle_fields}"
    )
    return f"{zlib.crc32(blob.encode('utf-8')):08x}"


# -- fingerprints -------------------------------------------------------------------


def plans_fingerprint(plans: Sequence) -> str:
    """Stable fingerprint of an ordered plan batch.

    Combines each plan's own :meth:`CampaignPlan.fingerprint`; resume is
    only valid against the byte-identical campaign definition in the same
    plan order (plan index is part of every record's key).
    """
    blob = "|".join(plan.fingerprint() for plan in plans)
    return f"{zlib.crc32(blob.encode('utf-8')):08x}-{len(plans)}"


# -- journal records ----------------------------------------------------------------


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_line(payload: Dict) -> str:
    """One canonical-JSON journal/CAS line with its CRC32 appended."""
    crc = zlib.crc32(_canonical(payload).encode("utf-8"))
    record = dict(payload)
    record["crc"] = crc
    return _canonical(record)


def decode_line(line: str) -> Dict:
    """Parse + checksum-verify one journal line (raises on any damage)."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise CheckpointError("journal line is not an object")
    crc = record.pop("crc", None)
    if crc != zlib.crc32(_canonical(record).encode("utf-8")):
        raise CheckpointError("journal record checksum mismatch")
    return record


class CheckpointJournal:
    """Append-side of the shard journal (one campaign run, one writer).

    The file handle opens lazily on first commit, in append mode, so
    pointing ``--checkpoint`` at an existing journal resumes *and* extends
    it.  Every append is flushed and fsync'd before returning.
    """

    def __init__(self, path: PathLike, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.records_written = 0
        self._handle: Optional[IO[str]] = None

    def _append(self, payload: Dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(encode_line(payload) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records_written += 1

    def append_shard(
        self,
        plan_index: int,
        shard_index: int,
        result: CampaignResult,
        attempts: int,
        label: str = "",
    ) -> None:
        """Durably commit one completed shard result."""
        self._append(
            {
                "v": JOURNAL_VERSION,
                "kind": "shard",
                "fp": self.fingerprint,
                "plan": plan_index,
                "shard": shard_index,
                "attempts": attempts,
                "label": label,
                "result": result_to_record(result),
            }
        )

    def append_quarantine(
        self, plan_index: int, shard_index: int, attempts: int, reason: str
    ) -> None:
        """Record a quarantined shard (audit only — replay re-attempts it)."""
        self._append(
            {
                "v": JOURNAL_VERSION,
                "kind": "quarantine",
                "fp": self.fingerprint,
                "plan": plan_index,
                "shard": shard_index,
                "attempts": attempts,
                "reason": reason,
            }
        )

    def close(self) -> None:
        """Flush and release the file handle (appends may resume later)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- replay -------------------------------------------------------------------------


@dataclass
class ResumeState:
    """Everything replayed from a journal for one campaign fingerprint.

    ``results``/``attempts`` are keyed by ``(plan index, shard index)``.
    Duplicate keys keep the *latest* record (a shard re-executed by a later
    run supersedes the earlier commit).  Quarantine records are counted but
    deliberately do not mark a shard done — a resumed run gives poisoned
    shards a fresh retry budget.
    """

    results: Dict[ShardKey, CampaignResult] = field(default_factory=dict)
    attempts: Dict[ShardKey, int] = field(default_factory=dict)
    mismatched: int = 0
    quarantine_records: int = 0
    dropped_tail: bool = False

    def __len__(self) -> int:
        return len(self.results)


def load_resume_state(path: PathLike, fingerprint: str) -> ResumeState:
    """Replay a journal, tolerating a torn tail.

    A missing file is an empty state (first run).  A record that fails to
    parse or checksum is discarded if it is the final non-blank line
    (crash mid-append), and raises :class:`CheckpointError` otherwise.
    """
    state = ResumeState()
    journal_path = Path(path)
    if not journal_path.exists():
        return state
    lines = journal_path.read_text(encoding="utf-8").splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    for index, line in enumerate(lines):
        if not line.strip():
            raise CheckpointError(f"blank journal line {index + 1} before tail")
        try:
            record = decode_line(line)
        except (CheckpointError, ValueError) as exc:
            if index == len(lines) - 1:
                state.dropped_tail = True
                break
            raise CheckpointError(
                f"corrupt journal record at line {index + 1} of {journal_path}"
            ) from exc
        if record.get("fp") != fingerprint:
            state.mismatched += 1
            continue
        if record.get("kind") == "quarantine":
            state.quarantine_records += 1
            continue
        if record.get("kind") != "shard":
            continue
        key = (record["plan"], record["shard"])
        state.results[key] = result_from_record(record["result"])
        state.attempts[key] = int(record.get("attempts", 1))
    return state


# -- compaction ---------------------------------------------------------------------


@dataclass(frozen=True)
class CompactionStats:
    """What :func:`compact_journal` rewrote (for console reporting)."""

    records_in: int
    records_out: int
    duplicates_dropped: int
    quarantine_dropped: int
    torn_tail_dropped: bool

    @property
    def dropped(self) -> int:
        return self.records_in - self.records_out


def compact_journal(path: PathLike) -> CompactionStats:
    """Rewrite a journal to one latest record per shard, atomically.

    Journals are append-only: every resume appends fresh shard commits and
    quarantine audit records, so a long-lived journal grows without bound
    even though replay only ever uses the *latest* record per ``(plan
    fingerprint, plan index, shard index)``.  Compaction keeps exactly
    that record (records of other fingerprints are kept too — they belong
    to other campaign definitions sharing the file), drops quarantine
    records (audit-only; replay re-attempts quarantined shards
    regardless), and drops a torn final line.

    The rewrite is torn-tail-safe: the compacted journal is written to a
    sibling temp file, fsync'd, then atomically ``os.replace``d over the
    original (with a directory fsync), so a crash mid-compaction leaves
    either the old journal or the new one — never a hybrid.

    Raises :class:`~repro.errors.CheckpointError` for a missing file or
    corruption anywhere before the tail.
    """
    journal_path = Path(path)
    if not journal_path.exists():
        raise CheckpointError(f"journal not found: {journal_path}")
    lines = journal_path.read_text(encoding="utf-8").splitlines()
    while lines and not lines[-1].strip():
        lines.pop()

    torn_tail = False
    records: list = []
    for index, line in enumerate(lines):
        try:
            if not line.strip():
                raise CheckpointError("blank journal line")
            records.append(decode_line(line))
        except (CheckpointError, ValueError) as exc:
            if index == len(lines) - 1:
                torn_tail = True
                break
            raise CheckpointError(
                f"corrupt journal record at line {index + 1} of {journal_path}"
            ) from exc

    latest: Dict[Tuple, Dict] = {}
    order: Dict[Tuple, int] = {}
    quarantine_dropped = 0
    passthrough: list = []  # (position, record) for unrecognised kinds
    for position, record in enumerate(records):
        kind = record.get("kind")
        if kind == "quarantine":
            quarantine_dropped += 1
            continue
        if kind == "shard":
            key = (record.get("fp"), record.get("plan"), record.get("shard"))
            if key not in order:
                order[key] = position
            latest[key] = record
            continue
        passthrough.append((position, record))

    kept = sorted(
        [(order[key], record) for key, record in latest.items()] + passthrough
    )
    duplicates = len(records) - quarantine_dropped - len(kept)

    tmp_path = journal_path.with_name(journal_path.name + ".compact.tmp")
    with tmp_path.open("w", encoding="utf-8") as handle:
        for _, record in kept:
            handle.write(encode_line(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, journal_path)
    directory = os.open(journal_path.parent, os.O_RDONLY)
    try:
        os.fsync(directory)
    finally:
        os.close(directory)

    return CompactionStats(
        records_in=len(records),
        records_out=len(kept),
        duplicates_dropped=duplicates,
        quarantine_dropped=quarantine_dropped,
        torn_tail_dropped=torn_tail,
    )
