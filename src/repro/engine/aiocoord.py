"""Asyncio coordinator core shared by ``RemoteExecutor`` and ``repro serve``.

The blocking coordinator used one thread per worker connection; both the
refactored :class:`~repro.engine.remote.RemoteExecutor` and the campaign
service (:mod:`repro.engine.serve`) now multiplex every connection on one
asyncio event loop.  This module is the part they share:

- :func:`read_frame` / :func:`write_frame` — the asyncio frame codec.
  Byte-for-byte the protocol of :func:`repro.engine.wire.send_frame` /
  :func:`~repro.engine.wire.recv_frame`, so a worker cannot tell which
  pump it is talking to.
- :class:`CoordinatorCore` — the lease/retry/checkpoint state machine for
  one plan batch, extracted from the old ``RemoteExecutor`` internals.
  Single-threaded by construction: every method runs on the owning event
  loop, so the old lock/condition choreography disappears instead of
  being ported.
- :func:`pump_worker_frames` — the per-connection conversation loop
  (request → shard/wait/shutdown, heartbeat, result/failure), run after
  the endpoint-specific handshake.

Endpoints differ only in what wraps the core: ``RemoteExecutor`` owns
exactly one (its campaign) and hands completions to a generator thread;
the campaign service owns one per active submission and adds fair-share
scheduling, a result CAS and trace followers on top.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.checkpoint import CheckpointJournal, result_from_record
from repro.engine.executors import ShardKey, ShardTask
from repro.engine.progress import EngineTelemetry
from repro.engine.supervisor import RetryPolicy, ShardRun
from repro.engine.wire import (
    _HEADER,
    decode_frame_body,
    encode_frame,
    MAX_FRAME_BYTES,
)
from repro.errors import RemoteProtocolError, ShardFailureError

SWEEP_INTERVAL_CAP_S = 0.25
"""Upper bound on the lease-sweeper period (also bounds stop latency)."""


# -- frame codec (asyncio streams) --------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise RemoteProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{_HEADER.size} bytes)"
        ) from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"declared frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise RemoteProtocolError(
            "connection closed between header and payload"
        ) from exc
    return decode_frame_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: Dict) -> None:
    """Serialize one JSON frame onto the stream (length-prefixed)."""
    writer.write(encode_frame(payload))
    await writer.drain()


# -- lease ledger -------------------------------------------------------------------


@dataclass
class Lease:
    """One shard's claim by one worker connection."""

    worker: str
    conn_id: int
    attempt: int
    granted_mono: float
    deadline_mono: float


class CoordinatorCore:
    """Lease, retry, quarantine and checkpoint state for one plan batch.

    The scheduling behaviour is exactly the blocking coordinator's:
    shards lease in task order, heartbeats move the lease deadline, a
    dropped connection or expired lease requeues the shard charged one
    attempt, and retries follow the campaign's
    :class:`~repro.engine.supervisor.RetryPolicy` backoff.  Completed
    shards journal (when a journal is attached) *before* they are
    reported finished, preserving the write-ahead ordering ``--resume``
    depends on.

    Not thread-safe on purpose — every call must come from the owning
    event loop.  Completion fan-out happens through two callbacks:
    ``on_done(key, run)`` fires for every shard that reaches a terminal
    state (completed or quarantined), ``on_fatal(exc)`` fires when a
    shard exhausts its budget with quarantine disabled.  After a fatal,
    grants turn into ``shutdown`` frames so workers drain cleanly.
    """

    def __init__(
        self,
        tasks: Sequence[ShardTask],
        policy: RetryPolicy,
        telemetry: EngineTelemetry,
        journal: Optional[CheckpointJournal] = None,
        quarantine_enabled: bool = False,
        shard_timeout_s: Optional[float] = None,
        lease_timeout_s: float = 15.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self.telemetry = telemetry
        self.journal = journal
        self.quarantine_enabled = quarantine_enabled
        self.shard_timeout_s = shard_timeout_s
        self.lease_timeout_s = max(0.1, lease_timeout_s)
        self.clock = clock
        self.order: List[ShardKey] = []
        self.by_key: Dict[ShardKey, ShardTask] = {}
        self.attempts: Dict[ShardKey, int] = {}
        self.ready: Dict[ShardKey, float] = {}
        self.ready_since: Dict[ShardKey, float] = {}
        self.leases: Dict[ShardKey, Lease] = {}
        self.done: Dict[ShardKey, ShardRun] = {}
        self.executed = 0
        self.fatal: Optional[Exception] = None
        self.on_done: Optional[Callable[[ShardKey, ShardRun], None]] = None
        self.on_fatal: Optional[Callable[[Exception], None]] = None
        now = self.clock()
        for task in tasks:
            plan_index, _plan, shard = task
            key = (plan_index, shard.index)
            self.order.append(key)
            self.by_key[key] = task
            self.attempts[key] = 1
            self.ready[key] = now
            self.ready_since[key] = now

    # -- population -----------------------------------------------------------------

    def prefill(self, key: ShardKey, run: ShardRun) -> None:
        """Mark a shard done before serving starts (resume or CAS hit).

        Prefilled shards never lease and never fire the completion
        callbacks — the owner already accounted for them.
        """
        self.ready.pop(key, None)
        self.ready_since.pop(key, None)
        self.attempts.pop(key, None)
        self.done[key] = run

    # -- queries --------------------------------------------------------------------

    @property
    def complete(self) -> bool:
        return len(self.done) >= len(self.order)

    def has_leasable(self, now: Optional[float] = None) -> bool:
        """True when a shard could be granted right now."""
        if self.fatal is not None:
            return False
        moment = self.clock() if now is None else now
        return any(
            not_before <= moment
            for key, not_before in self.ready.items()
            if key not in self.leases
        )

    # -- worker-facing transitions ----------------------------------------------------

    def grant(self, worker: str, conn_id: int) -> Dict:
        """Lease the first ready shard (task order), or say wait/shutdown."""
        if self.fatal is not None or self.complete:
            return {"kind": "shutdown"}
        now = self.clock()
        soonest: Optional[float] = None
        for key in self.order:
            if key in self.done or key in self.leases or key not in self.ready:
                continue
            not_before = self.ready[key]
            if not_before <= now:
                attempt = self.attempts[key]
                self.leases[key] = Lease(
                    worker=worker,
                    conn_id=conn_id,
                    attempt=attempt,
                    granted_mono=now,
                    deadline_mono=now + self.lease_timeout_s,
                )
                del self.ready[key]
                plan_index, plan, shard = self.by_key[key]
                self.telemetry.shard_started(
                    plan.display_label(),
                    shard.index,
                    shard.count,
                    attempt=attempt,
                    worker_pid=worker,
                )
                return {
                    "kind": "shard",
                    "plan": plan_index,
                    "shard": shard.index,
                    "attempt": attempt,
                }
            soonest = not_before if soonest is None else min(soonest, not_before)
        if soonest is not None:
            delay = min(1.0, max(0.05, soonest - now))
        else:
            delay = 0.5  # everything is leased out; check back shortly
        return {"kind": "wait", "delay_s": delay}

    def renew(self, frame: Dict, conn_id: int) -> None:
        key = (frame.get("plan"), frame.get("shard"))
        lease = self.leases.get(key)
        if lease is not None and lease.conn_id == conn_id:
            lease.deadline_mono = self.clock() + self.lease_timeout_s

    def outcome(self, frame: Dict, kind: str, worker: str, conn_id: int) -> None:
        """Apply a ``result`` or ``failure`` frame from a leased worker."""
        key = (frame.get("plan"), frame.get("shard"))
        attempt = frame.get("attempt")
        lease = self.leases.get(key)
        if lease is None or lease.conn_id != conn_id or lease.attempt != attempt:
            return  # stale outcome: the lease moved on; determinism makes it safe to drop
        del self.leases[key]
        if kind == "failure":
            self.fail_attempt(
                key, attempt, str(frame.get("error") or "worker reported failure")
            )
            return
        arrived = self.clock()
        try:
            result = result_from_record(frame.get("result"))
        except Exception as exc:
            self.fail_attempt(
                key, attempt, f"undecodable result from {worker}: {exc!r}"
            )
            return
        plan_index, plan, shard = self.by_key[key]
        label = plan.display_label()
        if self.journal is not None:
            self.journal.append_shard(
                plan_index, shard.index, result, attempt, label=label
            )
            self.telemetry.checkpoint_written(
                label,
                shard.index,
                shard.count,
                commit_lag_s=max(0.0, self.clock() - arrived),
            )
        self.telemetry.shard_finished(
            label,
            shard.index,
            shard.count,
            shard.faults,
            attempt=attempt,
            worker_pid=worker,
        )
        pickup = lease.granted_mono - self.ready_since.get(key, lease.granted_mono)
        self._record_done(
            key,
            ShardRun(
                result=result,
                attempts=attempt,
                status="completed",
                pickup_latency_s=max(0.0, pickup),
                duration_s=max(0.0, arrived - lease.granted_mono),
            ),
        )

    def release(self, conn_id: int, worker: str) -> None:
        """Requeue every shard the dropped connection was leasing."""
        for key, lease in list(self.leases.items()):
            if lease.conn_id == conn_id:
                del self.leases[key]
                self.fail_attempt(
                    key, lease.attempt, f"worker {worker} disconnected mid-shard"
                )

    def sweep(self) -> None:
        """Requeue shards whose lease expired or overran the shard timeout."""
        now = self.clock()
        for key, lease in list(self.leases.items()):
            if now > lease.deadline_mono:
                reason = (
                    f"lease expired: no heartbeat from {lease.worker} "
                    f"within {self.lease_timeout_s:g}s"
                )
            elif (
                self.shard_timeout_s is not None
                and now - lease.granted_mono > self.shard_timeout_s
            ):
                reason = (
                    f"timeout: no result from {lease.worker} "
                    f"{self.shard_timeout_s:g}s after lease"
                )
            else:
                continue
            del self.leases[key]
            self.fail_attempt(key, lease.attempt, reason)

    # -- internal transitions ---------------------------------------------------------

    def fail_attempt(self, key: ShardKey, attempt: int, reason: str) -> None:
        """Charge one failed attempt: backoff-retry, quarantine, or fatal."""
        if key in self.done or self.attempts.get(key) != attempt:
            return  # stale: a newer attempt already superseded this one
        plan_index, plan, shard = self.by_key[key]
        label = plan.display_label()
        if attempt >= self.policy.max_attempts:
            if self.journal is not None:
                self.journal.append_quarantine(plan_index, shard.index, attempt, reason)
            self.telemetry.shard_quarantined(
                label, shard.index, shard.count, reason, attempt=attempt
            )
            if not self.quarantine_enabled:
                exc = ShardFailureError(
                    f"shard {label}#s{shard.index} failed after {attempt} attempts "
                    f"({reason}); enable quarantine to complete degraded campaigns"
                )
                self.fatal = exc
                if self.on_fatal is not None:
                    self.on_fatal(exc)
                return
            self._record_done(
                key,
                ShardRun(
                    result=None, attempts=attempt, status="quarantined", error=reason
                ),
            )
            return
        self.telemetry.shard_retried(
            label, shard.index, shard.count, reason, attempt=attempt
        )
        now = self.clock()
        self.attempts[key] = attempt + 1
        self.ready[key] = now + self.policy.backoff_s(shard.seed, attempt)
        self.ready_since[key] = now

    def _record_done(self, key: ShardKey, run: ShardRun) -> None:
        self.done[key] = run
        if run.status == "completed":
            self.executed += 1
        if self.on_done is not None:
            self.on_done(key, run)


# -- shared connection pump ---------------------------------------------------------


class WorkerGate:
    """What a worker connection needs from its coordinator after handshake.

    ``RemoteExecutor`` implements this directly on its single
    :class:`CoordinatorCore`; the campaign service interposes fair-share
    scheduling across submissions before delegating to one.
    """

    def grant(self, worker: str, conn_id: int) -> Dict:
        raise NotImplementedError

    def renew(self, frame: Dict, conn_id: int) -> None:
        raise NotImplementedError

    def outcome(self, frame: Dict, kind: str, worker: str, conn_id: int) -> None:
        raise NotImplementedError

    def release(self, conn_id: int, worker: str) -> None:
        raise NotImplementedError


async def pump_worker_frames(
    gate: WorkerGate,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    worker: str,
) -> None:
    """Serve one post-handshake worker conversation until EOF.

    The caller owns handshake, exception policy and closing the writer;
    leases held by the connection are always released on the way out.
    """
    conn_id = id(writer)
    try:
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            kind = frame["kind"]
            if kind == "request":
                await write_frame(writer, gate.grant(worker, conn_id))
            elif kind == "heartbeat":
                gate.renew(frame, conn_id)
            elif kind in ("result", "failure"):
                gate.outcome(frame, kind, worker, conn_id)
            else:
                raise RemoteProtocolError(
                    f"unexpected frame kind {kind!r} from {worker}"
                )
    finally:
        gate.release(conn_id, worker)


def sweep_interval_s(lease_timeout_s: float) -> float:
    """How often a coordinator should sweep leases for expiry."""
    return min(SWEEP_INTERVAL_CAP_S, max(0.01, lease_timeout_s / 4.0))
