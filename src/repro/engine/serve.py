"""``repro serve`` — a long-lived campaign coordination service.

:class:`~repro.engine.remote.RemoteExecutor` is scoped to one campaign:
it exists for one ``run_plans`` call, serves that plan batch to workers,
and dies with the process.  The paper's methodology chapter describes the
opposite operational shape — a testbed that runs *thousands* of power-cut
campaigns across drives and firmware revisions over weeks — and this
module is that shape: one daemon that accepts campaign submissions over
TCP, schedules their shards across a shared persistent worker fleet, and
remembers every shard it has ever completed.

Three client roles share one listening socket, distinguished by their
first frame (the framing itself is :mod:`repro.engine.wire`'s,
byte-identical to the single-campaign coordinator's):

``hello``
    A worker (``repro worker --connect HOST:PORT --persist``).  The
    handshake is exactly the :class:`RemoteExecutor` handshake — same
    versioned, fingerprint-gated ``hello``/``welcome``, same lease/
    heartbeat conversation via
    :func:`~repro.engine.aiocoord.pump_worker_frames` — so a worker
    cannot tell a service from a single-campaign coordinator.  A worker
    that connects before any campaign exists is simply held at handshake
    until one arrives.

``submit``
    A submitter (:func:`submit_campaign`).  Carries a plan batch; the
    service answers ``accepted`` (with the batch fingerprint and how many
    shards were served from cache), streams every engine trace event
    live, and finishes with a ``summary`` frame carrying per-shard
    results — from which the client rebuilds merged
    :class:`~repro.core.results.CampaignResult` objects through the same
    :func:`~repro.engine.supervisor.merge_plan_runs` fold the in-process
    engine uses.  Identical plan batches submitted concurrently
    **coalesce** onto one execution; each submitter gets the full event
    stream and summary.

``follow``
    A read-only observer (:func:`follow_campaign`): the event stream and
    summary of an active campaign, without submitting work.  Any number
    may attach mid-run; each replays the campaign's trace from the start
    (via :class:`~repro.engine.trace.TraceCursor`) and then tails live.

Result CAS
----------
Completed shards persist in a :class:`~repro.engine.cas.ResultCAS` keyed
``(plans fingerprint, plan index, shard index, seed)``.  On submission,
cached shards are prefilled as ``resumed`` runs — telemetry reports them
``shard-skipped``, workers never see them, and a resubmitted identical
campaign completes instantly with ``executed == 0`` and a bit-identical
summary.  Because the CAS lives on disk, the guarantee spans daemon
restarts.

Fair share
----------
Each active submission tracks when it last received a grant; a worker
asking for work when a *longer-starved* submission has leasable shards
is released (clean ``shutdown``) so its persist loop re-handshakes onto
that submission.  The effect is round-robin interleaving of shards
across submitters using the protocol's existing rebind mechanics instead
of new frame kinds.
"""

from __future__ import annotations

import asyncio
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.results import CampaignResult
from repro.engine.aiocoord import (
    CoordinatorCore,
    pump_worker_frames,
    read_frame,
    sweep_interval_s,
    write_frame,
)
from repro.engine.cas import ResultCAS
from repro.engine.checkpoint import (
    plans_fingerprint,
    result_from_record,
    result_to_record,
)
from repro.engine.executors import ShardTask
from repro.engine.progress import EngineTelemetry
from repro.engine.supervisor import (
    interrupt_flag_guard,
    merge_plan_runs,
    RetryPolicy,
    ShardRun,
)
from repro.engine.trace import (
    record_from_dict,
    TRACE_VERSION,
    TraceCursor,
    TraceRecord,
    TraceWriter,
)
from repro.engine.wire import (
    DEFAULT_LEASE_TIMEOUT_S,
    decode_plans,
    encode_plans,
    parse_address,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
    validate_hello,
)
from repro.errors import CampaignError, RemoteProtocolError

SUBSCRIBER_POLL_S = 0.05
"""How often a submitter/follower stream polls the campaign trace."""

BIND_POLL_S = 0.1
"""How often a worker held at handshake re-checks for a campaign."""

STOP_DRAIN_S = 2.0
"""Grace for connected workers to hang up after a stop-time shutdown frame."""


def trace_record_to_wire(record: TraceRecord) -> Dict:
    """A :class:`TraceRecord` back in its on-disk/wire dict shape.

    The key set matches :meth:`TraceWriter.write_event` exactly, so a
    streamed event frame parses with the same
    :func:`~repro.engine.trace.record_from_dict` used for trace files.
    """
    return {
        "v": TRACE_VERSION,
        "kind": record.kind,
        "plan": record.plan_label,
        "shard": record.shard_index,
        "shard_count": record.shard_count,
        "wall_time_s": record.wall_time_s,
        "mono_time_s": record.mono_time_s,
        "shards_done": record.shards_done,
        "shards_total": record.shards_total,
        "cycles_done": record.cycles_done,
        "cycles_total": record.cycles_total,
        "cycles_skipped": record.cycles_skipped,
        "elapsed_s": record.elapsed_s,
        "cycles_per_sec": record.cycles_per_sec,
        "eta_s": record.eta_s,
        "attempt": record.attempt,
        "worker_pid": record.worker_pid,
        "commit_lag_s": record.commit_lag_s,
        "detail": record.detail,
    }


# -- one accepted plan batch --------------------------------------------------------


class _Submission:
    """One active plan batch: its coordinator core, telemetry and trace.

    Lives on the service's event loop; every method runs there.  The
    trace file doubles as the fan-out medium: the telemetry hook is a
    :class:`TraceWriter` flushing every record, and each subscriber
    stream tails the file with its own :class:`TraceCursor` — a follower
    attaching mid-run replays history for free, and the on-disk trace is
    the exact stream every subscriber saw.
    """

    def __init__(
        self, service: "CampaignService", serial: int, fingerprint: str, plans: List
    ) -> None:
        self.service = service
        self.serial = serial
        self.fingerprint = fingerprint
        self.plans = plans
        self.plans_blob = encode_plans(plans)
        self.tasks: List[ShardTask] = [
            (plan_index, plan, shard)
            for plan_index, plan in enumerate(plans)
            for shard in plan.shards()
        ]
        # Serial-suffixed path: a resubmission after completion gets a
        # fresh trace instead of appending onto (and replaying) the old.
        self.trace_path = service.trace_dir / (
            f"{fingerprint}-{serial:04d}.trace.jsonl"
        )
        self.trace = TraceWriter(self.trace_path, flush_every=1)
        self.telemetry = EngineTelemetry(
            shards_total=len(self.tasks),
            cycles_total=sum(shard.faults for _, _, shard in self.tasks),
            hook=self.trace,
        )
        self.core = CoordinatorCore(
            self.tasks,
            policy=service.policy,
            telemetry=self.telemetry,
            journal=None,  # the CAS is the durability story here
            quarantine_enabled=service.quarantine_enabled,
            shard_timeout_s=service.shard_timeout_s,
            lease_timeout_s=service.lease_timeout_s,
        )
        self.core.on_done = self._note_done
        self.core.on_fatal = self._note_fatal
        self.cas_hits = 0
        self.submitters = 0
        self.last_grant_tick = 0
        self.done = False
        self.error: Optional[str] = None
        self.summary_frame: Optional[Dict] = None
        self._plan_remaining: Dict[int, int] = {}
        for plan_index, _plan, _shard in self.tasks:
            self._plan_remaining[plan_index] = (
                self._plan_remaining.get(plan_index, 0) + 1
            )

    # -- lifecycle ------------------------------------------------------------------

    def prefill_from_cas(self, cas: ResultCAS) -> None:
        """Serve every already-known shard from the CAS before workers do."""
        for plan_index, plan, shard in self.tasks:
            result = cas.get(self.fingerprint, plan_index, shard.index, shard.seed)
            if result is None:
                continue
            key = (plan_index, shard.index)
            self.core.prefill(
                key, ShardRun(result=result, attempts=1, status="resumed")
            )
            self.cas_hits += 1
            self.telemetry.shard_skipped(
                plan.display_label(), shard.index, shard.count, shard.faults
            )
            self._shard_settled(plan_index)
        if self.core.complete:
            self._finalize()

    def eligible(self) -> bool:
        """True while this submission can still use workers."""
        return not self.done and self.core.fatal is None and not self.core.complete

    def _note_done(self, key, run: ShardRun) -> None:
        if run.status == "completed" and run.result is not None:
            plan_index, shard_index = key
            _, _plan, shard = self.core.by_key[key]
            self.service.cas.put(
                self.fingerprint, plan_index, shard_index, shard.seed, run.result
            )
        self._shard_settled(key[0])
        if self.core.complete:
            self._finalize()

    def _note_fatal(self, exc: Exception) -> None:
        self.error = str(exc)
        self.done = True
        self.trace.close()
        self.service._retire(self)

    def _shard_settled(self, plan_index: int) -> None:
        remaining = self._plan_remaining.get(plan_index, 0) - 1
        self._plan_remaining[plan_index] = remaining
        if remaining == 0:
            plan = self.plans[plan_index]
            self.telemetry.plan_finished(plan.display_label(), plan.shard_count())

    def _finalize(self) -> None:
        if self.done:
            return
        results = []
        for plan_index, _plan, shard in self.tasks:
            run = self.core.done[(plan_index, shard.index)]
            results.append(
                {
                    "plan": plan_index,
                    "shard": shard.index,
                    "status": run.status,
                    "attempts": run.attempts,
                    "error": run.error,
                    "pickup_latency_s": run.pickup_latency_s,
                    "duration_s": run.duration_s,
                    "result": (
                        result_to_record(run.result)
                        if run.result is not None
                        else None
                    ),
                }
            )
        self.summary_frame = {
            "kind": "summary",
            "v": PROTOCOL_VERSION,
            "fingerprint": self.fingerprint,
            "shards_total": len(self.tasks),
            "executed": self.core.executed,
            "cas_hits": self.cas_hits,
            "results": results,
        }
        self.done = True
        self.trace.close()
        self.service._retire(self)


class _WorkerBinding:
    """The :class:`~repro.engine.aiocoord.WorkerGate` for one connection.

    Binds the connection to one submission; grants route through the
    service so fair share can release the worker toward a starved
    submission.  Once the submission concludes, every verb degrades to a
    no-op/shutdown — late frames from slow workers have nowhere to go.
    """

    def __init__(self, service: "CampaignService", submission: _Submission) -> None:
        self.service = service
        self.submission = submission

    def grant(self, worker: str, conn_id: int) -> Dict:
        return self.service._grant(self.submission, worker, conn_id)

    def renew(self, frame: Dict, conn_id: int) -> None:
        if not self.submission.done:
            self.submission.core.renew(frame, conn_id)

    def outcome(self, frame: Dict, kind: str, worker: str, conn_id: int) -> None:
        if not self.submission.done:
            self.submission.core.outcome(frame, kind, worker, conn_id)

    def release(self, conn_id: int, worker: str) -> None:
        if not self.submission.done:
            self.submission.core.release(conn_id, worker)


# -- the service --------------------------------------------------------------------


class CampaignService:
    """Multi-campaign coordinator daemon with a content-addressed cache.

    The listening socket binds in the constructor (``.address`` is known
    even for an ephemeral ``:0`` port); :meth:`serve_forever` runs the
    event loop on the calling thread, while :meth:`start`/:meth:`stop`
    run it on a background thread for embedding in tests and tools.
    """

    def __init__(
        self,
        listen: Union[str, Tuple[str, int]] = ("127.0.0.1", 0),
        cas_root: Union[str, Path] = "repro-cas",
        policy: Optional[RetryPolicy] = None,
        quarantine: bool = False,
        shard_timeout_s: Optional[float] = None,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        trace_dir: Optional[Union[str, Path]] = None,
        announce=None,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.quarantine_enabled = quarantine
        self.shard_timeout_s = shard_timeout_s
        self.lease_timeout_s = max(0.1, lease_timeout_s)
        self.cas = ResultCAS(cas_root)
        self.trace_dir = (
            Path(trace_dir) if trace_dir is not None else Path(cas_root) / "traces"
        )
        self.announce = announce if announce is not None else sys.stderr
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(parse_address(listen))
        self._server.listen(32)
        self.address: Tuple[str, int] = self._server.getsockname()[:2]
        self._active: Dict[str, _Submission] = {}
        self._worker_conns: set = set()
        self._serial = 0
        self._tick = 0
        self._stopping = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.workers_seen: List[str] = []
        self.submissions_total = 0
        self.coalesced_total = 0

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    # -- running --------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the service on the calling thread until :meth:`stop`."""
        asyncio.run(self._serve_async())

    def start(self) -> None:
        """Run the service on a background thread (returns once listening)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        while self._loop is None and self._thread.is_alive():
            time.sleep(0.01)

    def stop(self) -> None:
        """Stop the service and (when started via :meth:`start`) join it."""
        loop = self._loop
        if loop is not None:

            def _stop() -> None:
                self._stopping = True
                self._stop_event.set()

            try:
                loop.call_soon_threadsafe(_stop)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    async def _serve_async(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._dispatch, sock=self._server)
        sweeper = asyncio.create_task(self._sweep_loop())
        self._announce(
            f"[serve] campaign service listening on {self.host}:{self.port} "
            f"(cas {self.cas.root}, result schema {self.cas.schema}) — "
            f"submit with: repro submit --connect {self.host}:{self.port}"
        )
        try:
            await self._stop_event.wait()
        finally:
            sweeper.cancel()
            server.close()
            try:
                await server.wait_closed()
            except Exception:
                pass
            await self._drain_worker_conns()
            for submission in list(self._active.values()):
                submission.trace.close()

    async def _drain_worker_conns(self) -> None:
        """Push a clean ``shutdown`` to every connected worker, then wait.

        Cancelling a worker pump mid-read slams its socket shut, and the
        worker reports a lost connection (exit code 3) instead of ending
        its persist loop cleanly.  An unsolicited shutdown frame is safe —
        the worker's next read consumes it — and lets every worker hang up
        itself; stragglers are abandoned after :data:`STOP_DRAIN_S`.
        """
        for writer in list(self._worker_conns):
            try:
                await write_frame(writer, {"kind": "shutdown"})
            except Exception:
                pass
        deadline = time.monotonic() + STOP_DRAIN_S
        while self._worker_conns and time.monotonic() < deadline:
            await asyncio.sleep(0.02)

    async def _sweep_loop(self) -> None:
        interval = sweep_interval_s(self.lease_timeout_s)
        while not self._stop_event.is_set():
            for submission in list(self._active.values()):
                if submission.eligible():
                    submission.core.sweep()
            try:
                await asyncio.wait_for(self._stop_event.wait(), timeout=interval)
            except asyncio.TimeoutError:
                pass

    # -- connection dispatch ----------------------------------------------------------

    async def _dispatch(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await asyncio.wait_for(
                read_frame(reader), timeout=max(30.0, self.lease_timeout_s * 4)
            )
            if first is None:
                return
            kind = first["kind"]
            if kind == "hello":
                await self._serve_worker(first, reader, writer)
            elif kind == "submit":
                await self._serve_submitter(first, writer)
            elif kind == "follow":
                await self._serve_follower(first, writer)
            else:
                raise RemoteProtocolError(
                    f"expected hello/submit/follow, got {kind!r}"
                )
        except (
            RemoteProtocolError,
            OSError,
            ValueError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
        ):
            pass  # connection-level damage; any leases release via the pump
        except asyncio.CancelledError:
            # Only the loop teardown cancels dispatch tasks; finishing
            # cleanly here keeps the stream-protocol done-callback quiet.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    # -- workers ----------------------------------------------------------------------

    async def _serve_worker(
        self, hello: Dict, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        worker = str(hello.get("worker") or "unknown")
        held = hello.get("fingerprint")
        if hello.get("v") != PROTOCOL_VERSION:
            reason = validate_hello(hello, str(held or ""))
            await write_frame(writer, {"kind": "reject", "reason": reason})
            return
        self._worker_conns.add(writer)
        try:
            # Hold the handshake until a campaign exists for this worker:
            # a persistent fleet may well connect before the first
            # submission.
            while True:
                if self._stopping:
                    await write_frame(writer, {"kind": "shutdown"})
                    return
                submission = self._bind_choice(held)
                if submission is not None:
                    break
                await asyncio.sleep(BIND_POLL_S)
            rejection = validate_hello(hello, submission.fingerprint)
            if rejection is not None:
                await write_frame(writer, {"kind": "reject", "reason": rejection})
                return
            self.workers_seen.append(worker)
            await write_frame(
                writer,
                {
                    "kind": "welcome",
                    "v": PROTOCOL_VERSION,
                    "fingerprint": submission.fingerprint,
                    "plans": submission.plans_blob,
                    "lease_timeout_s": self.lease_timeout_s,
                    "heartbeat_s": self.lease_timeout_s / 3.0,
                },
            )
            await pump_worker_frames(
                _WorkerBinding(self, submission), reader, writer, worker
            )
        finally:
            self._worker_conns.discard(writer)

    def _bind_choice(self, held: Optional[str]) -> Optional[_Submission]:
        """The submission a connecting worker should serve, if any.

        A worker holding the fingerprint of a live submission re-binds to
        it (the idempotent reconnect path); otherwise the longest-starved
        eligible submission wins.  A held fingerprint matching nothing
        live falls through to the fair choice, whose ``validate_hello``
        then rejects the worker as stale so its persist loop re-hydrates.
        """
        if held is not None:
            existing = self._active.get(str(held))
            if existing is not None and existing.eligible():
                return existing
        eligible = [sub for sub in self._active.values() if sub.eligible()]
        if not eligible:
            return None
        return min(eligible, key=lambda sub: (sub.last_grant_tick, sub.serial))

    def _grant(self, submission: _Submission, worker: str, conn_id: int) -> Dict:
        if self._stopping or not submission.eligible():
            return {"kind": "shutdown"}
        starved = self._fair_choice()
        if starved is not None and starved is not submission:
            # Another submitter has waited longer and has work ready:
            # release this worker so its persist loop re-binds there.
            return {"kind": "shutdown"}
        frame = submission.core.grant(worker, conn_id)
        if frame.get("kind") == "shard":
            self._tick += 1
            submission.last_grant_tick = self._tick
        return frame

    def _fair_choice(self) -> Optional[_Submission]:
        ready = [
            sub
            for sub in self._active.values()
            if sub.eligible() and sub.core.has_leasable()
        ]
        if not ready:
            return None
        return min(ready, key=lambda sub: (sub.last_grant_tick, sub.serial))

    # -- submitters & followers --------------------------------------------------------

    async def _serve_submitter(
        self, frame: Dict, writer: asyncio.StreamWriter
    ) -> None:
        if frame.get("v") != PROTOCOL_VERSION:
            await write_frame(
                writer,
                {
                    "kind": "error",
                    "reason": (
                        f"protocol version mismatch: service speaks "
                        f"{PROTOCOL_VERSION}, submitter spoke {frame.get('v')!r}"
                    ),
                },
            )
            return
        try:
            plans = decode_plans(frame["plans"])
            fingerprint = plans_fingerprint(plans)
        except Exception as exc:
            await write_frame(
                writer,
                {"kind": "error", "reason": f"undecodable plan batch: {exc!r}"},
            )
            return
        submission = self._active.get(fingerprint)
        coalesced = submission is not None
        if submission is None:
            self._serial += 1
            submission = _Submission(self, self._serial, fingerprint, plans)
            self._active[fingerprint] = submission
            submission.prefill_from_cas(self.cas)
            self._announce(
                f"[serve] accepted campaign {fingerprint} "
                f"({len(submission.tasks)} shard(s), "
                f"{submission.cas_hits} from cache)"
            )
        else:
            self._announce(
                f"[serve] coalesced duplicate submission onto campaign "
                f"{fingerprint}"
            )
        self.submissions_total += 1
        if coalesced:
            self.coalesced_total += 1
        submission.submitters += 1
        await write_frame(
            writer,
            {
                "kind": "accepted",
                "v": PROTOCOL_VERSION,
                "fingerprint": fingerprint,
                "shards_total": len(submission.tasks),
                "cas_hits": submission.cas_hits,
                "coalesced": coalesced,
            },
        )
        await self._stream_to(submission, writer)

    async def _serve_follower(self, frame: Dict, writer: asyncio.StreamWriter) -> None:
        wanted = frame.get("fingerprint")
        submission: Optional[_Submission] = None
        if wanted is not None:
            submission = self._active.get(str(wanted))
        elif self._active:
            # No fingerprint: follow the most recently accepted campaign.
            submission = max(self._active.values(), key=lambda sub: sub.serial)
        if submission is None:
            await write_frame(
                writer,
                {
                    "kind": "error",
                    "reason": (
                        f"no active campaign"
                        + (f" with fingerprint {wanted}" if wanted else "")
                        + " to follow"
                    ),
                },
            )
            return
        await write_frame(
            writer,
            {
                "kind": "accepted",
                "v": PROTOCOL_VERSION,
                "fingerprint": submission.fingerprint,
                "shards_total": len(submission.tasks),
                "cas_hits": submission.cas_hits,
                "coalesced": False,
            },
        )
        await self._stream_to(submission, writer)

    async def _stream_to(
        self, submission: _Submission, writer: asyncio.StreamWriter
    ) -> None:
        """Stream trace events (full history, then live) and the summary."""
        cursor = TraceCursor(submission.trace_path, live=True)
        while True:
            settled = submission.done  # read BEFORE polling: no lost tail
            records = cursor.poll()
            for record in records:
                await write_frame(
                    writer,
                    {"kind": "event", "record": trace_record_to_wire(record)},
                )
            if settled and not records:
                break
            if self._stopping:
                await write_frame(
                    writer,
                    {
                        "kind": "error",
                        "reason": "campaign service stopped before completion",
                    },
                )
                return
            await asyncio.sleep(SUBSCRIBER_POLL_S)
        if submission.error is not None:
            await write_frame(
                writer, {"kind": "error", "reason": submission.error}
            )
        else:
            await write_frame(writer, submission.summary_frame)

    # -- bookkeeping ------------------------------------------------------------------

    def _retire(self, submission: _Submission) -> None:
        current = self._active.get(submission.fingerprint)
        if current is submission:
            del self._active[submission.fingerprint]
        outcome = (
            f"failed ({submission.error})"
            if submission.error is not None
            else (
                f"complete ({submission.core.executed} executed, "
                f"{submission.cas_hits} from cache)"
            )
        )
        self._announce(f"[serve] campaign {submission.fingerprint} {outcome}")

    def _announce(self, line: str) -> None:
        if self.announce is None:
            return
        print(line, file=self.announce)
        try:
            self.announce.flush()
        except Exception:
            pass


# -- sync clients -------------------------------------------------------------------


@dataclass
class SubmissionOutcome:
    """What :func:`submit_campaign` returns: merged results + provenance."""

    results: List[CampaignResult]
    fingerprint: str
    shards_total: int
    executed: int
    cas_hits: int
    coalesced: bool
    records: List[TraceRecord] = field(default_factory=list)


def _open_service_connection(
    address: Union[str, Tuple[str, int]], connect_timeout_s: float
) -> socket.socket:
    from repro.engine.remote import _connect_with_retry

    host, port = parse_address(address)
    return _connect_with_retry(host, port, connect_timeout_s)


def _consume_stream(sock: socket.socket, on_record) -> Dict:
    """Read event frames until the terminal ``summary`` (or raise)."""
    records_seen: List[TraceRecord] = []
    while True:
        frame = recv_frame(sock)
        if frame is None:
            raise CampaignError(
                "connection to campaign service lost before the summary"
            )
        kind = frame["kind"]
        if kind == "event":
            record = record_from_dict(frame["record"])
            records_seen.append(record)
            if on_record is not None:
                on_record(record)
            continue
        if kind == "error":
            raise CampaignError(
                str(frame.get("reason") or "campaign service reported an error")
            )
        if kind == "summary":
            frame["_records"] = records_seen
            return frame
        raise RemoteProtocolError(f"unexpected frame kind {kind!r} from service")


def submit_campaign(
    address: Union[str, Tuple[str, int]],
    plans: Sequence,
    connect_timeout_s: float = 10.0,
    on_record=None,
) -> SubmissionOutcome:
    """Submit a plan batch to a ``repro serve`` daemon and await results.

    Blocks until the service streams the campaign to completion, then
    rebuilds merged :class:`CampaignResult` objects (one per plan, plan
    order) with the same :func:`merge_plan_runs` fold ``run_plans`` uses —
    so ``submit_campaign(...).results[i].summary()`` is bit-identical to
    a local ``run_plan`` of the same plan, whether the shards executed on
    workers or came from the service's result cache.  ``on_record`` (if
    given) receives every live :class:`TraceRecord`.
    """
    plans = list(plans)
    sock = _open_service_connection(address, connect_timeout_s)
    try:
        send_frame(
            sock,
            {
                "kind": "submit",
                "v": PROTOCOL_VERSION,
                "plans": encode_plans(plans),
            },
        )
        accepted = recv_frame(sock)
        if accepted is None:
            raise CampaignError("campaign service closed during submission")
        if accepted["kind"] == "error":
            raise CampaignError(str(accepted.get("reason")))
        if accepted["kind"] != "accepted":
            raise RemoteProtocolError(
                f"expected accepted, got {accepted['kind']!r}"
            )
        summary = _consume_stream(sock, on_record)
    finally:
        try:
            sock.close()
        except OSError:
            pass
    runs_by_plan: Dict[int, Dict[int, ShardRun]] = {}
    for entry in summary["results"]:
        run = ShardRun(
            result=(
                result_from_record(entry["result"])
                if entry.get("result") is not None
                else None
            ),
            attempts=int(entry.get("attempts") or 1),
            status=str(entry.get("status") or "completed"),
            error=str(entry.get("error") or ""),
            pickup_latency_s=entry.get("pickup_latency_s"),
            duration_s=entry.get("duration_s"),
        )
        runs_by_plan.setdefault(int(entry["plan"]), {})[int(entry["shard"])] = run
    results: List[CampaignResult] = []
    for plan_index, plan in enumerate(plans):
        by_shard = runs_by_plan.get(plan_index, {})
        missing = [i for i in range(plan.shard_count()) if i not in by_shard]
        if missing:
            raise RemoteProtocolError(
                f"summary is missing shards {missing} of plan {plan_index}"
            )
        ordered = [by_shard[i] for i in range(plan.shard_count())]
        results.append(merge_plan_runs(plan, ordered))
    return SubmissionOutcome(
        results=results,
        fingerprint=str(summary.get("fingerprint")),
        shards_total=int(summary.get("shards_total") or 0),
        executed=int(summary.get("executed") or 0),
        cas_hits=int(summary.get("cas_hits") or 0),
        coalesced=bool(accepted.get("coalesced")),
        records=summary.get("_records") or [],
    )


def follow_campaign(
    address: Union[str, Tuple[str, int]],
    fingerprint: Optional[str] = None,
    connect_timeout_s: float = 10.0,
    on_record=None,
) -> Dict:
    """Attach to an active campaign read-only; returns its summary frame.

    Streams the campaign's full trace history, then live events, through
    ``on_record``.  Without a ``fingerprint`` the most recently accepted
    campaign is followed.  Raises :class:`CampaignError` when there is
    nothing to follow or the campaign fails.
    """
    sock = _open_service_connection(address, connect_timeout_s)
    try:
        send_frame(
            sock,
            {"kind": "follow", "v": PROTOCOL_VERSION, "fingerprint": fingerprint},
        )
        accepted = recv_frame(sock)
        if accepted is None:
            raise CampaignError("campaign service closed during follow")
        if accepted["kind"] == "error":
            raise CampaignError(str(accepted.get("reason")))
        if accepted["kind"] != "accepted":
            raise RemoteProtocolError(
                f"expected accepted, got {accepted['kind']!r}"
            )
        return _consume_stream(sock, on_record)
    finally:
        try:
            sock.close()
        except OSError:
            pass


# -- CLI body -----------------------------------------------------------------------


def run_serve(
    listen: Union[str, Tuple[str, int]],
    cas_root: Union[str, Path],
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
    quarantine: bool = False,
    shard_timeout_s: Optional[float] = None,
    max_retries: Optional[int] = None,
    announce=None,
) -> int:
    """Body of ``repro serve``: run the service until SIGINT/SIGTERM."""
    policy = RetryPolicy(max_retries=max_retries) if max_retries is not None else None
    service = CampaignService(
        listen=listen,
        cas_root=cas_root,
        policy=policy,
        quarantine=quarantine,
        shard_timeout_s=shard_timeout_s,
        lease_timeout_s=lease_timeout_s,
        announce=announce,
    )
    with interrupt_flag_guard() as flag:
        service.start()
        try:
            while not flag:
                thread = service._thread
                if thread is None or not thread.is_alive():
                    break
                time.sleep(0.2)
        finally:
            service.stop()
    service._announce(
        f"[serve] stopped ({service.submissions_total} submission(s), "
        f"cas {service.cas.stats()})"
    )
    return 0
