"""Shard executors: serial and multiprocess campaign execution.

Both executors consume the same ordered list of ``(plan ordinal, plan,
shard)`` tasks and yield ``((plan ordinal, shard index), CampaignResult)``
pairs **in task order**, so everything downstream (merge, progress, fleet
callbacks) is executor-agnostic and deterministic.

:class:`ParallelExecutor` fans shards out over a
``concurrent.futures.ProcessPoolExecutor``.  Workers receive the pickled
:class:`~repro.engine.plan.CampaignPlan` and hydrate their own
``TestPlatform`` (simulation state never crosses process boundaries — only
plans go in and :class:`~repro.core.results.CampaignResult` records come
back).  A per-shard timeout plus a retry-once fallback keeps one wedged or
crashed worker from killing the whole campaign: the affected shard is
re-run in-process, which yields the identical result because shard seeds
are deterministic.

For production fault tolerance — bounded retries with backoff, pool
rebuild, quarantine, checkpointing — use
:class:`repro.engine.supervisor.ShardSupervisor`, which replaces these
executors on the default ``run_plans`` path.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.results import CampaignResult
from repro.engine.plan import CampaignPlan, ShardSpec
from repro.engine.progress import EngineTelemetry
from repro.errors import CampaignError

ShardTask = Tuple[int, CampaignPlan, ShardSpec]
ShardKey = Tuple[int, int]

POLL_BASE_S = 0.005
"""First delay of a head-of-line poll loop (seconds)."""

POLL_CAP_S = 0.25
"""Ceiling of the exponential poll schedule (seconds)."""


class BackoffPoller:
    """Capped exponential delay schedule for busy-wait loops.

    Head-of-line waits used to poll at a fixed 0.05 s: responsive for
    sub-second shards, but a long shard burned 20 wakeups/s of pure idle
    churn per waiting loop.  The poller starts fast and doubles up to a
    cap, so short waits still resolve in milliseconds while a multi-minute
    shard costs 4 wakeups/s at most:

    >>> poller = BackoffPoller()
    >>> [poller.next_delay() for _ in range(8)]
    [0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.25, 0.25]

    ``reset()`` drops back to the base delay — call it when the awaited
    state changes (a new pickup observed, an event processed), because
    progress means more progress is likely soon.
    """

    def __init__(
        self,
        base_s: float = POLL_BASE_S,
        cap_s: float = POLL_CAP_S,
        factor: float = 2.0,
    ) -> None:
        self.base_s = base_s
        self.cap_s = max(base_s, cap_s)
        self.factor = factor
        self._current = base_s

    def next_delay(self) -> float:
        """The delay to sleep now; advances the schedule."""
        delay = min(self._current, self.cap_s)
        self._current = min(self._current * self.factor, self.cap_s)
        return delay

    def reset(self) -> None:
        """Drop back to the base delay (the awaited state just changed)."""
        self._current = self.base_s

TEST_FAULT_ENV = "REPRO_ENGINE_TEST_FAULT"
"""Injectable shard-failure fixture for the engine's own failure-path tests.

Format: ``MODE:SHARD:ATTEMPTS[:SECONDS]`` where ``MODE`` is ``crash``
(raise in the worker), ``exit`` (kill the worker process, breaking the
pool), ``hang`` (sleep ``SECONDS`` — default 30 — then raise), or ``slow``
(sleep ``SECONDS`` then run normally); ``SHARD`` is a shard index or ``*``;
``ATTEMPTS`` limits the fault to attempt numbers ``<= ATTEMPTS`` (``*`` =
every attempt).  Workers inherit the environment, so the fixture reaches
process-pool children without any plan plumbing.
"""


def _maybe_inject_test_fault(shard: ShardSpec, attempt: int) -> None:
    spec = os.environ.get(TEST_FAULT_ENV)
    if not spec:
        return
    parts = spec.split(":")
    if len(parts) < 3:
        raise CampaignError(
            f"{TEST_FAULT_ENV} must be MODE:SHARD:ATTEMPTS[:SECONDS], got {spec!r}"
        )
    mode, which, upto = parts[0], parts[1], parts[2]
    seconds = float(parts[3]) if len(parts) > 3 else 30.0
    if which != "*" and int(which) != shard.index:
        return
    if upto != "*" and attempt > int(upto):
        return
    if mode == "crash":
        raise RuntimeError(
            f"injected crash (shard {shard.index}, attempt {attempt})"
        )
    if mode == "exit":
        os._exit(13)
    if mode == "hang":
        time.sleep(seconds)
        raise RuntimeError(
            f"injected hang expired (shard {shard.index}, attempt {attempt})"
        )
    if mode == "slow":
        time.sleep(seconds)
        return
    raise CampaignError(f"unknown {TEST_FAULT_ENV} mode {mode!r}")


def _run_shard_task(
    plan: CampaignPlan, shard: ShardSpec, attempt: int = 1
) -> CampaignResult:
    """Worker entry point (module-level so it pickles).

    ``attempt`` only feeds the injectable test-fault fixture — it never
    touches the simulation, whose seed is fixed by the shard spec, so a
    retried shard reproduces the first attempt's result exactly.
    """
    _maybe_inject_test_fault(shard, attempt)
    return plan.run_shard(shard)


class SerialExecutor:
    """Runs shards one after another in the calling process."""

    jobs = 1

    def execute(
        self, tasks: Sequence[ShardTask], telemetry: EngineTelemetry
    ) -> Iterator[Tuple[ShardKey, CampaignResult]]:
        """Yield ``(key, result)`` for each task, in order."""
        for plan_index, plan, shard in tasks:
            label = plan.display_label()
            telemetry.shard_started(
                label, shard.index, shard.count, attempt=1, worker_pid=os.getpid()
            )
            result = _run_shard_task(plan, shard)
            telemetry.shard_finished(
                label,
                shard.index,
                shard.count,
                shard.faults,
                attempt=1,
                worker_pid=os.getpid(),
            )
            yield (plan_index, shard.index), result


class ParallelExecutor:
    """Process-pool execution with per-shard timeout and retry-once.

    ``jobs`` defaults to the machine's CPU count.  ``shard_timeout_s``
    bounds how long the engine waits on any single shard once it becomes
    the head of the merge order; on timeout the wedged future is cancelled
    and the shard is retried exactly once, in-process (likewise for a
    worker exception or broken pool), before the campaign is allowed to
    fail.  ``shard-started`` telemetry fires when a worker actually picks
    a shard up (observed by polling), not at submit time.
    """

    def __init__(
        self, jobs: Optional[int] = None, shard_timeout_s: Optional[float] = None
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.shard_timeout_s = shard_timeout_s

    def execute(
        self, tasks: Sequence[ShardTask], telemetry: EngineTelemetry
    ) -> Iterator[Tuple[ShardKey, CampaignResult]]:
        """Yield ``(key, result)`` in task order, fanning work out first."""
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=min(self.jobs, max(1, len(tasks))))
        futures: List = []
        started: Set[ShardKey] = set()

        def emit_new_starts() -> None:
            """Report shards actually picked up by a worker since last poll."""
            for (plan_index, plan, shard), future in zip(tasks, futures):
                key = (plan_index, shard.index)
                if key not in started and (future.running() or future.done()):
                    started.add(key)
                    telemetry.shard_started(
                        plan.display_label(), shard.index, shard.count
                    )

        try:
            for plan_index, plan, shard in tasks:
                futures.append(pool.submit(_run_shard_task, plan, shard))
            for (plan_index, plan, shard), future in zip(tasks, futures):
                key = (plan_index, shard.index)
                label = plan.display_label()
                attempt = 1
                try:
                    result = self._await(future, emit_new_starts)
                except Exception as exc:  # timeout, worker crash, broken pool
                    future.cancel()
                    if key not in started:
                        # The in-process retry is this shard's real start.
                        started.add(key)
                        telemetry.shard_started(label, shard.index, shard.count)
                    telemetry.shard_retried(
                        label, shard.index, shard.count, reason=repr(exc), attempt=1
                    )
                    attempt = 2
                    result = _run_shard_task(plan, shard, attempt=2)
                emit_new_starts()
                telemetry.shard_finished(
                    label, shard.index, shard.count, shard.faults, attempt=attempt
                )
                yield key, result
        finally:
            # Don't block on workers that may be wedged; abandoned shards
            # were already re-run in-process above.
            pool.shutdown(wait=False, cancel_futures=True)

    def _await(self, future, emit_new_starts):
        """Head-of-line wait: poll so pickups are observed, honour timeout.

        The poll interval follows a capped exponential schedule (see
        :class:`BackoffPoller`): short shards resolve within milliseconds,
        long shards cost at most ~4 idle wakeups per second instead of the
        20/s a fixed interval burned.
        """
        deadline = (
            None
            if self.shard_timeout_s is None
            else time.monotonic() + self.shard_timeout_s
        )
        poller = BackoffPoller()
        while True:
            emit_new_starts()
            wait_s = poller.next_delay()
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FutureTimeoutError(
                        f"shard exceeded timeout of {self.shard_timeout_s}s"
                    )
                wait_s = min(wait_s, remaining)
            try:
                return future.result(timeout=wait_s)
            except FutureTimeoutError:
                continue


def make_executor(jobs: Optional[int] = None, shard_timeout_s: Optional[float] = None):
    """Executor for a requested worker count (``None``/``0``/``1`` = serial).

    ``shard_timeout_s`` bounds each shard's head-of-line wait on the
    parallel path; it is ignored for serial execution (an in-process shard
    cannot be preempted).
    """
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs, shard_timeout_s=shard_timeout_s)
