"""Shard executors: serial and multiprocess campaign execution.

Both executors consume the same ordered list of ``(plan ordinal, plan,
shard)`` tasks and yield ``((plan ordinal, shard index), CampaignResult)``
pairs **in task order**, so everything downstream (merge, progress, fleet
callbacks) is executor-agnostic and deterministic.

:class:`ParallelExecutor` fans shards out over a
``concurrent.futures.ProcessPoolExecutor``.  Workers receive the pickled
:class:`~repro.engine.plan.CampaignPlan` and hydrate their own
``TestPlatform`` (simulation state never crosses process boundaries — only
plans go in and :class:`~repro.core.results.CampaignResult` records come
back).  A per-shard timeout plus a retry-once fallback keeps one wedged or
crashed worker from killing the whole campaign: the affected shard is
re-run in-process, which yields the identical result because shard seeds
are deterministic.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.results import CampaignResult
from repro.engine.plan import CampaignPlan, ShardSpec
from repro.engine.progress import EngineTelemetry

ShardTask = Tuple[int, CampaignPlan, ShardSpec]
ShardKey = Tuple[int, int]


def _run_shard_task(plan: CampaignPlan, shard: ShardSpec) -> CampaignResult:
    """Worker entry point (module-level so it pickles)."""
    return plan.run_shard(shard)


class SerialExecutor:
    """Runs shards one after another in the calling process."""

    jobs = 1

    def execute(
        self, tasks: Sequence[ShardTask], telemetry: EngineTelemetry
    ) -> Iterator[Tuple[ShardKey, CampaignResult]]:
        """Yield ``(key, result)`` for each task, in order."""
        for plan_index, plan, shard in tasks:
            label = plan.display_label()
            telemetry.shard_started(label, shard.index, shard.count)
            result = _run_shard_task(plan, shard)
            telemetry.shard_finished(label, shard.index, shard.count, shard.faults)
            yield (plan_index, shard.index), result


class ParallelExecutor:
    """Process-pool execution with per-shard timeout and retry-once.

    ``jobs`` defaults to the machine's CPU count.  ``shard_timeout_s``
    bounds how long the engine waits on any single shard once it becomes
    the head of the merge order; on timeout (or on a worker exception /
    broken pool) the shard is retried exactly once, in-process, before the
    campaign is allowed to fail.
    """

    def __init__(
        self, jobs: Optional[int] = None, shard_timeout_s: Optional[float] = None
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.shard_timeout_s = shard_timeout_s

    def execute(
        self, tasks: Sequence[ShardTask], telemetry: EngineTelemetry
    ) -> Iterator[Tuple[ShardKey, CampaignResult]]:
        """Yield ``(key, result)`` in task order, fanning work out first."""
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=min(self.jobs, max(1, len(tasks))))
        futures: List = []
        try:
            for plan_index, plan, shard in tasks:
                telemetry.shard_started(
                    plan.display_label(), shard.index, shard.count
                )
                futures.append(pool.submit(_run_shard_task, plan, shard))
            for (plan_index, plan, shard), future in zip(tasks, futures):
                label = plan.display_label()
                try:
                    result = future.result(timeout=self.shard_timeout_s)
                except Exception as exc:  # timeout, worker crash, broken pool
                    telemetry.shard_retried(
                        label, shard.index, shard.count, reason=repr(exc)
                    )
                    result = _run_shard_task(plan, shard)
                telemetry.shard_finished(
                    label, shard.index, shard.count, shard.faults
                )
                yield (plan_index, shard.index), result
        finally:
            # Don't block on workers that may be wedged; abandoned shards
            # were already re-run in-process above.
            pool.shutdown(wait=False, cancel_futures=True)


def make_executor(jobs: Optional[int] = None):
    """Executor for a requested worker count (``None``/``0``/``1`` = serial)."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)
