"""Wire-protocol primitives shared by every distributed-engine endpoint.

The blocking coordinator (:mod:`repro.engine.remote`), the asyncio
campaign service (:mod:`repro.engine.serve`) and the worker all speak the
same protocol; this module is the single definition of its framing,
addressing, plan transport and handshake validation, so the endpoints
cannot drift apart.

Frames are **length-prefixed JSON objects**: a 4-byte big-endian unsigned
payload length followed by that many bytes of UTF-8 JSON.  Every frame is
a JSON object carrying a ``kind``; frames above :data:`MAX_FRAME_BYTES`
are rejected.  The synchronous codec (:func:`send_frame` /
:func:`recv_frame`) lives here; the asyncio codec that emits and parses
the *identical* bytes lives in :mod:`repro.engine.aiocoord`.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
import struct
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CampaignError, RemoteProtocolError

PROTOCOL_VERSION = 1
"""Wire protocol version; both ends must agree exactly."""

MAX_FRAME_BYTES = 64 * 1024 * 1024
"""Upper bound on one frame's payload (a plan batch or shard result)."""

DEFAULT_LEASE_TIMEOUT_S = 15.0
"""Lease lifetime without a heartbeat before the shard is requeued."""

_HEADER = struct.Struct(">I")


# -- frame codec (blocking sockets) -------------------------------------------------


def encode_frame(payload: Dict) -> bytes:
    """One frame's bytes: 4-byte length header + canonical JSON payload."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"frame of {len(body)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(len(body)) + body


def decode_frame_body(body: bytes) -> Dict:
    """Parse one frame payload; every codec funnels through this check."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise RemoteProtocolError(f"frame is not valid JSON: {exc!r}") from exc
    if not isinstance(payload, dict) or "kind" not in payload:
        raise RemoteProtocolError("frame must be a JSON object with a 'kind'")
    return payload


def send_frame(sock: socket.socket, payload: Dict) -> None:
    """Serialize one JSON frame onto the socket (length-prefixed)."""
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at offset 0."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise RemoteProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"declared frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise RemoteProtocolError("connection closed between header and payload")
    return decode_frame_body(body)


# -- addresses & plan transport -----------------------------------------------------


def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` (or a ready tuple) → ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return (host or "127.0.0.1", int(port))
    text = str(address).strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
    else:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        raise CampaignError(
            f"listen/connect address must be HOST:PORT, :PORT or PORT, got {address!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise CampaignError(f"port out of range in address {address!r}")
    return (host or "127.0.0.1", port)


def encode_plans(plans: Sequence) -> str:
    """Plan batch → base64 pickle (the ``welcome`` frame's payload)."""
    return base64.b64encode(pickle.dumps(list(plans), protocol=4)).decode("ascii")


def decode_plans(blob: str) -> List:
    """Inverse of :func:`encode_plans`."""
    try:
        plans = pickle.loads(base64.b64decode(blob.encode("ascii")))
    except Exception as exc:
        raise RemoteProtocolError(f"plan batch failed to hydrate: {exc!r}") from exc
    if not isinstance(plans, list):
        raise RemoteProtocolError("plan batch did not decode to a list")
    return plans


def worker_identity() -> str:
    """This process's identity on the wire (``host:pid``)."""
    return f"{socket.gethostname()}:{os.getpid()}"


def validate_hello(payload: Dict, fingerprint: str) -> Optional[str]:
    """Why a ``hello`` must be rejected, or ``None`` when it is acceptable."""
    if payload.get("kind") != "hello":
        return f"expected hello, got {payload.get('kind')!r}"
    if payload.get("v") != PROTOCOL_VERSION:
        return (
            f"protocol version mismatch: coordinator speaks {PROTOCOL_VERSION}, "
            f"worker spoke {payload.get('v')!r}"
        )
    held = payload.get("fingerprint")
    if held is not None and held != fingerprint:
        return (
            f"stale worker: holds plans {held}, campaign is {fingerprint} — "
            "restart the worker so it re-hydrates"
        )
    return None
