"""Structured JSONL shard-event traces and straggler analysis.

The engine's telemetry hooks (:mod:`repro.engine.progress`) stream one
:class:`~repro.engine.progress.ProgressEvent` per shard state change —
and, until now, threw the stream away once the console line scrolled by.
This module persists it, the same way the paper's platform persists raw
blktrace/btt event streams so the Analyzer can classify failures *after*
the fact, never depending on in-memory state:

- :class:`TraceWriter` is a plain :data:`~repro.engine.progress.ProgressHook`
  that appends one JSONL record per event (kind, plan label, shard index,
  attempt, retry reason, wall + monotonic timestamps, cycle counters,
  worker pid when known, checkpoint commit lag).  Appends are **batched
  between fsyncs** (``flush_every`` records) so tracing a thousand-shard
  sweep doesn't serialise on the disk; failure-relevant kinds (retry,
  quarantine, plan-finished) force an immediate fsync so forensic records
  survive a crash.
- :class:`TraceCursor` incrementally tails a trace — it remembers its
  byte offset, *retains* a partial final line until the writer completes
  it, and detects truncation/rotation — so a live follower and the
  post-hoc replay share one parsing path.  :func:`read_trace` is a single
  cursor poll, parameterized by whether the writer is presumed alive.
- :class:`TraceReportBuilder` folds records into report state in O(1)
  per record; :func:`build_trace_report` / :class:`TraceReport`
  reconstruct per-shard execution from the event stream and compute the
  straggler story: p50/p95/max shard duration, the slowest-N shards,
  retry and quarantine timelines, and checkpoint-commit lag.

The CLI surfaces this as ``repro trace report <path>`` (post-hoc, or
live with ``--follow`` — see :mod:`repro.engine.live`) and a ``--trace
PATH`` flag on ``campaign``/``fleet``; benches honour
``REPRO_BENCH_TRACE`` (see :mod:`benchmarks._common`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, IO, List, Optional, Sequence, Tuple, Union

from repro.engine.progress import PLAN_EVENT_INDEX, ProgressEvent
from repro.errors import EngineTraceError

PathLike = Union[str, Path]

TRACE_VERSION = 1

EVENT_KINDS = frozenset(
    {
        "shard-started",
        "shard-finished",
        "shard-retried",
        "shard-skipped",
        "shard-quarantined",
        "checkpoint-written",
        "plan-finished",
    }
)

REQUIRED_FIELDS = (
    "v",
    "kind",
    "plan",
    "shard",
    "shard_count",
    "wall_time_s",
    "mono_time_s",
    "shards_done",
    "shards_total",
    "cycles_done",
    "cycles_total",
    "cycles_skipped",
    "elapsed_s",
    "cycles_per_sec",
)
"""Fields every trace record must carry (schema sanity checks key off this)."""

_FSYNC_NOW_KINDS = frozenset(
    {"shard-retried", "shard-quarantined", "plan-finished"}
)
"""Kinds whose records are failure forensics — always fsync'd immediately."""


@dataclass(frozen=True)
class TraceRecord:
    """One replayed trace line (a ProgressEvent plus capture timestamps)."""

    kind: str
    plan_label: str
    shard_index: int
    shard_count: int
    wall_time_s: float
    mono_time_s: float
    shards_done: int
    shards_total: int
    cycles_done: int
    cycles_total: int
    cycles_skipped: int
    elapsed_s: float
    cycles_per_sec: float
    eta_s: Optional[float] = None
    attempt: Optional[int] = None
    worker_pid: Optional[Union[int, str]] = None
    commit_lag_s: Optional[float] = None
    detail: str = ""

    @property
    def shard_key(self) -> Tuple[str, int]:
        """Consumer key; plan-level events use the sentinel index."""
        return (self.plan_label, self.shard_index)


class TraceWriter:
    """Progress hook persisting every engine event as one JSONL record.

    Opens lazily on the first event (a traced run that dies before any
    event leaves no empty litter).  Records are buffered and fsync'd every
    ``flush_every`` appends — plus immediately for retry/quarantine/
    plan-finished records — so the trace of a crashed run is complete up
    to at most ``flush_every - 1`` routine events.
    """

    def __init__(
        self,
        path: PathLike,
        flush_every: int = 16,
        wall_clock: Callable[[], float] = time.time,
        mono_clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.flush_every = max(1, flush_every)
        self.records_written = 0
        self._wall_clock = wall_clock
        self._mono_clock = mono_clock
        self._handle: Optional[IO[str]] = None
        self._unsynced = 0

    # -- hook entry ---------------------------------------------------------------

    def __call__(self, event: ProgressEvent) -> None:
        self.write_event(event)

    def write_event(self, event: ProgressEvent) -> None:
        """Append one event; fsync per the batching policy."""
        record = {
            "v": TRACE_VERSION,
            "kind": event.kind,
            "plan": event.plan_label,
            "shard": event.shard_index,
            "shard_count": event.shard_count,
            "wall_time_s": self._wall_clock(),
            "mono_time_s": self._mono_clock(),
            "shards_done": event.shards_done,
            "shards_total": event.shards_total,
            "cycles_done": event.cycles_done,
            "cycles_total": event.cycles_total,
            "cycles_skipped": event.cycles_skipped,
            "elapsed_s": event.elapsed_s,
            "cycles_per_sec": event.cycles_per_sec,
            "eta_s": event.eta_s,
            "attempt": event.attempt,
            "worker_pid": event.worker_pid,
            "commit_lag_s": event.commit_lag_s,
            "detail": event.detail,
        }
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.records_written += 1
        self._unsynced += 1
        if self._unsynced >= self.flush_every or event.kind in _FSYNC_NOW_KINDS:
            self.flush()

    # -- durability ---------------------------------------------------------------

    def flush(self) -> None:
        """Flush and fsync everything appended so far."""
        if self._handle is not None and self._unsynced:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unsynced = 0

    def close(self) -> None:
        """Fsync the tail and release the file handle."""
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- reading ------------------------------------------------------------------------


def _coerce_float(name: str, value, optional: bool = False) -> Optional[float]:
    """A JSON number as float; ``None`` passes only for optional fields.

    Strings, booleans, and other JSON types are rejected: a foreign or
    hand-edited trace must not flow ``str`` into report math.
    """
    if value is None:
        if optional:
            return None
        raise EngineTraceError(f"trace field {name!r} must not be null")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EngineTraceError(
            f"trace field {name!r} must be a number, got {type(value).__name__}"
        )
    return float(value)


def _coerce_int(name: str, value, optional: bool = False) -> Optional[int]:
    """A JSON integer (integral floats tolerated) as int."""
    number = _coerce_float(name, value, optional=optional)
    if number is None:
        return None
    if number != int(number):
        raise EngineTraceError(
            f"trace field {name!r} must be an integer, got {value!r}"
        )
    return int(number)


def record_from_dict(payload: Dict) -> TraceRecord:
    """Build a :class:`TraceRecord` from one decoded JSON object.

    Numeric fields are type-checked and coerced (ints where counts are
    expected, floats for timings — including the optional ``eta_s`` /
    ``commit_lag_s`` / ``attempt``); wrong-typed values raise
    :class:`~repro.errors.EngineTraceError` instead of flowing raw JSON
    into report math.
    """
    missing = [name for name in REQUIRED_FIELDS if name not in payload]
    if missing:
        raise EngineTraceError(f"trace record missing fields {missing}")
    kind = payload["kind"]
    plan = payload["plan"]
    if not isinstance(kind, str) or not isinstance(plan, str):
        raise EngineTraceError("trace record kind/plan must be strings")
    worker_pid = payload.get("worker_pid")
    if worker_pid is not None and not isinstance(worker_pid, (int, str)):
        raise EngineTraceError(
            f"trace field 'worker_pid' must be an int or string, "
            f"got {type(worker_pid).__name__}"
        )
    detail = payload.get("detail", "") or ""
    if not isinstance(detail, str):
        raise EngineTraceError("trace field 'detail' must be a string")
    return TraceRecord(
        kind=kind,
        plan_label=plan,
        shard_index=_coerce_int("shard", payload["shard"]),
        shard_count=_coerce_int("shard_count", payload["shard_count"]),
        wall_time_s=_coerce_float("wall_time_s", payload["wall_time_s"]),
        mono_time_s=_coerce_float("mono_time_s", payload["mono_time_s"]),
        shards_done=_coerce_int("shards_done", payload["shards_done"]),
        shards_total=_coerce_int("shards_total", payload["shards_total"]),
        cycles_done=_coerce_int("cycles_done", payload["cycles_done"]),
        cycles_total=_coerce_int("cycles_total", payload["cycles_total"]),
        cycles_skipped=_coerce_int("cycles_skipped", payload["cycles_skipped"]),
        elapsed_s=_coerce_float("elapsed_s", payload["elapsed_s"]),
        cycles_per_sec=_coerce_float("cycles_per_sec", payload["cycles_per_sec"]),
        eta_s=_coerce_float("eta_s", payload.get("eta_s"), optional=True),
        attempt=_coerce_int("attempt", payload.get("attempt"), optional=True),
        worker_pid=worker_pid,
        commit_lag_s=_coerce_float(
            "commit_lag_s", payload.get("commit_lag_s"), optional=True
        ),
        detail=detail,
    )


class TraceCursor:
    """Incremental, restart-aware reader of one (possibly growing) trace.

    A cursor owns no file handle — each :meth:`poll` opens the file,
    reads everything past the remembered byte offset, and parses the
    newline-terminated lines it finds.  Bytes after the last newline are
    a *partial* final line: while the writer is alive they are an append
    in flight, so the cursor **retains** them across polls and parses the
    line once the writer completes it (dropping them, as the old
    post-hoc reader did, would lose a record forever).  A truncated or
    rotated file (the size shrank below the offset, or the inode
    changed — a restarted run reusing the path) resets the cursor to the
    beginning and bumps :attr:`truncations` so a follower can reset its
    view instead of mixing two runs' stories.

    ``live`` selects the torn-tail policy: ``True`` (writer presumed
    alive) treats any *complete* unparsable line as corruption — the
    writer appends whole lines, so garbage before a newline cannot be an
    append in flight; ``False`` (post-hoc, writer known dead) drops an
    unparsable final line as the classic crash-mid-append torn tail.
    """

    def __init__(self, path: PathLike, live: bool = True) -> None:
        self.path = Path(path)
        self.live = live
        self.consumed_bytes = 0
        self.line_number = 0
        self.truncations = 0
        self._tail = b""
        self._inode: Optional[int] = None

    @property
    def pending_tail(self) -> bool:
        """True when a partial final line is buffered awaiting completion."""
        return bool(self._tail)

    def _reset(self) -> None:
        self.consumed_bytes = 0
        self.line_number = 0
        self._tail = b""
        self.truncations += 1

    def _dead_tail(self, pieces: List[bytes], position: int) -> bool:
        """Is the failing line the effective end of a dead writer's file?"""
        if self._tail.strip():
            return False
        return all(not piece.strip() for piece in pieces[position + 1 :])

    def poll(self) -> List[TraceRecord]:
        """Consume newly-appended records (empty list when nothing new)."""
        try:
            stat = self.path.stat()
        except FileNotFoundError:
            if self.consumed_bytes or self._tail:
                # The file vanished under us (rotation); start over when
                # (if) it reappears.
                self._reset()
                self._inode = None
            return []
        if self._inode is not None and stat.st_ino != self._inode:
            self._reset()
        elif stat.st_size < self.consumed_bytes:
            self._reset()
        self._inode = stat.st_ino
        if stat.st_size <= self.consumed_bytes:
            return []
        with self.path.open("rb") as handle:
            handle.seek(self.consumed_bytes)
            chunk = handle.read()
        if not chunk:
            return []
        self.consumed_bytes += len(chunk)
        pieces = (self._tail + chunk).split(b"\n")
        self._tail = pieces.pop()  # bytes after the last newline, if any
        records: List[TraceRecord] = []
        for position, raw in enumerate(pieces):
            self.line_number += 1
            try:
                text = raw.decode("utf-8")
                if not text.strip():
                    continue
                payload = json.loads(text)
                if not isinstance(payload, dict):
                    raise EngineTraceError("trace line is not an object")
                records.append(record_from_dict(payload))
            except (ValueError, EngineTraceError) as exc:
                if not self.live and self._dead_tail(pieces, position):
                    break  # torn tail: the writer died mid-append
                raise EngineTraceError(
                    f"corrupt trace record at line {self.line_number} "
                    f"of {self.path}"
                ) from exc
        return records


def read_trace(path: PathLike, live: bool = False) -> List[TraceRecord]:
    """Replay a trace file, tolerating a torn tail (one cursor poll).

    With ``live=False`` (the default — writer known dead) a final line
    that fails to parse or validate is discarded as a crash mid-append;
    with ``live=True`` an incomplete final line is silently withheld (it
    may still be completed) and a complete garbage line raises.  Damage
    anywhere earlier always raises
    :class:`~repro.errors.EngineTraceError`.  Post-hoc analysis and
    follow mode (:mod:`repro.engine.live`) share this single parsing
    path, so their torn-tail policies can never drift.
    """
    trace_path = Path(path)
    if not trace_path.exists():
        raise EngineTraceError(f"trace file not found: {trace_path}")
    return TraceCursor(trace_path, live=live).poll()


# -- analysis -----------------------------------------------------------------------


@dataclass
class ShardProfile:
    """Execution story of one shard, reconstructed from its events."""

    plan_label: str
    shard_index: int
    status: str = "running"  # completed | quarantined | skipped | running
    attempts: int = 0
    duration_s: Optional[float] = None
    commit_lag_s: Optional[float] = None
    retry_reasons: List[str] = field(default_factory=list)
    worker: Optional[str] = None  # "host:pid" (distributed) or a bare pid
    _last_started_mono: Optional[float] = None

    @property
    def name(self) -> str:
        return f"{self.plan_label}#s{self.shard_index}"


@dataclass(frozen=True)
class TimelineEntry:
    """One retry or quarantine occurrence, in run-relative time."""

    elapsed_s: float
    plan_label: str
    shard_index: int
    attempt: Optional[int]
    reason: str


@dataclass
class TraceReport:
    """Straggler/retry analysis of one campaign trace."""

    events: int
    plans: List[str]
    shards: List[ShardProfile]
    skipped: int
    span_s: float
    cycles_executed: int
    cycles_skipped: int
    effective_cycles_per_sec: float
    duration_p50_s: Optional[float]
    duration_p95_s: Optional[float]
    duration_max_s: Optional[float]
    slowest: List[ShardProfile]
    retry_timeline: List[TimelineEntry]
    quarantine_timeline: List[TimelineEntry]
    commit_lag_p50_s: Optional[float]
    commit_lag_max_s: Optional[float]
    workers: Dict[str, int] = field(default_factory=dict)
    """Shards finished per worker identity, when the trace attributes them
    (serial runs record the engine pid; distributed runs ``host:pid``)."""

    def render(self) -> str:
        """Human-readable multi-line report (what the CLI prints)."""
        lines = [
            f"trace report: {len(self.plans)} plan(s), {len(self.shards)} shard(s), "
            f"{self.events} events over {self.span_s:.2f}s",
            f"  cycles: {self.cycles_executed} executed"
            + (
                f" + {self.cycles_skipped} resumed from checkpoint"
                if self.cycles_skipped
                else ""
            )
            + f"  ({self.effective_cycles_per_sec:.2f} executed cycles/s)",
        ]
        if self.duration_p50_s is not None:
            lines.append(
                "  shard duration: "
                f"p50 {self.duration_p50_s:.2f}s  "
                f"p95 {self.duration_p95_s:.2f}s  "
                f"max {self.duration_max_s:.2f}s"
            )
        if self.slowest:
            lines.append(f"  slowest {len(self.slowest)} shard(s):")
            for profile in self.slowest:
                line = (
                    f"    {profile.name:<40} {profile.duration_s:8.2f}s  "
                    f"attempts={profile.attempts}"
                )
                if profile.worker is not None:
                    line += f"  worker={profile.worker}"
                lines.append(line)
        if self.workers:
            counts = ", ".join(
                f"{worker}: {count}"
                for worker, count in sorted(
                    self.workers.items(), key=lambda item: (-item[1], item[0])
                )
            )
            lines.append(f"  shards per worker: {counts}")
        if self.skipped:
            lines.append(f"  resumed (skipped) shards: {self.skipped}")
        lines.append(f"  retries: {len(self.retry_timeline)}")
        for entry in self.retry_timeline:
            lines.append(
                f"    +{entry.elapsed_s:.2f}s {entry.plan_label}#s{entry.shard_index} "
                f"attempt {entry.attempt if entry.attempt is not None else '?'}: "
                f"{entry.reason}"
            )
        lines.append(f"  quarantined: {len(self.quarantine_timeline)}")
        for entry in self.quarantine_timeline:
            lines.append(
                f"    +{entry.elapsed_s:.2f}s {entry.plan_label}#s{entry.shard_index} "
                f"after {entry.attempt if entry.attempt is not None else '?'} "
                f"attempts: {entry.reason}"
            )
        if self.commit_lag_p50_s is not None:
            lines.append(
                "  checkpoint commit lag: "
                f"p50 {self.commit_lag_p50_s * 1000.0:.1f}ms  "
                f"max {self.commit_lag_max_s * 1000.0:.1f}ms"
            )
        return "\n".join(lines)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence (non-empty)."""
    rank = min(
        len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[int(rank)]


class TraceReportBuilder:
    """Incrementally folds trace records into :class:`TraceReport` state.

    :meth:`add` is O(1) per record, so a follower updates its view in
    O(new records) per poll; :meth:`report` ranks durations on demand
    (O(shards log shards), paid per *render*, never per record).
    :func:`build_trace_report` is a thin wrapper — one ``add_all`` plus
    one ``report()`` — so follow-mode aggregation and the post-hoc report
    are the same computation and can never drift.
    """

    def __init__(self) -> None:
        self.profiles: Dict[Tuple[str, int], ShardProfile] = {}
        self.plans: List[str] = []
        self.retry_timeline: List[TimelineEntry] = []
        self.quarantine_timeline: List[TimelineEntry] = []
        self.workers: Dict[str, int] = {}
        self.events = 0
        self.base_mono: Optional[float] = None
        self.last_record: Optional[TraceRecord] = None

    def _profile(self, record: TraceRecord) -> ShardProfile:
        key = record.shard_key
        if key not in self.profiles:
            self.profiles[key] = ShardProfile(
                plan_label=record.plan_label, shard_index=record.shard_index
            )
        return self.profiles[key]

    def add(self, record: TraceRecord) -> None:
        """Fold one record into the running per-shard state."""
        self.events += 1
        if self.base_mono is None:
            self.base_mono = record.mono_time_s
        self.last_record = record
        if record.plan_label not in self.plans:
            self.plans.append(record.plan_label)
        if record.shard_index == PLAN_EVENT_INDEX:
            return  # plan-level event, not a shard
        if record.kind == "shard-started":
            entry = self._profile(record)
            if entry.status != "running":
                # A start after completion means the trace file mixes runs
                # (a restarted campaign appended to the same path); the new
                # run's story supersedes the old one's.
                entry.status = "running"
                entry.attempts = 0
                entry.duration_s = None
                entry.commit_lag_s = None
            entry.attempts += 1
            entry._last_started_mono = record.mono_time_s
            if record.worker_pid is not None:
                entry.worker = str(record.worker_pid)
        elif record.kind == "shard-finished":
            entry = self._profile(record)
            entry.status = "completed"
            if record.attempt is not None:
                entry.attempts = max(entry.attempts, record.attempt)
            if entry._last_started_mono is not None:
                duration = record.mono_time_s - entry._last_started_mono
                # A negative gap means the start came from a different boot
                # (monotonic clocks don't compare across runs): no duration.
                entry.duration_s = duration if duration >= 0.0 else None
            if record.worker_pid is not None:
                entry.worker = str(record.worker_pid)
            if entry.worker is not None:
                self.workers[entry.worker] = self.workers.get(entry.worker, 0) + 1
        elif record.kind == "shard-retried":
            entry = self._profile(record)
            entry.retry_reasons.append(record.detail)
            self.retry_timeline.append(
                TimelineEntry(
                    elapsed_s=max(0.0, record.mono_time_s - self.base_mono),
                    plan_label=record.plan_label,
                    shard_index=record.shard_index,
                    attempt=record.attempt,
                    reason=record.detail,
                )
            )
        elif record.kind == "shard-skipped":
            entry = self._profile(record)
            entry.status = "skipped"
        elif record.kind == "shard-quarantined":
            entry = self._profile(record)
            entry.status = "quarantined"
            if record.attempt is not None:
                entry.attempts = max(entry.attempts, record.attempt)
            self.quarantine_timeline.append(
                TimelineEntry(
                    elapsed_s=max(0.0, record.mono_time_s - self.base_mono),
                    plan_label=record.plan_label,
                    shard_index=record.shard_index,
                    attempt=record.attempt,
                    reason=record.detail,
                )
            )
        elif record.kind == "checkpoint-written":
            if record.commit_lag_s is not None:
                self._profile(record).commit_lag_s = record.commit_lag_s

    def add_all(self, records: Sequence[TraceRecord]) -> None:
        for record in records:
            self.add(record)

    # -- live-view accessors --------------------------------------------------------

    def running_shards(self) -> List[ShardProfile]:
        """Shards started but not yet finished/skipped/quarantined."""
        return [p for p in self.profiles.values() if p.status == "running"]

    def shard_age_s(self, profile: ShardProfile) -> Optional[float]:
        """How long a running shard has been in flight, in *trace* time.

        Measured against the newest record's monotonic timestamp — not
        the follower's own clock, which may live on another machine (or
        another boot) than the writer's.
        """
        if profile._last_started_mono is None or self.last_record is None:
            return None
        return max(0.0, self.last_record.mono_time_s - profile._last_started_mono)

    # -- report ---------------------------------------------------------------------

    def report(self, slowest: int = 5) -> TraceReport:
        """The straggler report over everything folded in so far."""
        if not self.events:
            raise EngineTraceError("trace contains no records")
        shards = list(self.profiles.values())
        durations = sorted(
            p.duration_s for p in shards if p.duration_s is not None
        )
        lags = sorted(
            p.commit_lag_s for p in shards if p.commit_lag_s is not None
        )
        ranked = sorted(
            (p for p in shards if p.duration_s is not None),
            key=lambda p: p.duration_s,
            reverse=True,
        )
        last = self.last_record
        # Clamped: a restarted run appended to the same file makes raw mono
        # deltas meaningless (and possibly negative).
        span = max(0.0, last.mono_time_s - self.base_mono)
        return TraceReport(
            events=self.events,
            plans=list(self.plans),
            shards=shards,
            skipped=sum(1 for p in shards if p.status == "skipped"),
            span_s=span,
            cycles_executed=last.cycles_done - last.cycles_skipped,
            cycles_skipped=last.cycles_skipped,
            effective_cycles_per_sec=last.cycles_per_sec,
            duration_p50_s=_percentile(durations, 0.50) if durations else None,
            duration_p95_s=_percentile(durations, 0.95) if durations else None,
            duration_max_s=durations[-1] if durations else None,
            slowest=ranked[: max(0, slowest)],
            retry_timeline=list(self.retry_timeline),
            quarantine_timeline=list(self.quarantine_timeline),
            commit_lag_p50_s=_percentile(lags, 0.50) if lags else None,
            commit_lag_max_s=lags[-1] if lags else None,
            workers=dict(self.workers),
        )


def build_trace_report(
    records: Sequence[TraceRecord], slowest: int = 5
) -> TraceReport:
    """Reconstruct per-shard execution and the straggler story from a trace."""
    if not records:
        raise EngineTraceError("trace contains no records")
    builder = TraceReportBuilder()
    builder.add_all(records)
    return builder.report(slowest=slowest)


def load_trace_report(path: PathLike, slowest: int = 5) -> TraceReport:
    """Convenience wrapper: :func:`read_trace` then :func:`build_trace_report`."""
    return build_trace_report(read_trace(path), slowest=slowest)
