"""Sharded campaign execution engine.

Every campaign in the repo — CLI, fleet, benches, examples — runs through
this layer:

1. declare a :class:`CampaignPlan` (spec + device + fault budget + seed
   policy + label);
2. the plan splits its fault budget into deterministic shards
   (:meth:`CampaignPlan.shards`);
3. the fault-tolerant :class:`~repro.engine.supervisor.ShardSupervisor`
   runs the shards (bounded retries with backoff, timeout-triggered pool
   rebuild, poison-shard quarantine, optional write-ahead checkpoint
   journal with resume, graceful SIGINT/SIGTERM);
4. shard results merge in shard order via
   :meth:`~repro.core.results.CampaignResult.merged_with`, with execution
   accounting attached as
   :class:`~repro.core.results.ExecutionStats`.

Because the shard decomposition and per-shard seeds depend only on the
plan, the merged result is identical for any executor, worker count,
retry pattern, or checkpoint/resume split — ``run_plan(plan, jobs=1)``
and a killed-and-resumed ``run_plan(plan, jobs=16)`` agree exactly.

Example
-------
>>> from repro.engine import CampaignPlan, run_plan
>>> from repro.workload.spec import WorkloadSpec
>>> plan = CampaignPlan(spec=WorkloadSpec(), faults=8, base_seed=7,
...                     shard_faults=2, label="demo")
>>> result = run_plan(plan, jobs=4)  # doctest: +SKIP
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.core.results import CampaignResult, ExecutionStats, ShardTiming
from repro.engine.cas import ResultCAS
from repro.engine.checkpoint import (
    CheckpointJournal,
    compact_journal,
    CompactionStats,
    load_resume_state,
    plans_fingerprint,
    result_schema_version,
    ResumeState,
)
from repro.engine.executors import (
    make_executor,
    ParallelExecutor,
    SerialExecutor,
    ShardTask,
)
from repro.engine.plan import (
    CampaignPlan,
    DEFAULT_SHARD_FAULTS,
    derive_shard_seed,
    merge_shard_results,
    ShardSpec,
)
from repro.engine.progress import (
    ConsoleProgress,
    EngineTelemetry,
    fanout_hooks,
    format_eta,
    PLAN_EVENT_INDEX,
    ProgressEvent,
    ProgressHook,
)
from repro.engine.remote import (
    parse_address,
    RemoteExecutor,
    run_worker,
    worker_identity,
)
from repro.engine.serve import (
    CampaignService,
    follow_campaign,
    run_serve,
    SubmissionOutcome,
    submit_campaign,
)
from repro.engine.supervisor import (
    merge_plan_runs,
    RetryPolicy,
    ShardRun,
    ShardSupervisor,
)
from repro.engine.trace import (
    build_trace_report,
    load_trace_report,
    read_trace,
    TraceCursor,
    TraceReport,
    TraceReportBuilder,
    TraceRecord,
    TraceWriter,
)
from repro.engine.live import (
    FollowSession,
    follow_trace,
    LiveRenderer,
    TraceSource,
)
from repro.errors import CampaignError

PlanDoneHook = Callable[[int, CampaignResult], None]

_merge_plan_runs = merge_plan_runs


def run_plans(
    plans: Sequence[CampaignPlan],
    executor=None,
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    on_plan_done: Optional[PlanDoneHook] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    max_retries: Optional[int] = None,
    shard_timeout_s: Optional[float] = None,
    quarantine: bool = False,
    retry_policy: Optional[RetryPolicy] = None,
    listen: Optional[str] = None,
    lease_timeout_s: Optional[float] = None,
) -> List[CampaignResult]:
    """Execute several plans through one supervised executor, merging per plan.

    Shards of all plans form a single work queue, so a parallel run
    overlaps shards *across* plans (a fleet of six one-shard devices keeps
    six workers busy).  Results come back in plan order; ``on_plan_done``
    fires as soon as each plan's last shard has merged.

    Fault tolerance (default path, ``executor=None``): shards are executed
    by a :class:`ShardSupervisor` with ``max_retries`` bounded retries and
    exponential backoff, per-shard ``shard_timeout_s`` enforcement (pool
    kill-and-rebuild), and — with ``quarantine=True`` — poison-shard
    quarantine instead of :class:`~repro.errors.ShardFailureError`.
    ``checkpoint`` names a write-ahead journal file; with ``resume=True``
    shards already journaled for this exact plan batch are loaded instead
    of re-executed, which yields a merged result identical to an
    uninterrupted run.  Passing an explicit ``executor`` bypasses all
    supervision options (combining them is an error).

    Distributed execution: ``listen="HOST:PORT"`` serves the shard queue
    over TCP via :class:`~repro.engine.remote.RemoteExecutor` instead of
    running shards locally — start ``repro worker --connect HOST:PORT``
    processes (any machine that can reach the coordinator) to execute
    them.  ``lease_timeout_s`` bounds how long a silent worker holds a
    shard before it is requeued.  Retries, quarantine, checkpoint and
    resume semantics are identical to local execution; ``jobs`` is
    ignored (the worker fleet is the parallelism).
    """
    supervision_requested = (
        checkpoint is not None
        or resume
        or max_retries is not None
        or shard_timeout_s is not None
        or quarantine
        or retry_policy is not None
        or listen is not None
        or lease_timeout_s is not None
    )
    if lease_timeout_s is not None and listen is None:
        raise CampaignError("lease_timeout_s requires listen=HOST:PORT")
    if executor is not None and supervision_requested:
        raise CampaignError(
            "pass either an explicit executor or supervision options, not both"
        )
    journal: Optional[CheckpointJournal] = None
    if executor is None:
        if resume and checkpoint is None:
            raise CampaignError("resume requires a checkpoint path")
        policy = retry_policy
        if policy is None:
            policy = (
                RetryPolicy(max_retries=max_retries)
                if max_retries is not None
                else RetryPolicy()
            )
        resume_state: Optional[ResumeState] = None
        if checkpoint is not None:
            fingerprint = plans_fingerprint(plans)
            if resume:
                resume_state = load_resume_state(checkpoint, fingerprint)
            journal = CheckpointJournal(checkpoint, fingerprint)
        if listen is not None:
            executor = RemoteExecutor(
                listen=listen,
                policy=policy,
                journal=journal,
                resume=resume_state,
                quarantine_enabled=quarantine,
                shard_timeout_s=shard_timeout_s,
                lease_timeout_s=(
                    lease_timeout_s if lease_timeout_s is not None else 15.0
                ),
            )
        else:
            executor = ShardSupervisor(
                jobs=jobs if jobs is not None else 1,
                shard_timeout_s=shard_timeout_s,
                policy=policy,
                journal=journal,
                resume=resume_state,
                quarantine_enabled=quarantine,
            )
    tasks: List[ShardTask] = [
        (plan_index, plan, shard)
        for plan_index, plan in enumerate(plans)
        for shard in plan.shards()
    ]
    telemetry = EngineTelemetry(
        shards_total=len(tasks),
        cycles_total=sum(shard.faults for _, _, shard in tasks),
        hook=progress,
    )
    shard_runs: List[dict] = [{} for _ in plans]
    merged: List[Optional[CampaignResult]] = [None for _ in plans]
    try:
        for (plan_index, shard_index), value in executor.execute(tasks, telemetry):
            run = (
                value
                if isinstance(value, ShardRun)
                else ShardRun(result=value, attempts=1, status="completed")
            )
            plan = plans[plan_index]
            shard_runs[plan_index][shard_index] = run
            if len(shard_runs[plan_index]) == plan.shard_count():
                ordered = [
                    shard_runs[plan_index][i] for i in range(plan.shard_count())
                ]
                merged[plan_index] = _merge_plan_runs(plan, ordered)
                telemetry.plan_finished(plan.display_label(), plan.shard_count())
                if on_plan_done is not None:
                    on_plan_done(plan_index, merged[plan_index])
    finally:
        if journal is not None:
            journal.close()
    missing = [index for index, result in enumerate(merged) if result is None]
    if missing:
        raise RuntimeError(f"executor returned no result for plans {missing}")
    return merged  # type: ignore[return-value]


def run_plan(
    plan: CampaignPlan,
    executor=None,
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    max_retries: Optional[int] = None,
    shard_timeout_s: Optional[float] = None,
    quarantine: bool = False,
    retry_policy: Optional[RetryPolicy] = None,
    listen: Optional[str] = None,
    lease_timeout_s: Optional[float] = None,
) -> CampaignResult:
    """Execute one plan and return its merged campaign result."""
    return run_plans(
        [plan],
        executor=executor,
        jobs=jobs,
        progress=progress,
        checkpoint=checkpoint,
        resume=resume,
        max_retries=max_retries,
        shard_timeout_s=shard_timeout_s,
        quarantine=quarantine,
        retry_policy=retry_policy,
        listen=listen,
        lease_timeout_s=lease_timeout_s,
    )[0]


__all__ = [
    "CampaignPlan",
    "CampaignService",
    "CheckpointJournal",
    "CompactionStats",
    "ConsoleProgress",
    "DEFAULT_SHARD_FAULTS",
    "EngineTelemetry",
    "ExecutionStats",
    "FollowSession",
    "LiveRenderer",
    "PLAN_EVENT_INDEX",
    "ParallelExecutor",
    "ProgressEvent",
    "ProgressHook",
    "RemoteExecutor",
    "ResultCAS",
    "ResumeState",
    "RetryPolicy",
    "SerialExecutor",
    "ShardRun",
    "ShardSpec",
    "ShardSupervisor",
    "ShardTiming",
    "SubmissionOutcome",
    "TraceCursor",
    "TraceRecord",
    "TraceReport",
    "TraceReportBuilder",
    "TraceSource",
    "TraceWriter",
    "build_trace_report",
    "compact_journal",
    "derive_shard_seed",
    "fanout_hooks",
    "follow_campaign",
    "follow_trace",
    "format_eta",
    "load_resume_state",
    "load_trace_report",
    "make_executor",
    "merge_plan_runs",
    "merge_shard_results",
    "parse_address",
    "plans_fingerprint",
    "read_trace",
    "result_schema_version",
    "run_plan",
    "run_plans",
    "run_serve",
    "run_worker",
    "submit_campaign",
    "worker_identity",
]
