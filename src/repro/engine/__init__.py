"""Sharded campaign execution engine.

Every campaign in the repo — CLI, fleet, benches, examples — runs through
this layer:

1. declare a :class:`CampaignPlan` (spec + device + fault budget + seed
   policy + label);
2. the plan splits its fault budget into deterministic shards
   (:meth:`CampaignPlan.shards`);
3. an executor (:class:`SerialExecutor` or the process-pool
   :class:`ParallelExecutor`) runs the shards;
4. shard results merge in shard order via
   :meth:`~repro.core.results.CampaignResult.merged_with`.

Because the shard decomposition and per-shard seeds depend only on the
plan, the merged result is identical for any executor and worker count —
``run_plan(plan, jobs=1)`` and ``run_plan(plan, jobs=16)`` agree exactly.

Example
-------
>>> from repro.engine import CampaignPlan, run_plan
>>> from repro.workload.spec import WorkloadSpec
>>> plan = CampaignPlan(spec=WorkloadSpec(), faults=8, base_seed=7,
...                     shard_faults=2, label="demo")
>>> result = run_plan(plan, jobs=4)  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.results import CampaignResult
from repro.engine.executors import (
    make_executor,
    ParallelExecutor,
    SerialExecutor,
    ShardTask,
)
from repro.engine.plan import (
    CampaignPlan,
    DEFAULT_SHARD_FAULTS,
    derive_shard_seed,
    merge_shard_results,
    ShardSpec,
)
from repro.engine.progress import (
    ConsoleProgress,
    EngineTelemetry,
    ProgressEvent,
    ProgressHook,
)

PlanDoneHook = Callable[[int, CampaignResult], None]


def run_plans(
    plans: Sequence[CampaignPlan],
    executor=None,
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    on_plan_done: Optional[PlanDoneHook] = None,
) -> List[CampaignResult]:
    """Execute several plans through one executor, merging per plan.

    Shards of all plans form a single work queue, so a parallel executor
    overlaps shards *across* plans (a fleet of six one-shard devices keeps
    six workers busy).  Results come back in plan order; ``on_plan_done``
    fires as soon as each plan's last shard has merged — for serial
    executors that is progressive, matching the legacy fleet progress
    callback semantics.
    """
    if executor is None:
        executor = make_executor(jobs)
    tasks: List[ShardTask] = [
        (plan_index, plan, shard)
        for plan_index, plan in enumerate(plans)
        for shard in plan.shards()
    ]
    telemetry = EngineTelemetry(
        shards_total=len(tasks),
        cycles_total=sum(shard.faults for _, _, shard in tasks),
        hook=progress,
    )
    shard_results: List[dict] = [{} for _ in plans]
    merged: List[Optional[CampaignResult]] = [None for _ in plans]
    for (plan_index, shard_index), result in executor.execute(tasks, telemetry):
        plan = plans[plan_index]
        shard_results[plan_index][shard_index] = result
        if len(shard_results[plan_index]) == plan.shard_count():
            ordered = tuple(
                shard_results[plan_index][i] for i in range(plan.shard_count())
            )
            merged[plan_index] = merge_shard_results(plan, ordered)
            telemetry.plan_finished(plan.display_label(), plan.shard_count())
            if on_plan_done is not None:
                on_plan_done(plan_index, merged[plan_index])
    missing = [index for index, result in enumerate(merged) if result is None]
    if missing:
        raise RuntimeError(f"executor returned no result for plans {missing}")
    return merged  # type: ignore[return-value]


def run_plan(
    plan: CampaignPlan,
    executor=None,
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
) -> CampaignResult:
    """Execute one plan and return its merged campaign result."""
    return run_plans([plan], executor=executor, jobs=jobs, progress=progress)[0]


__all__ = [
    "CampaignPlan",
    "ConsoleProgress",
    "DEFAULT_SHARD_FAULTS",
    "EngineTelemetry",
    "ParallelExecutor",
    "ProgressEvent",
    "ProgressHook",
    "SerialExecutor",
    "ShardSpec",
    "derive_shard_seed",
    "make_executor",
    "merge_shard_results",
    "run_plan",
    "run_plans",
]
