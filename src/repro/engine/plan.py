"""Declarative campaign plans and shard planning.

A :class:`CampaignPlan` captures *what* to run — workload spec, device
config, fault budget, seed policy, timing — without committing to *how* it
runs.  Executors (see :mod:`repro.engine.executors`) turn a plan into one
:class:`~repro.core.results.CampaignResult`, either serially or across a
process pool.

Fault-injection cycles are embarrassingly parallel: each cycle boots from a
seeded platform, and campaign results merge associatively through
:meth:`CampaignResult.merged_with`.  A plan therefore splits its fault
budget into independent **shards**, each a miniature campaign with its own
deterministic seed.  The shard decomposition depends only on the plan —
never on the executor or worker count — which is what makes engine runs
reproducible: the same plan yields the same merged result whether it runs
on one process or sixteen.

Seed policy
-----------
Shard 0 always receives the plan's ``base_seed`` verbatim, so a
single-shard plan reproduces the legacy ``Campaign(TestPlatform(...)).run()``
result bit-for-bit.  Shards ``>= 1`` receive a SplitMix64-style mix of
``(base_seed, shard_index)``; the finalizer's avalanche behaviour keeps the
seeds of neighbouring shards (and of neighbouring fleet devices, which use
small base-seed strides) disjoint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from functools import reduce
from typing import Optional, Tuple

from repro.core import calibration
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.platform import TestPlatform
from repro.core.results import CampaignResult
from repro.errors import CampaignError
from repro.ssd.device import SsdConfig
from repro.units import MSEC, SEC
from repro.workload.spec import WorkloadSpec

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15

DEFAULT_SHARD_FAULTS = 2
"""Default shard granularity for sharded entry points (CLI ``campaign``)."""


def derive_shard_seed(base_seed: int, shard_index: int) -> int:
    """Deterministic, disjoint per-shard seed.

    Shard 0 keeps ``base_seed`` (legacy single-platform parity); later
    shards get a SplitMix64 finalizer over the pair, stable across
    processes and Python versions (no salted ``hash()``).
    """
    if shard_index < 0:
        raise CampaignError("shard index must be non-negative")
    if shard_index == 0:
        return int(base_seed)
    x = (int(base_seed) ^ (shard_index * _GOLDEN)) & _MASK64
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@dataclass(frozen=True)
class ShardSpec:
    """One independently-executable slice of a plan's fault budget."""

    index: int
    count: int
    seed: int
    faults: int


@dataclass(frozen=True)
class CampaignPlan:
    """Everything needed to run (or re-run) one campaign, picklable.

    ``shard_faults`` is the maximum faults per shard; ``None`` keeps the
    whole budget in a single shard, which reproduces the legacy serial
    ``Campaign.run()`` exactly.  The shard split is balanced (sizes differ
    by at most one) and depends only on plan fields, so serial and parallel
    executors agree on it.

    Example
    -------
    >>> from repro.workload.spec import WorkloadSpec
    >>> plan = CampaignPlan(spec=WorkloadSpec(), faults=8, base_seed=7,
    ...                     shard_faults=2)
    >>> [shard.faults for shard in plan.shards()]
    [2, 2, 2, 2]
    >>> plan.shards()[0].seed  # shard 0 keeps the base seed
    7
    """

    spec: WorkloadSpec
    faults: int
    device: Optional[SsdConfig] = None
    base_seed: int = 0
    label: str = ""
    shard_faults: Optional[int] = None
    settle_us: int = calibration.RECOVERY_SETTLE_US
    ready_timeout_us: int = 10 * SEC
    warmup_us: int = 200 * MSEC
    max_segment_pages: int = 128

    def __post_init__(self) -> None:
        if self.faults <= 0:
            raise CampaignError("plan needs a positive fault budget")
        if self.shard_faults is not None and self.shard_faults <= 0:
            raise CampaignError("shard_faults must be positive (or None)")

    # -- planning -----------------------------------------------------------------

    def shard_count(self) -> int:
        """Number of shards the fault budget splits into."""
        if self.shard_faults is None:
            return 1
        return -(-self.faults // self.shard_faults)  # ceil division

    def shards(self) -> Tuple[ShardSpec, ...]:
        """The deterministic shard decomposition (balanced, disjoint seeds)."""
        count = self.shard_count()
        base, extra = divmod(self.faults, count)
        return tuple(
            ShardSpec(
                index=index,
                count=count,
                seed=derive_shard_seed(self.base_seed, index),
                faults=base + (1 if index < extra else 0),
            )
            for index in range(count)
        )

    def fingerprint(self) -> str:
        """Stable content hash of the plan type and every plan field.

        Checkpoint journal records and CAS entries are keyed by this (see
        :mod:`repro.engine.checkpoint`), so shard results recorded for one
        campaign definition can never be replayed into a different one.
        Hashes canonical JSON of the dataclass tree — no salted ``hash()``,
        stable across processes and Python versions.

        The plan *class* is part of the hash: subclasses override
        :meth:`run_shard` (dirty-cycle, topology, app campaigns), so two
        plans with identical field values but different types produce
        different results and must never share a checkpoint/CAS key.
        """
        blob = json.dumps(
            {"plan_type": type(self).__qualname__, "fields": asdict(self)},
            sort_keys=True,
            default=str,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def display_label(self) -> str:
        """Label of the merged result (falls back to the platform describe)."""
        if self.label:
            return self.label
        device = self.device.name if self.device is not None else "generic"
        return f"device={device} workload=[{self.spec.describe()}]"

    # -- worker-side hydration ----------------------------------------------------

    def campaign_config(self, faults: int) -> CampaignConfig:
        """The :class:`CampaignConfig` for a shard of ``faults`` cycles."""
        return CampaignConfig(
            faults=faults,
            settle_us=self.settle_us,
            ready_timeout_us=self.ready_timeout_us,
            warmup_us=self.warmup_us,
        )

    def build_platform(self, seed: int) -> TestPlatform:
        """A fresh :class:`TestPlatform` for one shard."""
        return TestPlatform(
            self.spec,
            config=self.device,
            seed=seed,
            max_segment_pages=self.max_segment_pages,
        )

    def shard_label(self, shard: ShardSpec) -> str:
        """Display label of one shard's result (``#s<i>`` suffix when split).

        Shared by every plan subclass (e.g. the stress harness's
        :class:`repro.stress.dirty_cycle.DirtyCyclePlan`) so merged results
        read identically whichever plan produced them.
        """
        label = self.display_label()
        if shard.count > 1:
            label = f"{label}#s{shard.index}"
        return label

    def run_shard(self, shard: ShardSpec) -> CampaignResult:
        """Hydrate a platform and run one shard to completion.

        This is the function parallel workers execute after unpickling the
        plan; it is also the serial executor's inner loop, so both paths
        share one code path by construction.
        """
        label = self.shard_label(shard)
        platform = self.build_platform(shard.seed)
        campaign = Campaign(platform, self.campaign_config(shard.faults))
        return campaign.run(label)


def merge_shard_results(
    plan: CampaignPlan, shard_results: Tuple[CampaignResult, ...]
) -> CampaignResult:
    """Fold ordered shard results into one campaign result.

    Merging goes through :meth:`CampaignResult.merged_with` in shard order
    (deterministic regardless of completion order), then cycles are
    renumbered so the merged result reads like one long campaign.
    """
    if not shard_results:
        raise CampaignError("cannot merge zero shard results")
    combined = reduce(lambda a, b: a.merged_with(b), shard_results)
    merged = combined.clone(label=plan.display_label())
    merged.cycles = [
        replace(cycle, cycle_index=index)
        for index, cycle in enumerate(combined.cycles)
    ]
    return merged
