"""Distributed shard execution over TCP: coordinator, worker, RemoteExecutor.

The paper's testbed runs thousands of power-cut experiments per drive;
one host's process pool is the wrong ceiling for that.  This module takes
the engine's executor protocol — ``execute(tasks, telemetry) -> (key,
ShardRun)`` — across machine boundaries while changing nothing above it:
merge order, checkpoint journal, resume, retry/quarantine policy and the
trace vocabulary are exactly the single-host ones.

Wire protocol (version 1)
-------------------------
Frames are **length-prefixed JSON objects**: a 4-byte big-endian unsigned
payload length followed by that many bytes of UTF-8 JSON.  Frames above
:data:`MAX_FRAME_BYTES` are rejected.  The conversation:

1. ``hello``    (worker → coordinator): ``{v, worker, fingerprint}``.
   ``worker`` is the worker's identity (``host:pid``); ``fingerprint`` is
   the plan-batch fingerprint the worker already holds (``null`` on a
   fresh connect).  A version mismatch or a stale fingerprint draws a
   ``reject`` frame and the connection closes — a worker hydrated for a
   different campaign can never execute shards of this one.
2. ``welcome``  (coordinator → worker): ``{v, fingerprint, plans,
   lease_timeout_s, heartbeat_s}``.  ``plans`` is the pickled, base64'd
   plan batch; the worker re-derives :func:`plans_fingerprint` after
   hydration and aborts on any mismatch (codec drift detection).  The
   protocol trusts its network exactly as much as ``multiprocessing``
   trusts its fork: plans travel as pickles, so only run coordinators on
   networks you trust.
3. Work loop (repeated): worker sends ``request``; coordinator answers
   ``shard {plan, shard, attempt}`` (a **lease**), ``wait {delay_s}``
   (nothing leasable right now) or ``shutdown`` (campaign complete).
   While executing, the worker's heartbeat thread sends ``heartbeat
   {plan, shard}`` every ``heartbeat_s`` to renew the lease; the shard
   concludes with ``result {plan, shard, attempt, result}`` (the
   checkpoint codec's :func:`result_to_record` record — the journal's
   on-disk format *is* the wire format) or ``failure {plan, shard,
   attempt, error}``.

Leases
------
A lease is the coordinator's only claim about a worker: *this shard is
being executed by that connection until the deadline*.  Heartbeats move
the deadline; a worker that dies (connection drops) or wedges (heartbeats
stop) loses the lease and the shard returns to the queue, charged one
attempt, to be retried under the same
:class:`~repro.engine.supervisor.RetryPolicy` backoff/quarantine
machinery as local execution.  Because shard seeds are deterministic, a
shard re-executed by a different machine returns a bit-identical result —
which is what makes the merged summary of a distributed, worker-killed
run equal the serial run's, byte for byte.

Commits all flow through the coordinator's single
:class:`~repro.engine.checkpoint.CheckpointJournal`, so ``--resume``
works identically for local and distributed runs (and a journal written
by one can resume the other).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
import struct
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engine.checkpoint import (
    CheckpointJournal,
    ResumeState,
    plans_fingerprint,
    result_from_record,
    result_to_record,
)
from repro.engine.executors import BackoffPoller, ShardKey, ShardTask, _run_shard_task
from repro.engine.progress import EngineTelemetry
from repro.engine.supervisor import (
    InterruptFlag,
    interrupt_flag_guard,
    RetryPolicy,
    ShardRun,
)
from repro.errors import (
    CampaignError,
    CampaignInterrupted,
    RemoteProtocolError,
    ShardFailureError,
)

PROTOCOL_VERSION = 1
"""Wire protocol version; both ends must agree exactly."""

MAX_FRAME_BYTES = 64 * 1024 * 1024
"""Upper bound on one frame's payload (a plan batch or shard result)."""

DEFAULT_LEASE_TIMEOUT_S = 15.0
"""Lease lifetime without a heartbeat before the shard is requeued."""

_HEADER = struct.Struct(">I")


# -- frame codec --------------------------------------------------------------------


def send_frame(sock: socket.socket, payload: Dict) -> None:
    """Serialize one JSON frame onto the socket (length-prefixed)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"frame of {len(body)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at offset 0."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise RemoteProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"declared frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise RemoteProtocolError("connection closed between header and payload")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise RemoteProtocolError(f"frame is not valid JSON: {exc!r}") from exc
    if not isinstance(payload, dict) or "kind" not in payload:
        raise RemoteProtocolError("frame must be a JSON object with a 'kind'")
    return payload


# -- addresses & plan transport -----------------------------------------------------


def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` (or a ready tuple) → ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return (host or "127.0.0.1", int(port))
    text = str(address).strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
    else:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        raise CampaignError(
            f"listen/connect address must be HOST:PORT, :PORT or PORT, got {address!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise CampaignError(f"port out of range in address {address!r}")
    return (host or "127.0.0.1", port)


def encode_plans(plans: Sequence) -> str:
    """Plan batch → base64 pickle (the ``welcome`` frame's payload)."""
    return base64.b64encode(pickle.dumps(list(plans), protocol=4)).decode("ascii")


def decode_plans(blob: str) -> List:
    """Inverse of :func:`encode_plans`."""
    try:
        plans = pickle.loads(base64.b64decode(blob.encode("ascii")))
    except Exception as exc:
        raise RemoteProtocolError(f"plan batch failed to hydrate: {exc!r}") from exc
    if not isinstance(plans, list):
        raise RemoteProtocolError("plan batch did not decode to a list")
    return plans


def worker_identity() -> str:
    """This process's identity on the wire (``host:pid``)."""
    return f"{socket.gethostname()}:{os.getpid()}"


def validate_hello(payload: Dict, fingerprint: str) -> Optional[str]:
    """Why a ``hello`` must be rejected, or ``None`` when it is acceptable."""
    if payload.get("kind") != "hello":
        return f"expected hello, got {payload.get('kind')!r}"
    if payload.get("v") != PROTOCOL_VERSION:
        return (
            f"protocol version mismatch: coordinator speaks {PROTOCOL_VERSION}, "
            f"worker spoke {payload.get('v')!r}"
        )
    held = payload.get("fingerprint")
    if held is not None and held != fingerprint:
        return (
            f"stale worker: holds plans {held}, campaign is {fingerprint} — "
            "restart the worker so it re-hydrates"
        )
    return None


# -- coordinator --------------------------------------------------------------------


@dataclass
class _Lease:
    """One shard's claim by one worker connection."""

    worker: str
    conn_id: int
    attempt: int
    granted_mono: float
    deadline_mono: float


class RemoteExecutor:
    """Serves the shard task queue to ``repro worker`` processes over TCP.

    Drop-in for the supervisor in the executor protocol: ``execute(tasks,
    telemetry)`` yields ``(key, ShardRun)`` in task order.  Differences
    from :class:`~repro.engine.supervisor.ShardSupervisor` are purely
    *where* shards run — retries/backoff (:class:`RetryPolicy`), poison
    quarantine, the write-ahead journal and ``--resume`` behave
    identically, and retried shards remain bit-deterministic because only
    the plan's shard seeds feed the simulation.

    The listening socket binds in the constructor (so ``.address`` is
    known even for an ephemeral ``:0`` port); serving starts when
    :meth:`execute` runs and stops when the generator finalizes.  A
    coordinator object is single-use.
    """

    def __init__(
        self,
        listen: Union[str, Tuple[str, int]] = ("127.0.0.1", 0),
        policy: Optional[RetryPolicy] = None,
        journal: Optional[CheckpointJournal] = None,
        resume: Optional[ResumeState] = None,
        quarantine_enabled: bool = False,
        shard_timeout_s: Optional[float] = None,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        announce=None,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.journal = journal
        self.resume = resume if resume is not None else ResumeState()
        self.quarantine_enabled = quarantine_enabled
        self.shard_timeout_s = shard_timeout_s
        self.lease_timeout_s = max(0.1, lease_timeout_s)
        self.announce = announce if announce is not None else sys.stderr
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(parse_address(listen))
        self._server.listen(16)
        self.address: Tuple[str, int] = self._server.getsockname()[:2]
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._started = False
        self._shutdown = False
        self._fingerprint = ""
        self._plans_blob = ""
        self._order: List[ShardKey] = []
        self._by_key: Dict[ShardKey, ShardTask] = {}
        self._attempts: Dict[ShardKey, int] = {}
        self._ready: Dict[ShardKey, float] = {}
        self._ready_since: Dict[ShardKey, float] = {}
        self._leases: Dict[ShardKey, _Lease] = {}
        self._done: Dict[ShardKey, ShardRun] = {}
        self._events: deque = deque()
        self._conns: List[socket.socket] = []
        self._threads: List[threading.Thread] = []
        self._interrupt = InterruptFlag()
        self.workers_seen: List[str] = []

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    # -- public entry ---------------------------------------------------------------

    def execute(
        self, tasks: Sequence[ShardTask], telemetry: EngineTelemetry
    ) -> Iterator[Tuple[ShardKey, ShardRun]]:
        """Yield ``(key, ShardRun)`` in task order, serving shards over TCP."""
        if self._started:
            raise CampaignError("a RemoteExecutor coordinator is single-use")
        self._started = True
        plans: List = []
        for plan_index, plan, _ in tasks:
            if plan_index == len(plans):
                plans.append(plan)
        self._fingerprint = plans_fingerprint(plans)
        self._plans_blob = encode_plans(plans)
        now = time.monotonic()
        for plan_index, plan, shard in tasks:
            key = (plan_index, shard.index)
            self._order.append(key)
            self._by_key[key] = (plan_index, plan, shard)
            if key in self.resume.results:
                continue
            self._attempts[key] = 1
            self._ready[key] = now
            self._ready_since[key] = now
        self._announce(
            f"[engine] coordinator listening on {self.host}:{self.port} "
            f"(fingerprint {self._fingerprint}, "
            f"{len(self._ready)} shard(s) to lease) — start workers with: "
            f"repro worker --connect {self.host}:{self.port}"
        )
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        acceptor.start()
        with interrupt_flag_guard() as flag:
            self._interrupt = flag
            try:
                poller = BackoffPoller(cap_s=min(0.25, self.lease_timeout_s / 4.0))
                for plan_index, plan, shard in tasks:
                    key = (plan_index, shard.index)
                    if key in self.resume.results:
                        telemetry.shard_skipped(
                            plan.display_label(), shard.index, shard.count, shard.faults
                        )
                        yield key, ShardRun(
                            result=self.resume.results[key],
                            attempts=self.resume.attempts.get(key, 1),
                            status="resumed",
                        )
                        continue
                    while True:
                        with self._lock:
                            run = self._done.get(key)
                        if run is not None:
                            break
                        self._pump(telemetry, poller)
                    yield key, run
            finally:
                self._teardown()

    # -- driver side ----------------------------------------------------------------

    def _pump(self, telemetry: EngineTelemetry, poller: BackoffPoller) -> None:
        """Wait for activity, expire leases, apply queued events."""
        self._raise_if_interrupted()
        with self._cond:
            if not self._events:
                self._cond.wait(timeout=poller.next_delay())
            self._sweep_leases_locked()
            events = list(self._events)
            self._events.clear()
        if events:
            poller.reset()
        for event in events:
            self._apply_event(event, telemetry)

    def _raise_if_interrupted(self) -> None:
        if not self._interrupt:
            return
        if self.journal is not None:
            self.journal.close()
        raise CampaignInterrupted(
            f"campaign interrupted by {self._interrupt.signal_name}; "
            "checkpoint journal is flushed — restart with resume to continue"
        )

    def _sweep_leases_locked(self) -> None:
        """Requeue shards whose lease expired or overran the shard timeout."""
        now = time.monotonic()
        for key, lease in list(self._leases.items()):
            if now > lease.deadline_mono:
                reason = (
                    f"lease expired: no heartbeat from {lease.worker} "
                    f"within {self.lease_timeout_s:g}s"
                )
            elif (
                self.shard_timeout_s is not None
                and now - lease.granted_mono > self.shard_timeout_s
            ):
                reason = (
                    f"timeout: no result from {lease.worker} "
                    f"{self.shard_timeout_s:g}s after lease"
                )
            else:
                continue
            del self._leases[key]
            self._events.append(("lost", key, lease.attempt, lease.worker, reason))

    def _apply_event(self, event: Tuple, telemetry: EngineTelemetry) -> None:
        kind = event[0]
        if kind == "leased":
            _, key, attempt, worker = event
            plan_index, plan, shard = self._by_key[key]
            telemetry.shard_started(
                plan.display_label(),
                shard.index,
                shard.count,
                attempt=attempt,
                worker_pid=worker,
            )
            return
        if kind == "result":
            self._apply_result(event, telemetry)
            return
        # "failure" (worker reported an exception) and "lost" (connection
        # dropped / lease expired) charge the attempt identically: unlike a
        # shared process pool, a lease names exactly one culprit.
        _, key, attempt, worker, reason = event
        with self._lock:
            if key in self._done or self._attempts.get(key) != attempt:
                return  # stale: a newer attempt already superseded this one
        self._fail_attempt(key, attempt, reason, telemetry)

    def _apply_result(self, event: Tuple, telemetry: EngineTelemetry) -> None:
        _, key, attempt, worker, record, granted_mono, arrived_mono = event
        with self._lock:
            if key in self._done:
                return  # duplicate/stale completion
            pickup = granted_mono - self._ready_since.get(key, granted_mono)
        try:
            result = result_from_record(record)
        except Exception as exc:
            self._fail_attempt(
                key, attempt, f"undecodable result from {worker}: {exc!r}", telemetry
            )
            return
        plan_index, plan, shard = self._by_key[key]
        label = plan.display_label()
        if self.journal is not None:
            self.journal.append_shard(
                plan_index, shard.index, result, attempt, label=label
            )
            telemetry.checkpoint_written(
                label,
                shard.index,
                shard.count,
                commit_lag_s=max(0.0, time.monotonic() - arrived_mono),
            )
        telemetry.shard_finished(
            label,
            shard.index,
            shard.count,
            shard.faults,
            attempt=attempt,
            worker_pid=worker,
        )
        run = ShardRun(
            result=result,
            attempts=attempt,
            status="completed",
            pickup_latency_s=max(0.0, pickup),
            duration_s=max(0.0, arrived_mono - granted_mono),
        )
        with self._cond:
            self._done[key] = run
            if len(self._done) + len(self.resume.results) >= len(self._order):
                self._shutdown = True
            self._cond.notify_all()

    def _fail_attempt(
        self, key: ShardKey, attempt: int, reason: str, telemetry: EngineTelemetry
    ) -> None:
        plan_index, plan, shard = self._by_key[key]
        label = plan.display_label()
        if attempt >= self.policy.max_attempts:
            if self.journal is not None:
                self.journal.append_quarantine(plan_index, shard.index, attempt, reason)
            telemetry.shard_quarantined(
                label, shard.index, shard.count, reason, attempt=attempt
            )
            if not self.quarantine_enabled:
                raise ShardFailureError(
                    f"shard {label}#s{shard.index} failed after {attempt} attempts "
                    f"({reason}); enable quarantine to complete degraded campaigns"
                )
            run = ShardRun(
                result=None, attempts=attempt, status="quarantined", error=reason
            )
            with self._cond:
                self._done[key] = run
                if len(self._done) + len(self.resume.results) >= len(self._order):
                    self._shutdown = True
                self._cond.notify_all()
            return
        telemetry.shard_retried(
            label, shard.index, shard.count, reason, attempt=attempt
        )
        backoff = self.policy.backoff_s(shard.seed, attempt)
        now = time.monotonic()
        with self._cond:
            self._attempts[key] = attempt + 1
            self._ready[key] = now + backoff
            self._ready_since[key] = now
            self._cond.notify_all()

    # -- connection side (handler threads) --------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # server socket closed: coordinator is done
            with self._lock:
                if self._shutdown:
                    # Late joiner after completion: turn it away politely.
                    try:
                        send_frame(conn, {"kind": "shutdown"})
                        conn.close()
                    except OSError:
                        pass
                    continue
                self._conns.append(conn)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-coordinator-conn",
                daemon=True,
            )
            handler.start()
            self._threads.append(handler)

    def _serve_connection(self, conn: socket.socket) -> None:
        worker = "unknown"
        conn_id = id(conn)
        try:
            conn.settimeout(max(30.0, self.lease_timeout_s * 4))
            hello = recv_frame(conn)
            if hello is None:
                return
            rejection = validate_hello(hello, self._fingerprint)
            worker = str(hello.get("worker") or "unknown")
            if rejection is not None:
                send_frame(conn, {"kind": "reject", "reason": rejection})
                return
            with self._lock:
                self.workers_seen.append(worker)
            send_frame(
                conn,
                {
                    "kind": "welcome",
                    "v": PROTOCOL_VERSION,
                    "fingerprint": self._fingerprint,
                    "plans": self._plans_blob,
                    "lease_timeout_s": self.lease_timeout_s,
                    "heartbeat_s": self.lease_timeout_s / 3.0,
                },
            )
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    return
                kind = frame["kind"]
                if kind == "request":
                    send_frame(conn, self._grant_locked(worker, conn_id))
                elif kind == "heartbeat":
                    self._renew_lease(frame, conn_id)
                elif kind in ("result", "failure"):
                    self._receive_outcome(frame, kind, worker, conn_id)
                else:
                    raise RemoteProtocolError(
                        f"unexpected frame kind {kind!r} from {worker}"
                    )
        except (RemoteProtocolError, OSError, ValueError):
            pass  # connection-level damage: leases released below
        finally:
            self._release_worker_leases(conn_id, worker)
            try:
                conn.close()
            except OSError:
                pass

    def _grant_locked(self, worker: str, conn_id: int) -> Dict:
        """Lease the first ready shard (task order), or say wait/shutdown."""
        with self._cond:
            if self._shutdown:
                return {"kind": "shutdown"}
            now = time.monotonic()
            soonest: Optional[float] = None
            for key in self._order:
                if key in self._done or key in self._leases or key not in self._ready:
                    continue
                not_before = self._ready[key]
                if not_before <= now:
                    attempt = self._attempts[key]
                    self._leases[key] = _Lease(
                        worker=worker,
                        conn_id=conn_id,
                        attempt=attempt,
                        granted_mono=now,
                        deadline_mono=now + self.lease_timeout_s,
                    )
                    del self._ready[key]
                    self._events.append(("leased", key, attempt, worker))
                    self._cond.notify_all()
                    plan_index, _plan, shard = self._by_key[key]
                    return {
                        "kind": "shard",
                        "plan": plan_index,
                        "shard": shard.index,
                        "attempt": attempt,
                    }
                soonest = not_before if soonest is None else min(soonest, not_before)
            if soonest is not None:
                delay = min(1.0, max(0.05, soonest - now))
            else:
                delay = 0.5  # everything is leased out; check back shortly
            return {"kind": "wait", "delay_s": delay}

    def _renew_lease(self, frame: Dict, conn_id: int) -> None:
        key = (frame.get("plan"), frame.get("shard"))
        with self._lock:
            lease = self._leases.get(key)
            if lease is not None and lease.conn_id == conn_id:
                lease.deadline_mono = time.monotonic() + self.lease_timeout_s

    def _receive_outcome(
        self, frame: Dict, kind: str, worker: str, conn_id: int
    ) -> None:
        key = (frame.get("plan"), frame.get("shard"))
        attempt = frame.get("attempt")
        with self._cond:
            lease = self._leases.get(key)
            if lease is None or lease.conn_id != conn_id or lease.attempt != attempt:
                return  # stale outcome: the lease moved on; determinism makes it safe to drop
            del self._leases[key]
            now = time.monotonic()
            if kind == "result":
                self._events.append(
                    (
                        "result",
                        key,
                        attempt,
                        worker,
                        frame.get("result"),
                        lease.granted_mono,
                        now,
                    )
                )
            else:
                self._events.append(
                    (
                        "failure",
                        key,
                        attempt,
                        worker,
                        str(frame.get("error") or "worker reported failure"),
                    )
                )
            self._cond.notify_all()

    def _release_worker_leases(self, conn_id: int, worker: str) -> None:
        with self._cond:
            for key, lease in list(self._leases.items()):
                if lease.conn_id == conn_id:
                    del self._leases[key]
                    self._events.append(
                        (
                            "lost",
                            key,
                            lease.attempt,
                            lease.worker,
                            f"worker {worker} disconnected mid-shard",
                        )
                    )
            self._cond.notify_all()

    # -- teardown ---------------------------------------------------------------------

    def _teardown(self) -> None:
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        # Give connected workers a moment to drain: their next `request`
        # draws a `shutdown` frame and they exit 0 instead of seeing EOF.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if all(not thread.is_alive() for thread in self._threads):
                break
            time.sleep(0.05)
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def _announce(self, line: str) -> None:
        if self.announce is None:
            return
        print(line, file=self.announce)
        try:
            self.announce.flush()
        except Exception:
            pass


# -- worker -------------------------------------------------------------------------


class _Heartbeat(threading.Thread):
    """Renews the current lease while the worker executes a shard."""

    def __init__(self, sock, send_lock, plan_index, shard_index, interval_s):
        super().__init__(name="repro-worker-heartbeat", daemon=True)
        self._sock = sock
        self._send_lock = send_lock
        self._frame = {
            "kind": "heartbeat", "plan": plan_index, "shard": shard_index
        }
        self._interval_s = max(0.05, interval_s)
        # Not named _stop: Thread itself has a private _stop() method.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval_s):
            try:
                with self._send_lock:
                    send_frame(self._sock, self._frame)
            except OSError:
                return  # coordinator went away; the main loop will notice

    def stop(self) -> None:
        self._halt.set()


def _connect_with_retry(
    host: str, port: int, timeout_s: float
) -> socket.socket:
    deadline = time.monotonic() + max(0.0, timeout_s)
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise CampaignError(
                    f"could not connect to coordinator {host}:{port} "
                    f"within {timeout_s:g}s: {exc}"
                ) from exc
            time.sleep(0.2)


def run_worker(
    address: Union[str, Tuple[str, int]],
    connect_timeout_s: float = 10.0,
    announce=None,
) -> int:
    """Connect to a coordinator and execute leased shards until shutdown.

    This is the body of ``repro worker --connect HOST:PORT``.  Shards run
    through the exact worker entry point the process-pool executor uses
    (:func:`~repro.engine.executors._run_shard_task`), so the injectable
    fault fixture and the bit-determinism guarantee carry over unchanged.

    Exit codes: 0 clean shutdown from the coordinator; 2 rejected at
    handshake (stale plans or protocol mismatch); 3 connection lost
    mid-campaign.
    """
    stream = announce if announce is not None else sys.stderr

    def say(line: str) -> None:
        print(line, file=stream)
        try:
            stream.flush()
        except Exception:
            pass

    host, port = parse_address(address)
    identity = worker_identity()
    sock = _connect_with_retry(host, port, connect_timeout_s)
    send_lock = threading.Lock()
    executed = 0
    try:
        sock.settimeout(600.0)
        with send_lock:
            send_frame(
                sock,
                {
                    "kind": "hello",
                    "v": PROTOCOL_VERSION,
                    "worker": identity,
                    "fingerprint": None,
                },
            )
        welcome = recv_frame(sock)
        if welcome is None:
            say(f"[worker {identity}] coordinator closed during handshake")
            return 3
        if welcome["kind"] == "reject":
            say(f"[worker {identity}] rejected: {welcome.get('reason')}")
            return 2
        if welcome["kind"] != "welcome" or welcome.get("v") != PROTOCOL_VERSION:
            say(f"[worker {identity}] bad handshake reply: {welcome.get('kind')!r}")
            return 2
        plans = decode_plans(welcome["plans"])
        fingerprint = plans_fingerprint(plans)
        if fingerprint != welcome.get("fingerprint"):
            say(
                f"[worker {identity}] hydrated fingerprint {fingerprint} does not "
                f"match coordinator's {welcome.get('fingerprint')}; aborting"
            )
            return 2
        heartbeat_s = float(welcome.get("heartbeat_s") or DEFAULT_LEASE_TIMEOUT_S / 3)
        shards = {
            (plan_index, shard.index): (plan, shard)
            for plan_index, plan in enumerate(plans)
            for shard in plan.shards()
        }
        say(
            f"[worker {identity}] connected to {host}:{port} "
            f"({len(plans)} plan(s), fingerprint {fingerprint})"
        )
        while True:
            with send_lock:
                send_frame(sock, {"kind": "request"})
            frame = recv_frame(sock)
            if frame is None:
                say(f"[worker {identity}] connection lost ({executed} shard(s) done)")
                return 3
            kind = frame["kind"]
            if kind == "shutdown":
                say(f"[worker {identity}] done: executed {executed} shard(s)")
                return 0
            if kind == "wait":
                time.sleep(min(5.0, float(frame.get("delay_s") or 0.5)))
                continue
            if kind != "shard":
                raise RemoteProtocolError(f"unexpected frame kind {kind!r}")
            key = (frame["plan"], frame["shard"])
            if key not in shards:
                raise RemoteProtocolError(f"leased unknown shard {key}")
            plan, shard = shards[key]
            attempt = int(frame.get("attempt") or 1)
            heartbeat = _Heartbeat(sock, send_lock, key[0], key[1], heartbeat_s)
            heartbeat.start()
            try:
                result = _run_shard_task(plan, shard, attempt)
            except Exception as exc:
                heartbeat.stop()
                heartbeat.join()
                with send_lock:
                    send_frame(
                        sock,
                        {
                            "kind": "failure",
                            "plan": key[0],
                            "shard": key[1],
                            "attempt": attempt,
                            "error": repr(exc),
                        },
                    )
                continue
            heartbeat.stop()
            heartbeat.join()
            with send_lock:
                send_frame(
                    sock,
                    {
                        "kind": "result",
                        "plan": key[0],
                        "shard": key[1],
                        "attempt": attempt,
                        "result": result_to_record(result),
                    },
                )
            executed += 1
    except (RemoteProtocolError, OSError) as exc:
        say(f"[worker {identity}] protocol/connection failure: {exc}")
        return 3
    finally:
        try:
            sock.close()
        except OSError:
            pass
