"""Distributed shard execution over TCP: coordinator, worker, RemoteExecutor.

The paper's testbed runs thousands of power-cut experiments per drive;
one host's process pool is the wrong ceiling for that.  This module takes
the engine's executor protocol — ``execute(tasks, telemetry) -> (key,
ShardRun)`` — across machine boundaries while changing nothing above it:
merge order, checkpoint journal, resume, retry/quarantine policy and the
trace vocabulary are exactly the single-host ones.

The wire protocol (framing, handshake, plan transport) is defined in
:mod:`repro.engine.wire` and re-exported here unchanged; the conversation
is documented there and in :mod:`repro.engine.aiocoord`, whose
:class:`~repro.engine.aiocoord.CoordinatorCore` holds the lease/retry
state machine.  In short: ``hello``/``welcome`` (fingerprint-gated,
versioned), then a work loop of ``request`` → ``shard``/``wait``/
``shutdown`` with ``heartbeat`` renewing leases and ``result``/``failure``
concluding them.

Leases
------
A lease is the coordinator's only claim about a worker: *this shard is
being executed by that connection until the deadline*.  Heartbeats move
the deadline; a worker that dies (connection drops) or wedges (heartbeats
stop) loses the lease and the shard returns to the queue, charged one
attempt, to be retried under the same
:class:`~repro.engine.supervisor.RetryPolicy` backoff/quarantine
machinery as local execution.  Because shard seeds are deterministic, a
shard re-executed by a different machine returns a bit-identical result —
which is what makes the merged summary of a distributed, worker-killed
run equal the serial run's, byte for byte.

Commits all flow through the coordinator's single
:class:`~repro.engine.checkpoint.CheckpointJournal`, so ``--resume``
works identically for local and distributed runs (and a journal written
by one can resume the other).

Coordinator internals
---------------------
:class:`RemoteExecutor` multiplexes every worker connection on one
asyncio event loop running in a background thread (shared with the
campaign service, :mod:`repro.engine.serve`); the ``execute`` generator
stays a plain blocking iterator on the caller's thread, fed through a
condition variable.  All scheduling, journal and telemetry work happens
on the loop thread, in frame-arrival order — the same total order the
old thread-per-connection pump produced through its event queue.
"""

from __future__ import annotations

import asyncio
import socket
import sys
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engine.aiocoord import (
    CoordinatorCore,
    pump_worker_frames,
    read_frame,
    sweep_interval_s,
    write_frame,
)
from repro.engine.checkpoint import (
    CheckpointJournal,
    ResumeState,
    plans_fingerprint,
    result_to_record,
)
from repro.engine.executors import ShardKey, ShardTask, _run_shard_task
from repro.engine.progress import EngineTelemetry
from repro.engine.supervisor import (
    InterruptFlag,
    interrupt_flag_guard,
    RetryPolicy,
    ShardRun,
)
from repro.engine.wire import (  # noqa: F401  (re-exported protocol surface)
    _HEADER,
    _recv_exact,
    decode_plans,
    DEFAULT_LEASE_TIMEOUT_S,
    encode_plans,
    MAX_FRAME_BYTES,
    parse_address,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
    validate_hello,
    worker_identity,
)
from repro.errors import (
    CampaignError,
    CampaignInterrupted,
    RemoteProtocolError,
)

DRAIN_GRACE_S = 2.0
"""How long teardown waits for workers to draw their ``shutdown`` frame."""


# -- coordinator --------------------------------------------------------------------


class RemoteExecutor:
    """Serves the shard task queue to ``repro worker`` processes over TCP.

    Drop-in for the supervisor in the executor protocol: ``execute(tasks,
    telemetry)`` yields ``(key, ShardRun)`` in task order.  Differences
    from :class:`~repro.engine.supervisor.ShardSupervisor` are purely
    *where* shards run — retries/backoff (:class:`RetryPolicy`), poison
    quarantine, the write-ahead journal and ``--resume`` behave
    identically, and retried shards remain bit-deterministic because only
    the plan's shard seeds feed the simulation.

    The listening socket binds in the constructor (so ``.address`` is
    known even for an ephemeral ``:0`` port); serving starts when
    :meth:`execute` runs and stops when the generator finalizes.  A
    coordinator object is single-use.
    """

    def __init__(
        self,
        listen: Union[str, Tuple[str, int]] = ("127.0.0.1", 0),
        policy: Optional[RetryPolicy] = None,
        journal: Optional[CheckpointJournal] = None,
        resume: Optional[ResumeState] = None,
        quarantine_enabled: bool = False,
        shard_timeout_s: Optional[float] = None,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        announce=None,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.journal = journal
        self.resume = resume if resume is not None else ResumeState()
        self.quarantine_enabled = quarantine_enabled
        self.shard_timeout_s = shard_timeout_s
        self.lease_timeout_s = max(0.1, lease_timeout_s)
        self.announce = announce if announce is not None else sys.stderr
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(parse_address(listen))
        self._server.listen(16)
        self.address: Tuple[str, int] = self._server.getsockname()[:2]
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._started = False
        self._fingerprint = ""
        self._plans_blob = ""
        self._core: Optional[CoordinatorCore] = None
        self._runs: Dict[ShardKey, ShardRun] = {}
        self._fatal: Optional[Exception] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stop_requested = False
        self._drain = True
        self._open_handlers = 0
        self._interrupt = InterruptFlag()
        self.workers_seen: List[str] = []

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    # -- public entry ---------------------------------------------------------------

    def execute(
        self, tasks: Sequence[ShardTask], telemetry: EngineTelemetry
    ) -> Iterator[Tuple[ShardKey, ShardRun]]:
        """Yield ``(key, ShardRun)`` in task order, serving shards over TCP."""
        if self._started:
            raise CampaignError("a RemoteExecutor coordinator is single-use")
        self._started = True
        plans: List = []
        for plan_index, plan, _ in tasks:
            if plan_index == len(plans):
                plans.append(plan)
        self._fingerprint = plans_fingerprint(plans)
        self._plans_blob = encode_plans(plans)
        core = CoordinatorCore(
            tasks,
            policy=self.policy,
            telemetry=telemetry,
            journal=self.journal,
            quarantine_enabled=self.quarantine_enabled,
            shard_timeout_s=self.shard_timeout_s,
            lease_timeout_s=self.lease_timeout_s,
        )
        for plan_index, plan, shard in tasks:
            key = (plan_index, shard.index)
            if key in self.resume.results:
                core.prefill(
                    key,
                    ShardRun(
                        result=self.resume.results[key],
                        attempts=self.resume.attempts.get(key, 1),
                        status="resumed",
                    ),
                )
        core.on_done = self._note_done
        core.on_fatal = self._note_fatal
        self._core = core
        self._announce(
            f"[engine] coordinator listening on {self.host}:{self.port} "
            f"(fingerprint {self._fingerprint}, "
            f"{len(core.ready)} shard(s) to lease) — start workers with: "
            f"repro worker --connect {self.host}:{self.port}"
        )
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-coordinator-loop", daemon=True
        )
        self._thread.start()
        with interrupt_flag_guard() as flag:
            self._interrupt = flag
            try:
                for plan_index, plan, shard in tasks:
                    key = (plan_index, shard.index)
                    if key in self.resume.results:
                        telemetry.shard_skipped(
                            plan.display_label(), shard.index, shard.count, shard.faults
                        )
                        yield key, core.done[key]
                        continue
                    yield key, self._await_run(key)
            finally:
                self._shutdown_loop(drain=True)

    # -- driver side (caller's thread) ------------------------------------------------

    def _await_run(self, key: ShardKey) -> ShardRun:
        """Block until the loop thread records the shard's terminal run."""
        while True:
            self._raise_if_interrupted()
            with self._cond:
                run = self._runs.get(key)
                fatal = self._fatal
                if run is None and fatal is None:
                    self._cond.wait(timeout=0.1)
                    continue
            if run is not None:
                return run
            raise fatal

    def _raise_if_interrupted(self) -> None:
        if not self._interrupt:
            return
        self._shutdown_loop(drain=False)
        if self.journal is not None:
            self.journal.close()
        raise CampaignInterrupted(
            f"campaign interrupted by {self._interrupt.signal_name}; "
            "checkpoint journal is flushed — restart with resume to continue"
        )

    def _note_done(self, key: ShardKey, run: ShardRun) -> None:
        with self._cond:
            self._runs[key] = run
            self._cond.notify_all()

    def _note_fatal(self, exc: Exception) -> None:
        with self._cond:
            if self._fatal is None:
                self._fatal = exc
            self._cond.notify_all()

    # -- worker gate (loop thread) ----------------------------------------------------

    def grant(self, worker: str, conn_id: int) -> Dict:
        if self._stop_requested:
            return {"kind": "shutdown"}
        return self._core.grant(worker, conn_id)

    def renew(self, frame: Dict, conn_id: int) -> None:
        self._core.renew(frame, conn_id)

    def outcome(self, frame: Dict, kind: str, worker: str, conn_id: int) -> None:
        if self._stop_requested:
            return  # campaign already concluded; late results have nowhere to go
        self._core.outcome(frame, kind, worker, conn_id)

    def release(self, conn_id: int, worker: str) -> None:
        if self._stop_requested:
            return
        self._core.release(conn_id, worker)

    # -- event loop (background thread) ------------------------------------------------

    def _run_loop(self) -> None:
        asyncio.run(self._serve_async())

    async def _serve_async(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle_conn, sock=self._server)
        sweeper = asyncio.create_task(self._sweep_loop())
        try:
            await self._stop_event.wait()
            if self._drain:
                # Give connected workers a moment to drain: their next
                # `request` draws a `shutdown` frame and they exit 0
                # instead of seeing EOF.
                deadline = self._loop.time() + DRAIN_GRACE_S
                while self._open_handlers and self._loop.time() < deadline:
                    await asyncio.sleep(0.05)
        finally:
            sweeper.cancel()
            server.close()
            try:
                await server.wait_closed()
            except Exception:
                pass

    async def _sweep_loop(self) -> None:
        interval = sweep_interval_s(self.lease_timeout_s)
        while not self._stop_event.is_set():
            self._core.sweep()
            try:
                await asyncio.wait_for(self._stop_event.wait(), timeout=interval)
            except asyncio.TimeoutError:
                pass

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        worker = "unknown"
        self._open_handlers += 1
        try:
            if self._stop_requested or self._core.complete:
                # Late joiner after completion: turn it away politely.
                await write_frame(writer, {"kind": "shutdown"})
                return
            hello = await asyncio.wait_for(
                read_frame(reader), timeout=max(30.0, self.lease_timeout_s * 4)
            )
            if hello is None:
                return
            rejection = validate_hello(hello, self._fingerprint)
            worker = str(hello.get("worker") or "unknown")
            if rejection is not None:
                await write_frame(writer, {"kind": "reject", "reason": rejection})
                return
            self.workers_seen.append(worker)
            await write_frame(
                writer,
                {
                    "kind": "welcome",
                    "v": PROTOCOL_VERSION,
                    "fingerprint": self._fingerprint,
                    "plans": self._plans_blob,
                    "lease_timeout_s": self.lease_timeout_s,
                    "heartbeat_s": self.lease_timeout_s / 3.0,
                },
            )
            await pump_worker_frames(self, reader, writer, worker)
        except (
            RemoteProtocolError,
            OSError,
            ValueError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
        ):
            pass  # connection-level damage: leases released by the pump
        finally:
            self._open_handlers -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    # -- teardown ---------------------------------------------------------------------

    def _shutdown_loop(self, drain: bool) -> None:
        """Stop the event loop (idempotent) and join its thread."""
        thread = self._thread
        if thread is None:
            return
        loop = self._loop
        if loop is not None:

            def _stop() -> None:
                self._drain = drain
                self._stop_requested = True
                self._stop_event.set()

            try:
                loop.call_soon_threadsafe(_stop)
            except RuntimeError:
                pass  # loop already closed
        thread.join(timeout=DRAIN_GRACE_S + 10.0)
        self._thread = None

    def _announce(self, line: str) -> None:
        if self.announce is None:
            return
        print(line, file=self.announce)
        try:
            self.announce.flush()
        except Exception:
            pass


# -- worker -------------------------------------------------------------------------


class _Heartbeat(threading.Thread):
    """Renews the current lease while the worker executes a shard."""

    def __init__(self, sock, send_lock, plan_index, shard_index, interval_s):
        super().__init__(name="repro-worker-heartbeat", daemon=True)
        self._sock = sock
        self._send_lock = send_lock
        self._frame = {
            "kind": "heartbeat", "plan": plan_index, "shard": shard_index
        }
        self._interval_s = max(0.05, interval_s)
        # Not named _stop: Thread itself has a private _stop() method.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval_s):
            try:
                with self._send_lock:
                    send_frame(self._sock, self._frame)
            except OSError:
                return  # coordinator went away; the main loop will notice

    def stop(self) -> None:
        self._halt.set()


def _connect_with_retry(
    host: str, port: int, timeout_s: float
) -> socket.socket:
    deadline = time.monotonic() + max(0.0, timeout_s)
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise CampaignError(
                    f"could not connect to coordinator {host}:{port} "
                    f"within {timeout_s:g}s: {exc}"
                ) from exc
            time.sleep(0.2)


HeldPlans = Tuple[str, Dict]
"""A hydrated plan batch a worker holds: ``(fingerprint, shards-by-key)``."""


def _worker_session(
    sock: socket.socket,
    host: str,
    port: int,
    identity: str,
    held: Optional[HeldPlans],
    say,
) -> Tuple[int, Optional[HeldPlans]]:
    """One coordinator conversation: handshake, work loop, outcome.

    Returns ``(exit_code, held_plans)``.  ``held`` carries an
    already-hydrated plan batch into a reconnect: the hello advertises its
    fingerprint, and when the coordinator welcomes us for the *same*
    batch, hydration is skipped entirely — the idempotent re-handshake a
    restarted coordinator relies on.
    """
    send_lock = threading.Lock()
    executed = 0
    try:
        sock.settimeout(600.0)
        with send_lock:
            send_frame(
                sock,
                {
                    "kind": "hello",
                    "v": PROTOCOL_VERSION,
                    "worker": identity,
                    "fingerprint": held[0] if held is not None else None,
                },
            )
        welcome = recv_frame(sock)
        if welcome is None:
            say(f"[worker {identity}] coordinator closed during handshake")
            return 3, held
        if welcome["kind"] == "reject":
            say(f"[worker {identity}] rejected: {welcome.get('reason')}")
            return 2, held
        if welcome["kind"] == "shutdown":
            # Turned away politely: the campaign finished before we joined.
            say(f"[worker {identity}] campaign already complete")
            return 0, held
        if welcome["kind"] != "welcome" or welcome.get("v") != PROTOCOL_VERSION:
            say(f"[worker {identity}] bad handshake reply: {welcome.get('kind')!r}")
            return 2, held
        fingerprint = welcome.get("fingerprint")
        if held is not None and held[0] == fingerprint:
            shards = held[1]
            say(
                f"[worker {identity}] reconnected to {host}:{port} "
                f"(held fingerprint {fingerprint})"
            )
        else:
            plans = decode_plans(welcome["plans"])
            derived = plans_fingerprint(plans)
            if derived != fingerprint:
                say(
                    f"[worker {identity}] hydrated fingerprint {derived} does not "
                    f"match coordinator's {fingerprint}; aborting"
                )
                return 2, held
            shards = {
                (plan_index, shard.index): (plan, shard)
                for plan_index, plan in enumerate(plans)
                for shard in plan.shards()
            }
            held = (fingerprint, shards)
            say(
                f"[worker {identity}] connected to {host}:{port} "
                f"({len(plans)} plan(s), fingerprint {fingerprint})"
            )
        heartbeat_s = float(welcome.get("heartbeat_s") or DEFAULT_LEASE_TIMEOUT_S / 3)
        while True:
            with send_lock:
                send_frame(sock, {"kind": "request"})
            frame = recv_frame(sock)
            if frame is None:
                say(f"[worker {identity}] connection lost ({executed} shard(s) done)")
                return 3, held
            kind = frame["kind"]
            if kind == "shutdown":
                say(f"[worker {identity}] done: executed {executed} shard(s)")
                return 0, held
            if kind == "wait":
                time.sleep(min(5.0, float(frame.get("delay_s") or 0.5)))
                continue
            if kind != "shard":
                raise RemoteProtocolError(f"unexpected frame kind {kind!r}")
            key = (frame["plan"], frame["shard"])
            if key not in shards:
                raise RemoteProtocolError(f"leased unknown shard {key}")
            plan, shard = shards[key]
            attempt = int(frame.get("attempt") or 1)
            heartbeat = _Heartbeat(sock, send_lock, key[0], key[1], heartbeat_s)
            heartbeat.start()
            try:
                result = _run_shard_task(plan, shard, attempt)
            except Exception as exc:
                heartbeat.stop()
                heartbeat.join()
                with send_lock:
                    send_frame(
                        sock,
                        {
                            "kind": "failure",
                            "plan": key[0],
                            "shard": key[1],
                            "attempt": attempt,
                            "error": repr(exc),
                        },
                    )
                continue
            heartbeat.stop()
            heartbeat.join()
            with send_lock:
                send_frame(
                    sock,
                    {
                        "kind": "result",
                        "plan": key[0],
                        "shard": key[1],
                        "attempt": attempt,
                        "result": result_to_record(result),
                    },
                )
            executed += 1
    except (RemoteProtocolError, OSError) as exc:
        say(f"[worker {identity}] protocol/connection failure: {exc}")
        return 3, held
    finally:
        try:
            sock.close()
        except OSError:
            pass


def run_worker(
    address: Union[str, Tuple[str, int]],
    connect_timeout_s: float = 10.0,
    announce=None,
    persist: bool = False,
) -> int:
    """Connect to a coordinator and execute leased shards until shutdown.

    This is the body of ``repro worker --connect HOST:PORT``.  Shards run
    through the exact worker entry point the process-pool executor uses
    (:func:`~repro.engine.executors._run_shard_task`), so the injectable
    fault fixture and the bit-determinism guarantee carry over unchanged.

    Exit codes: 0 clean shutdown from the coordinator; 2 rejected at
    handshake (stale plans or protocol mismatch); 3 connection lost
    mid-campaign.

    With ``persist=True`` the worker outlives individual coordinator
    sessions: after a lost connection it reconnects *holding* its
    hydrated plan batch (so a restarted coordinator for the same
    fingerprint re-handshakes idempotently); after a stale rejection it
    drops the held batch and retries fresh; after a clean shutdown it
    waits for the next campaign.  The persist loop ends — returning the
    last session's exit code — once no coordinator accepts a connection
    within ``connect_timeout_s``.  A *fresh* handshake rejection still
    exits 2 immediately: retrying a protocol mismatch is hopeless.
    """
    stream = announce if announce is not None else sys.stderr

    def say(line: str) -> None:
        print(line, file=stream)
        try:
            stream.flush()
        except Exception:
            pass

    host, port = parse_address(address)
    identity = worker_identity()
    held: Optional[HeldPlans] = None
    code = 3
    while True:
        try:
            sock = _connect_with_retry(host, port, connect_timeout_s)
        except CampaignError as exc:
            if not persist:
                raise
            say(f"[worker {identity}] {exc}; ending persist loop")
            return code
        code, held = _worker_session(sock, host, port, identity, held, say)
        if not persist:
            return code
        if code == 2:
            if held is None:
                return 2  # fresh handshake rejected: config error, not transient
            held = None  # stale plans: reconnect fresh and re-hydrate
        elif code == 0:
            held = None  # campaign complete; await the next one
        time.sleep(0.2)
