"""Workload specification.

One :class:`WorkloadSpec` captures every workload-dependent parameter the
paper varies in §IV:

- Working Set Size (Fig. 6),
- request size range (Fig. 7; "between 4KB and 1MB" elsewhere),
- read percentage (Fig. 5),
- access pattern random/sequential (§IV-D),
- requested IOPS (Fig. 8; ``None`` = closed loop at ``outstanding`` depth),
- access sequence RAR/RAW/WAR/WAW (Fig. 9, overrides the read mix).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import GIB, KIB, MIB, PAGE_4K


class AccessPattern(enum.Enum):
    """Spatial distribution of request addresses."""

    RANDOM = "random"
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic workload.

    Example
    -------
    >>> spec = WorkloadSpec(read_fraction=0.2, wss_bytes=8 * GIB)
    >>> spec.wss_pages
    2097152
    """

    wss_bytes: int = 64 * GIB
    region_start_lpn: int = 0
    read_fraction: float = 0.0
    size_min_bytes: int = 4 * KIB
    size_max_bytes: int = 1 * MIB
    pattern: AccessPattern = AccessPattern.RANDOM
    requested_iops: Optional[float] = None
    outstanding: int = 32
    sequence: Optional[str] = None  # "RAR" / "RAW" / "WAR" / "WAW"
    seed_salt: str = ""

    def __post_init__(self) -> None:
        if self.wss_bytes < PAGE_4K:
            raise ConfigurationError("working set smaller than one page")
        if self.wss_bytes % PAGE_4K:
            raise ConfigurationError("working set must be page aligned")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read fraction must be in [0, 1]")
        if self.size_min_bytes < PAGE_4K or self.size_min_bytes % PAGE_4K:
            raise ConfigurationError("size_min must be a positive multiple of 4 KiB")
        if self.size_max_bytes < self.size_min_bytes or self.size_max_bytes % PAGE_4K:
            raise ConfigurationError("size_max must be >= size_min and page aligned")
        if self.size_max_bytes > self.wss_bytes:
            raise ConfigurationError("requests cannot exceed the working set")
        if self.requested_iops is not None and self.requested_iops <= 0:
            raise ConfigurationError("requested IOPS must be positive")
        if self.outstanding <= 0:
            raise ConfigurationError("outstanding depth must be positive")
        if self.sequence is not None:
            from repro.workload.sequences import pair_for

            pair_for(self.sequence)  # validates

    # -- derived -------------------------------------------------------------------

    @property
    def wss_pages(self) -> int:
        """Working set size in 4 KiB pages."""
        return self.wss_bytes // PAGE_4K

    @property
    def size_min_pages(self) -> int:
        """Smallest request, in pages."""
        return self.size_min_bytes // PAGE_4K

    @property
    def size_max_pages(self) -> int:
        """Largest request, in pages."""
        return self.size_max_bytes // PAGE_4K

    @property
    def fixed_size(self) -> bool:
        """True when every request has the same size (Fig. 7 experiments)."""
        return self.size_min_bytes == self.size_max_bytes

    @property
    def open_loop(self) -> bool:
        """True when pacing by requested IOPS rather than queue depth."""
        return self.requested_iops is not None

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        size = (
            f"{self.size_min_bytes // KIB}KiB"
            if self.fixed_size
            else f"{self.size_min_bytes // KIB}KiB-{self.size_max_bytes // KIB}KiB"
        )
        parts = [
            f"wss={self.wss_bytes // GIB}GiB",
            f"read={round(self.read_fraction * 100)}%",
            f"size={size}",
            self.pattern.value,
        ]
        if self.open_loop:
            parts.append(f"iops={self.requested_iops:g}")
        if self.sequence:
            parts.append(f"seq={self.sequence}")
        return " ".join(parts)
