"""Workload synthesis — the paper's IO Generator inputs.

Provides the request-level vocabulary of the experiments: checksummed data
packets (Fig. 2), workload specifications covering every §IV parameter
(WSS, request size, read/write mix, random/sequential pattern, requested
IOPS, access sequences), and the generator that turns a spec into block-layer
traffic.

Public surface: :class:`~repro.workload.packet.DataPacket`,
:class:`~repro.workload.spec.WorkloadSpec`,
:class:`~repro.workload.generator.IOGenerator`,
:mod:`repro.workload.sequences`, :mod:`repro.workload.checksum`.
"""

from repro.workload.checksum import (
    TOKEN_ZERO,
    checksum_of,
    data_for,
    page_token,
    token_owner,
)
from repro.workload.generator import IOGenerator
from repro.workload.packet import DataPacket
from repro.workload.replay import TraceRecord, TraceReplayer, WorkloadTrace, capture_trace
from repro.workload.sequences import SEQUENCES, AccessPair
from repro.workload.spec import AccessPattern, WorkloadSpec

__all__ = [
    "AccessPair",
    "AccessPattern",
    "DataPacket",
    "IOGenerator",
    "SEQUENCES",
    "TOKEN_ZERO",
    "TraceRecord",
    "TraceReplayer",
    "WorkloadSpec",
    "WorkloadTrace",
    "capture_trace",
    "checksum_of",
    "data_for",
    "page_token",
    "token_owner",
]
