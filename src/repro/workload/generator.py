"""The IO Generator (paper Fig. 1, software part).

Turns a :class:`~repro.workload.spec.WorkloadSpec` into block-layer traffic:

- *closed loop* (default): keeps ``spec.outstanding`` requests in flight,
  reissuing as completions arrive — this measures the device's natural
  service rate (how the paper drives most experiments);
- *open loop* (Fig. 8): Poisson arrivals at ``spec.requested_iops``; if the
  host-side backlog exceeds ``max_backlog`` further arrivals are shed (the
  submission queue is full), which is what lets *responded* IOPS saturate
  below *requested* IOPS;
- *sequence mode* (Fig. 9): paired accesses where the second op targets the
  address of the first once it completes.

Every write travels with a :class:`~repro.workload.packet.DataPacket`
(Fig. 2) whose header the generator keeps updated; completed packets are the
Analyzer's input.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.host.block_layer import BlockRequest, RequestState
from repro.host.system import HostSystem
from repro.rand import RandomStreams, exponential_interarrival, uniform_int
from repro.workload.packet import DataPacket
from repro.workload.sequences import AccessPair, pair_for
from repro.workload.spec import AccessPattern, WorkloadSpec


class IOGenerator:
    """Issues spec-shaped traffic into a host system.

    The generator is restartable: campaigns stop it at each power fault and
    start it again once the device recovers.  Packet ids keep increasing
    across restarts so tokens never collide.
    """

    def __init__(
        self,
        host: HostSystem,
        spec: WorkloadSpec,
        streams: RandomStreams,
        max_backlog: int = 512,
    ) -> None:
        self.host = host
        self.spec = spec
        self.rng = streams.stream("iogen" + spec.seed_salt)
        self.max_backlog = max_backlog
        self.running = False
        self._next_packet_id = 1
        self._seq_cursor_lpn = spec.region_start_lpn
        self._pair: Optional[AccessPair] = (
            pair_for(spec.sequence) if spec.sequence else None
        )
        self._arrival_event = None
        # Ledgers.
        self.packets: Dict[int, DataPacket] = {}
        self.completed_writes: List[DataPacket] = []
        self.completed_reads: List[DataPacket] = []
        self.failed_packets: List[DataPacket] = []
        # Statistics.
        self.issued = 0
        self.completions = 0
        self.io_errors = 0
        self.shed_arrivals = 0

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Begin issuing traffic (device should be READY)."""
        if self.running:
            return
        self.running = True
        if self.spec.open_loop:
            self._schedule_arrival()
        else:
            for _ in range(self.spec.outstanding):
                self._issue_next()

    def stop(self) -> None:
        """Stop issuing; in-flight requests still complete (or error)."""
        self.running = False
        if self._arrival_event is not None:
            self._arrival_event.cancel()
            self._arrival_event = None

    # -- address/size synthesis --------------------------------------------------------

    def _draw_size_pages(self) -> int:
        if self.spec.fixed_size:
            return self.spec.size_min_pages
        return uniform_int(
            self.rng, self.spec.size_min_pages, self.spec.size_max_pages
        )

    def _draw_address(self, size_pages: int) -> int:
        spec = self.spec
        if spec.pattern is AccessPattern.SEQUENTIAL:
            if (
                self._seq_cursor_lpn + size_pages
                > spec.region_start_lpn + spec.wss_pages
            ):
                self._seq_cursor_lpn = spec.region_start_lpn
            lpn = self._seq_cursor_lpn
            self._seq_cursor_lpn += size_pages
            return lpn
        span = spec.wss_pages - size_pages
        return spec.region_start_lpn + self.rng.randint(0, max(0, span))

    def _draw_is_write(self) -> bool:
        if self.spec.read_fraction <= 0.0:
            return True
        if self.spec.read_fraction >= 1.0:
            return False
        return self.rng.random() >= self.spec.read_fraction

    # -- issue paths --------------------------------------------------------------------

    def _schedule_arrival(self) -> None:
        assert self.spec.requested_iops is not None
        gap_s = exponential_interarrival(self.rng, self.spec.requested_iops)
        self._arrival_event = self.host.kernel.schedule(
            max(1, round(gap_s * 1_000_000)), self._arrival_fired
        )

    def _arrival_fired(self) -> None:
        self._arrival_event = None
        if not self.running:
            return
        if self.host.block.backlog >= self.max_backlog:
            # Submission queue full: arrivals are shed.  Rather than model
            # each shed arrival as its own event (at 30k IOPS that would
            # dominate the simulation), account for the whole 5 ms window
            # and re-check afterwards.
            assert self.spec.requested_iops is not None
            window_s = 0.005
            self.shed_arrivals += max(1, round(self.spec.requested_iops * window_s))
            self._arrival_event = self.host.kernel.schedule(
                round(window_s * 1_000_000), self._arrival_fired
            )
            return
        self._issue_next()
        self._schedule_arrival()

    def _issue_next(self) -> None:
        if not self.running:
            return
        if self._pair is not None:
            self._issue_pair_first()
            return
        size_pages = self._draw_size_pages()
        lpn = self._draw_address(size_pages)
        self._issue(lpn, size_pages, self._draw_is_write(), reissue_on_done=True)

    def _issue_pair_first(self) -> None:
        assert self._pair is not None
        size_pages = self._draw_size_pages()
        lpn = self._draw_address(size_pages)
        pair = self._pair

        def first_done(request: BlockRequest, packet: DataPacket) -> None:
            self._record_completion(request, packet)
            # Second access lands on the completed request's address.
            if self.running and request.state is RequestState.COMPLETED:
                self._issue(
                    lpn, size_pages, pair.second_is_write, reissue_on_done=True
                )
            elif self.running:
                self._maybe_reissue()

        self._issue(lpn, size_pages, pair.first_is_write, on_done=first_done)

    def _issue(
        self,
        lpn: int,
        size_pages: int,
        is_write: bool,
        reissue_on_done: bool = False,
        on_done=None,
    ) -> DataPacket:
        packet = DataPacket(
            packet_id=self._next_packet_id,
            address_lpn=lpn,
            page_count=size_pages,
            is_write=is_write,
            queue_time=self.host.kernel.now,
        )
        self._next_packet_id += 1
        self.packets[packet.packet_id] = packet
        self.issued += 1

        if on_done is not None:
            def callback(request: BlockRequest) -> None:
                on_done(request, packet)
        else:
            def callback(request: BlockRequest) -> None:
                self._record_completion(request, packet)
                if reissue_on_done:
                    self._maybe_reissue()

        if is_write:
            self.host.write(lpn, packet.data_checksums, on_done=callback)
        else:
            self.host.read(lpn, size_pages, on_done=callback)
        return packet

    def _maybe_reissue(self) -> None:
        if not self.running or self.spec.open_loop:
            return
        if not self.host.ssd.is_ready:
            # Device detached: stop the closed loop; the campaign restarts
            # the generator after recovery.  (Prevents a synchronous
            # error-reissue-error recursion during the fault.)
            return
        self._issue_next()

    # -- completion accounting --------------------------------------------------------------

    def _record_completion(self, request: BlockRequest, packet: DataPacket) -> None:
        self.completions += 1
        packet.complete_time = request.complete_time
        if request.state is RequestState.COMPLETED:
            if packet.is_write:
                self.completed_writes.append(packet)
            else:
                self.completed_reads.append(packet)
                packet.final_checksums = list(request.tokens)
        else:
            self.io_errors += 1
            packet.not_issued = True
            packet.complete_time = -1
            self.failed_packets.append(packet)

    # -- campaign helpers ---------------------------------------------------------------------

    def drain_ledgers(self):
        """Hand completed/failed packets to the Analyzer and reset the lists.

        Returns ``(completed_writes, completed_reads, failed)``.
        """
        writes, self.completed_writes = self.completed_writes, []
        reads, self.completed_reads = self.completed_reads, []
        failed, self.failed_packets = self.failed_packets, []
        for packet in writes + reads + failed:
            self.packets.pop(packet.packet_id, None)
        return writes, reads, failed

    @property
    def inflight(self) -> int:
        """Packets issued whose completion callback has not fired yet."""
        return self.issued - self.completions
