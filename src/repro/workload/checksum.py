"""Checksums and data tokens.

The platform verifies data integrity two ways:

- **Symbolic tokens** (the campaign fast path): every written page carries a
  unique integer identifying *which write of which packet* produced it.
  Token comparison is exact checksum comparison without materialising
  payload bytes — the simulation moves tokens, and corruption replaces them
  with sentinels, so a token mismatch *is* a checksum mismatch.
- **Real payloads** (examples/tests): deterministic pseudo-random bytes per
  (packet, page) with CRC-32 checksums, demonstrating that the symbolic
  scheme computes the same verdicts actual data would.
"""

from __future__ import annotations

import zlib

from repro.errors import ConfigurationError

TOKEN_ZERO = 0
"""Content token of a never-written (erased) logical page."""

_OFFSET_BITS = 10
_MAX_PAGES = 1 << _OFFSET_BITS  # 1024 pages = 4 MiB max request


def page_token(packet_id: int, page_offset: int) -> int:
    """Unique token for the ``page_offset``-th page of packet ``packet_id``.

    >>> page_token(1, 0)
    1024
    >>> token_owner(page_token(7, 3))
    (7, 3)
    """
    if packet_id <= 0:
        raise ConfigurationError("packet ids start at 1")
    if not 0 <= page_offset < _MAX_PAGES:
        raise ConfigurationError(f"page offset {page_offset} out of range")
    return (packet_id << _OFFSET_BITS) | page_offset


def token_owner(token: int) -> tuple:
    """Inverse of :func:`page_token`: ``(packet_id, page_offset)``."""
    if token <= 0:
        raise ConfigurationError(f"token {token} has no owner")
    return token >> _OFFSET_BITS, token & (_MAX_PAGES - 1)


def data_for(packet_id: int, page_offset: int, size: int = 4096) -> bytes:
    """Deterministic pseudo-random payload for a page (real-bytes mode).

    A xorshift-seeded byte stream: cheap, reproducible, and collision-free
    across (packet, page) pairs for checksum purposes.
    """
    if size <= 0:
        raise ConfigurationError("payload size must be positive")
    state = (page_token(packet_id, page_offset) * 0x9E3779B97F4A7C15) & (2**64 - 1)
    out = bytearray()
    while len(out) < size:
        state ^= (state << 13) & (2**64 - 1)
        state ^= state >> 7
        state ^= (state << 17) & (2**64 - 1)
        out.extend(state.to_bytes(8, "little"))
    return bytes(out[:size])


def checksum_of(data: bytes) -> int:
    """CRC-32 of a payload (the checksum the paper's packets carry)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def page_checksum(packet_id: int, page_offset: int, size: int = 4096) -> int:
    """Checksum of the deterministic payload — real-bytes-mode equivalent
    of the symbolic token."""
    return checksum_of(data_for(packet_id, page_offset, size))
