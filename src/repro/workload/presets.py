"""Ready-made workload specs for the paper's experiment families.

Each function returns the :class:`~repro.workload.spec.WorkloadSpec` (or the
sweep of specs) one of the paper's §IV experiments runs, so users can
re-run any experiment without re-reading the paper's parameters.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.units import GIB, KIB, MIB
from repro.workload.spec import AccessPattern, WorkloadSpec

COMMON_SIZE_MIN = 4 * KIB
COMMON_SIZE_MAX = 1 * MIB
"""The paper's recurring request-size range ("between 4KB and 1MB")."""


def common_random_write(wss_gib: int = 64) -> WorkloadSpec:
    """The paper's baseline: uniform-random writes, 4 KiB-1 MiB."""
    return WorkloadSpec(
        wss_bytes=wss_gib * GIB,
        read_fraction=0.0,
        size_min_bytes=COMMON_SIZE_MIN,
        size_max_bytes=COMMON_SIZE_MAX,
        pattern=AccessPattern.RANDOM,
    )


def request_type_sweep(wss_gib: int = 32) -> Dict[int, WorkloadSpec]:
    """Fig. 5: write percentage 100/80/50/20/0 (keyed by READ percent)."""
    return {
        read_pct: WorkloadSpec(
            wss_bytes=wss_gib * GIB,
            read_fraction=read_pct / 100.0,
            size_min_bytes=COMMON_SIZE_MIN,
            size_max_bytes=COMMON_SIZE_MAX,
        )
        for read_pct in (0, 20, 50, 80, 100)
    }


def wss_sweep(wss_gib_points: List[int] = (1, 10, 30, 60, 90)) -> Dict[int, WorkloadSpec]:
    """Fig. 6: working-set sizes from 1 to 90 GiB."""
    for value in wss_gib_points:
        if value <= 0:
            raise ConfigurationError("WSS points must be positive")
    return {
        wss: WorkloadSpec(
            wss_bytes=wss * GIB,
            read_fraction=0.0,
            size_min_bytes=COMMON_SIZE_MIN,
            size_max_bytes=COMMON_SIZE_MAX,
        )
        for wss in wss_gib_points
    }


def access_pattern_pair(wss_gib: int = 64) -> Dict[str, WorkloadSpec]:
    """§IV-D: fully random vs fully sequential writes, equal WSS."""
    return {
        pattern.value: WorkloadSpec(
            wss_bytes=wss_gib * GIB,
            read_fraction=0.0,
            size_min_bytes=COMMON_SIZE_MIN,
            size_max_bytes=COMMON_SIZE_MAX,
            pattern=pattern,
        )
        for pattern in (AccessPattern.RANDOM, AccessPattern.SEQUENTIAL)
    }


def request_size_sweep(wss_gib: int = 32) -> Dict[int, WorkloadSpec]:
    """Fig. 7: constant request size per experiment (keyed by KiB)."""
    return {
        size_kib: WorkloadSpec(
            wss_bytes=wss_gib * GIB,
            read_fraction=0.0,
            size_min_bytes=size_kib * KIB,
            size_max_bytes=size_kib * KIB,
        )
        for size_kib in (4, 16, 64, 256, 1024)
    }


def iops_sweep(wss_gib: int = 32) -> Dict[int, WorkloadSpec]:
    """Fig. 8: requested IOPS sweep (4 KiB commands — see the bench note)."""
    return {
        iops: WorkloadSpec(
            wss_bytes=wss_gib * GIB,
            read_fraction=0.0,
            size_min_bytes=4 * KIB,
            size_max_bytes=4 * KIB,
            requested_iops=float(iops),
        )
        for iops in (1200, 2400, 6000, 12000, 20000, 25000, 30000)
    }


def sequence_sweep(wss_gib: int = 32) -> Dict[str, WorkloadSpec]:
    """Fig. 9: the four paired-access sequences."""
    return {
        name: WorkloadSpec(
            wss_bytes=wss_gib * GIB,
            size_min_bytes=COMMON_SIZE_MIN,
            size_max_bytes=COMMON_SIZE_MAX,
            sequence=name,
        )
        for name in ("RAR", "RAW", "WAR", "WAW")
    }


def dirty_cycle_stress(wss_gib: int = 4) -> Dict[str, WorkloadSpec]:
    """NVMe dirty-power-cycle stress (extension, not a paper figure).

    Closed-loop small-to-medium random writes — the mix the qualification
    rigs drive while cutting power — plus an open-loop paced variant that
    stays inside a supercap drive's destage budget (the zero-loss
    protection leg of the CI smoke).
    """
    return {
        "burst": WorkloadSpec(
            wss_bytes=wss_gib * GIB,
            read_fraction=0.0,
            size_min_bytes=4 * KIB,
            size_max_bytes=64 * KIB,
        ),
        "paced": WorkloadSpec(
            wss_bytes=wss_gib * GIB,
            read_fraction=0.0,
            size_min_bytes=4 * KIB,
            size_max_bytes=4 * KIB,
            requested_iops=2000.0,
        ),
    }


def cache_topology_stress(wss_gib: int = 1) -> Dict[str, WorkloadSpec]:
    """Cache-topology fault campaigns (extension, not a paper figure).

    Closed-loop pure-write traffic against the cache tier:
    :class:`~repro.topology.plan.TopologyPlan` requires write-only
    closed-loop specs (the audit reasons about acknowledged writes, and
    pacing comes from ``outstanding``).
    """
    return {
        "host-writes": WorkloadSpec(
            wss_bytes=wss_gib * GIB,
            read_fraction=0.0,
            size_min_bytes=4 * KIB,
            size_max_bytes=64 * KIB,
        ),
    }


def apps_wal_stress(wss_gib: int = 1) -> Dict[str, WorkloadSpec]:
    """Application WAL fault campaigns (extension, not a paper figure).

    :class:`~repro.apps.plan.AppPlan` drives its own IO through the app's
    filesystem protocol, so the spec only names the working-set envelope;
    the fsync contrast is a plan knob (``app_fsync``), not a workload.
    """
    return {
        "wal-txns": WorkloadSpec(
            wss_bytes=wss_gib * GIB,
            read_fraction=0.0,
        ),
    }


ALL_FAMILIES = {
    "fig5_request_type": request_type_sweep,
    "fig6_wss": wss_sweep,
    "sec4d_pattern": access_pattern_pair,
    "fig7_request_size": request_size_sweep,
    "fig8_iops": iops_sweep,
    "fig9_sequences": sequence_sweep,
    "dirty_cycle": dirty_cycle_stress,
    "cache_topology": cache_topology_stress,
    "apps_wal": apps_wal_stress,
}
"""Experiment family -> sweep builder, keyed like the calibration registry."""
