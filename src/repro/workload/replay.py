"""Workload trace capture and replay.

The paper synthesises workloads; downstream users usually want to test with
*their* IO patterns.  This module closes that gap:

- :func:`capture_trace` lifts the request stream out of a
  :class:`~repro.trace.blktrace.BlockTracer` buffer (every QUEUE event);
- :class:`WorkloadTrace` persists it as JSON lines;
- :class:`TraceReplayer` re-issues the stream against any host system with
  the original inter-arrival timing (optionally time-scaled), generating
  fresh data packets so the Analyzer can verify the replayed writes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Union

from repro.errors import ConfigurationError
from repro.host.system import HostSystem
from repro.trace.blktrace import BlockTracer
from repro.trace.events import Action
from repro.workload.packet import DataPacket


@dataclass(frozen=True)
class TraceRecord:
    """One request of a captured workload."""

    offset_us: int
    lpn: int
    page_count: int
    is_write: bool

    def to_json(self) -> str:
        """One JSON line."""
        return json.dumps(
            {
                "t": self.offset_us,
                "lpn": self.lpn,
                "pages": self.page_count,
                "w": self.is_write,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        """Parse one JSON line."""
        data = json.loads(line)
        return cls(
            offset_us=data["t"],
            lpn=data["lpn"],
            page_count=data["pages"],
            is_write=data["w"],
        )


class WorkloadTrace:
    """An ordered, time-offset request stream."""

    def __init__(self, records: List[TraceRecord]) -> None:
        self.records = sorted(records, key=lambda r: r.offset_us)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration_us(self) -> int:
        """Offset of the last request."""
        return self.records[-1].offset_us if self.records else 0

    @property
    def write_fraction(self) -> float:
        """Share of write requests."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.is_write) / len(self.records)

    def scaled(self, time_scale: float) -> "WorkloadTrace":
        """A copy with all offsets multiplied by ``time_scale``."""
        if time_scale <= 0:
            raise ConfigurationError("time scale must be positive")
        return WorkloadTrace(
            [
                TraceRecord(
                    offset_us=round(r.offset_us * time_scale),
                    lpn=r.lpn,
                    page_count=r.page_count,
                    is_write=r.is_write,
                )
                for r in self.records
            ]
        )

    # -- persistence --------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> int:
        """Write as JSON lines; returns record count."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(record.to_json())
                handle.write("\n")
        return len(self.records)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WorkloadTrace":
        """Read a JSON-lines trace."""
        path = Path(path)
        records = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(TraceRecord.from_json(line))
        return cls(records)


_BLKPARSE_PATTERN = None


def parse_blkparse(lines, rebase: bool = True) -> WorkloadTrace:
    """Build a trace from blkparse-formatted text (Q events only).

    Accepts the output of :func:`repro.trace.blkparse.format_trace` as well
    as real ``blkparse`` stdout: lines shaped like::

        8,0    0      17     0.048731000  4211  Q   W 2048 + 16 [proc]

    Sector addresses are converted to 4 KiB LPNs (sector 8 alignment is
    required — block-device traces of page-cache IO satisfy this).
    Non-Q and unparsable lines are skipped.
    """
    import re

    global _BLKPARSE_PATTERN
    if _BLKPARSE_PATTERN is None:
        _BLKPARSE_PATTERN = re.compile(
            r"^\s*\d+,\d+\s+\d+\s+\d+\s+(?P<sec>\d+\.\d+)\s+\d+\s+"
            r"Q\s+(?P<rwbs>[RW]\S*)\s+(?P<sector>\d+)\s*\+\s*(?P<count>\d+)"
        )
    records = []
    for line in lines:
        match = _BLKPARSE_PATTERN.match(line)
        if match is None:
            continue
        sector = int(match.group("sector"))
        count = int(match.group("count"))
        if sector % 8 or count % 8 or count == 0:
            continue  # sub-page IO: not representable at 4 KiB granularity
        records.append(
            TraceRecord(
                offset_us=round(float(match.group("sec")) * 1_000_000),
                lpn=sector // 8,
                page_count=count // 8,
                is_write=match.group("rwbs").startswith("W"),
            )
        )
    trace = WorkloadTrace(records)
    if rebase and trace.records:
        base = trace.records[0].offset_us
        trace = WorkloadTrace(
            [
                TraceRecord(r.offset_us - base, r.lpn, r.page_count, r.is_write)
                for r in trace.records
            ]
        )
    return trace


def capture_trace(tracer: BlockTracer, rebase: bool = True) -> WorkloadTrace:
    """Extract the request stream from a tracer buffer (QUEUE events)."""
    queues = [e for e in tracer.events() if e.action is Action.QUEUE]
    base = queues[0].time_us if (queues and rebase) else 0
    return WorkloadTrace(
        [
            TraceRecord(
                offset_us=e.time_us - base,
                lpn=e.lpn,
                page_count=e.page_count,
                is_write=e.is_write,
            )
            for e in queues
        ]
    )


class TraceReplayer:
    """Issues a captured trace against a host system.

    Writes carry fresh data packets (new tokens), so a replay can be
    verified by the Analyzer exactly like generated traffic.
    """

    def __init__(
        self,
        host: HostSystem,
        trace: WorkloadTrace,
        first_packet_id: int = 1,
    ) -> None:
        self.host = host
        self.trace = trace
        self._next_packet_id = first_packet_id
        self.packets: List[DataPacket] = []
        self.submitted = 0
        self.started = False

    def start(self) -> None:
        """Schedule every request at its original offset from now."""
        if self.started:
            raise ConfigurationError("replayer already started")
        self.started = True
        for record in self.trace:
            self.host.kernel.schedule(record.offset_us, self._issue, record)

    def _issue(self, record: TraceRecord) -> None:
        packet = DataPacket(
            packet_id=self._next_packet_id,
            address_lpn=record.lpn,
            page_count=record.page_count,
            is_write=record.is_write,
            queue_time=self.host.kernel.now,
        )
        self._next_packet_id += 1
        self.packets.append(packet)
        self.submitted += 1

        def stamp(request, packet=packet):
            packet.complete_time = request.complete_time

        if record.is_write:
            self.host.write(record.lpn, packet.data_checksums, on_done=stamp)
        else:
            self.host.read(record.lpn, record.page_count, on_done=stamp)

    @property
    def acked_writes(self) -> List[DataPacket]:
        """Write packets acknowledged so far."""
        return [p for p in self.packets if p.is_write and p.acked]
