"""Access-sequence pairs (paper §IV-G).

The sequence experiments submit *pairs* of accesses where the second access
targets "the address of the previously completed request":

========  =============  ==============
Name      First access   Second access
========  =============  ==============
RAR       read           read
RAW       write          read   ("Read After Write")
WAR       read           write  ("Write After Read")
WAW       write          write
========  =============  ==============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AccessPair:
    """One sequence pattern: operation types of the two paired accesses."""

    name: str
    first_is_write: bool
    second_is_write: bool

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses in the pair that are writes."""
        return (int(self.first_is_write) + int(self.second_is_write)) / 2.0


SEQUENCES: Dict[str, AccessPair] = {
    "RAR": AccessPair("RAR", first_is_write=False, second_is_write=False),
    "RAW": AccessPair("RAW", first_is_write=True, second_is_write=False),
    "WAR": AccessPair("WAR", first_is_write=False, second_is_write=True),
    "WAW": AccessPair("WAW", first_is_write=True, second_is_write=True),
}


def pair_for(name: str) -> AccessPair:
    """Look up a sequence pattern by name (case-insensitive)."""
    try:
        return SEQUENCES[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown access sequence {name!r}; known: {sorted(SEQUENCES)}"
        ) from None
