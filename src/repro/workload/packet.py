"""The data packet (paper Fig. 2).

Every request travels as a *data packet*: randomly generated data plus a
header carrying addressing, timing, the three checksums, and the flags the
Analyzer later fills in.  Fields mirror Fig. 2 of the paper::

    Header: Size | Address | Queue Time | Complete Time
            Initial Checksum | Data Checksum | Final Checksum
            Modified? | Data Failure? | Not Issued?

In the simulation, "checksum" fields hold symbolic page tokens (see
:mod:`repro.workload.checksum`); ``data_checksums`` has one entry per page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.workload.checksum import page_token


@dataclass
class DataPacket:
    """One request's payload-and-header record.

    ``initial_checksums`` snapshot what each target page held *before* the
    request issued — the reference the Analyzer needs to tell an FWA (old
    data still present) from outright corruption.
    """

    packet_id: int
    address_lpn: int
    page_count: int
    is_write: bool
    queue_time: int = -1
    complete_time: int = -1
    data_checksums: List[int] = field(default_factory=list)
    initial_checksums: List[int] = field(default_factory=list)
    final_checksums: List[int] = field(default_factory=list)
    # Analyzer verdict flags (Fig. 2's Modified? / Data Failure? / Not Issued?).
    modified: Optional[bool] = None
    data_failure: Optional[bool] = None
    not_issued: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.packet_id <= 0:
            raise ConfigurationError("packet ids start at 1")
        if self.page_count <= 0:
            raise ConfigurationError("packet must cover at least one page")
        if self.address_lpn < 0:
            raise ConfigurationError("negative address")
        if self.is_write and not self.data_checksums:
            self.data_checksums = [
                page_token(self.packet_id, offset) for offset in range(self.page_count)
            ]

    @property
    def size_bytes(self) -> int:
        """Payload size (Fig. 2's Size field)."""
        return self.page_count * 4096

    @property
    def end_lpn(self) -> int:
        """First page after the packet's range."""
        return self.address_lpn + self.page_count

    def lpns(self) -> range:
        """Target logical pages."""
        return range(self.address_lpn, self.end_lpn)

    def token_for(self, lpn: int) -> int:
        """The write token this packet put at ``lpn``."""
        if not self.address_lpn <= lpn < self.end_lpn:
            raise ConfigurationError(f"LPN {lpn} outside packet range")
        if not self.is_write:
            raise ConfigurationError("read packets carry no write tokens")
        return self.data_checksums[lpn - self.address_lpn]

    @property
    def acked(self) -> bool:
        """True once the device acknowledged the request."""
        return self.complete_time >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"<DataPacket #{self.packet_id} {kind} lpn={self.address_lpn}"
            f"+{self.page_count}>"
        )
