"""The discrete-event loop.

The kernel keeps a binary heap of ``(time, sequence, Event)`` entries.  The
monotonically increasing sequence number makes ordering of same-time events
deterministic (FIFO in scheduling order), which matters for reproducibility
of fault-injection campaigns.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`Kernel.schedule`.

    Events may be cancelled before they fire; a cancelled event stays in the
    heap but is skipped by the loop (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op if already fired."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is still going to fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time} seq={self.seq} {state} {self.callback!r}>"


class Kernel:
    """Discrete-event loop with integer-microsecond time.

    Example
    -------
    >>> k = Kernel()
    >>> out = []
    >>> _ = k.schedule(10, out.append, "a")
    >>> _ = k.schedule(5, out.append, "b")
    >>> k.run()
    >>> out
    ['b', 'a']
    >>> k.now
    10
    """

    def __init__(self, start_time: int = 0) -> None:
        self._now = int(start_time)
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} us in the past")
        return self.schedule_at(self._now + int(delay), callback, *args)

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(int(time), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fired = True
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run events in order.

        With ``until`` set, runs every event with ``time <= until`` and then
        advances the clock to exactly ``until`` (even if idle).  Without it,
        runs until the heap drains or :meth:`stop` is called.
        """
        if self._running:
            raise SimulationError("kernel.run() is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = head.time
                head.fired = True
                head.callback(*head.args)
            if until is not None and not self._stopped and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: int) -> None:
        """Convenience wrapper: run for ``duration`` µs of simulated time."""
        if duration < 0:
            raise SimulationError("duration must be non-negative")
        self.run(until=self._now + duration)

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after this event."""
        self._stopped = True

    # -- introspection --------------------------------------------------------

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return sum(1 for e in self._heap if not e.cancelled)

    def next_event_time(self) -> Optional[int]:
        """Time of the next pending event, or None when idle."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel t={self._now} pending={self.pending_count()}>"
