"""The discrete-event loop.

The kernel keeps a binary heap of ``(time, sequence, Event)`` entries.  The
monotonically increasing sequence number makes ordering of same-time events
deterministic (FIFO in scheduling order), which matters for reproducibility
of fault-injection campaigns.

Cancellation is lazy (a cancelled event stays in the heap and is skipped when
it surfaces), but the kernel tracks how many cancelled events the heap is
carrying and compacts it once they outnumber the pending ones — a campaign
that cancels timeouts at every completed IO would otherwise drag a heap of
corpses through every sift.  Cancelled events that leave the heap are pooled
on a freelist and reused by :meth:`Kernel.schedule`.

Handle-retention contract: an :class:`Event` handle is only meaningful until
it fires or until you cancel it.  After calling :meth:`Event.cancel`, drop
the reference — the kernel recycles cancelled ``Event`` objects, so a stale
handle may later alias a completely different scheduled callback.  (Fired
events are never recycled, so cancelling an already-fired handle — as the
PSU does when clearing its pending list — remains a safe no-op.)
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

_COMPACT_MIN_HEAP = 64
"""Never bother compacting heaps smaller than this (re-sifting is cheap)."""

_FREELIST_MAX = 4096
"""Upper bound on pooled Event objects (churn beyond this just allocates)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Kernel.schedule`.

    Events may be cancelled before they fire; a cancelled event stays in the
    heap but is skipped by the loop (lazy deletion).  See the module
    docstring for the handle-retention contract.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_kernel")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        kernel: "Optional[Kernel]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op if already fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._kernel is not None:
            self._kernel._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is still going to fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time} seq={self.seq} {state} {self.callback!r}>"


class Kernel:
    """Discrete-event loop with integer-microsecond time.

    Example
    -------
    >>> k = Kernel()
    >>> out = []
    >>> _ = k.schedule(10, out.append, "a")
    >>> _ = k.schedule(5, out.append, "b")
    >>> k.run()
    >>> out
    ['b', 'a']
    >>> k.now
    10
    """

    def __init__(self, start_time: int = 0) -> None:
        self._now = int(start_time)
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._cancelled_pending = 0
        self._freelist: List[Event] = []

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} us in the past")
        return self.schedule_at(self._now + int(delay), callback, *args)

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        if self._freelist:
            event = self._freelist.pop()
            event.time = int(time)
            event.seq = self._seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.fired = False
        else:
            event = Event(int(time), self._seq, callback, args, self)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # -- cancellation bookkeeping ---------------------------------------------

    def _note_cancelled(self) -> None:
        """A pending in-heap event was just cancelled; compact when stale
        entries outnumber live ones."""
        self._cancelled_pending += 1
        if (
            len(self._heap) > _COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap with only pending events (drops cancelled ones)."""
        pending = []
        for event in self._heap:
            if event.cancelled:
                self._recycle(event)
            else:
                pending.append(event)
        heapq.heapify(pending)
        self._heap = pending
        self._cancelled_pending = 0

    def _recycle(self, event: Event) -> None:
        """Pool a cancelled event that left the heap for reuse by schedule().

        Only cancelled events are ever pooled: fired handles may still be
        held (and re-cancelled) by callers, so they are never reused.
        """
        event.callback = None  # type: ignore[assignment]
        event.args = ()
        if len(self._freelist) < _FREELIST_MAX:
            self._freelist.append(event)

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                self._recycle(event)
                continue
            self._now = event.time
            event.fired = True
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run events in order.

        With ``until`` set, runs every event with ``time <= until`` and then
        advances the clock to exactly ``until`` (even if idle).  Without it,
        runs until the heap drains or :meth:`stop` is called.
        """
        if self._running:
            raise SimulationError("kernel.run() is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled_pending -= 1
                    self._recycle(head)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = head.time
                head.fired = True
                head.callback(*head.args)
            if until is not None and not self._stopped and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: int) -> None:
        """Convenience wrapper: run for ``duration`` µs of simulated time."""
        if duration < 0:
            raise SimulationError("duration must be non-negative")
        self.run(until=self._now + duration)

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after this event."""
        self._stopped = True

    # -- introspection --------------------------------------------------------

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return len(self._heap) - self._cancelled_pending

    def next_event_time(self) -> Optional[int]:
        """Time of the next pending event, or None when idle.

        Pops cancelled events off the heap top as a side effect, so the
        common poll-then-run loop stays O(1) amortised instead of sorting
        the whole heap per call.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if not head.cancelled:
                return head.time
            heapq.heappop(heap)
            self._cancelled_pending -= 1
            self._recycle(head)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel t={self._now} pending={self.pending_count()}>"
