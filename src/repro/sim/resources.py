"""Counted FIFO resources for modelling contention.

NAND channels, dies, and the SATA link are shared: at most ``capacity``
operations can hold the resource at once and the rest queue in FIFO order.
Callback-style (rather than process-style) acquisition keeps the hot IO path
cheap — device models call :meth:`Resource.acquire` with a continuation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Tuple

from repro.errors import SimulationError
from repro.sim.kernel import Kernel


class Resource:
    """A counted resource with a FIFO wait queue.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> k = Kernel()
    >>> r = Resource(k, capacity=1, name="die0")
    >>> order = []
    >>> r.acquire(lambda: order.append("first"))
    >>> r.acquire(lambda: order.append("second"))
    >>> k.run()
    >>> order          # second waits until first releases
    ['first']
    >>> r.release(); k.run(); order
    ['first', 'second']
    """

    def __init__(self, kernel: Kernel, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: Deque[Tuple[Callable[..., Any], tuple]] = deque()
        # Counters for utilisation statistics.
        self.total_acquisitions = 0
        self.peak_queue_depth = 0

    def acquire(self, continuation: Callable[..., Any], *args: Any) -> None:
        """Run ``continuation(*args)`` once a slot is available.

        The continuation runs either synchronously via a zero-delay event (if
        a slot is free) or later when :meth:`release` frees one.  It MUST
        eventually cause :meth:`release` to be called.
        """
        if self.in_use < self.capacity:
            self.in_use += 1
            self.total_acquisitions += 1
            self.kernel.schedule(0, continuation, *args)
        else:
            self._queue.append((continuation, args))
            if len(self._queue) > self.peak_queue_depth:
                self.peak_queue_depth = len(self._queue)

    def release(self) -> None:
        """Free one slot, dispatching the next queued waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            continuation, args = self._queue.popleft()
            self.total_acquisitions += 1
            self.kernel.schedule(0, continuation, *args)
        else:
            self.in_use -= 1

    def drain(self) -> int:
        """Drop all queued waiters (used on power loss).  Returns count dropped."""
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    def reset(self) -> None:
        """Forcibly return the resource to idle (used after power cycling)."""
        self._queue.clear()
        self.in_use = 0

    @property
    def queue_depth(self) -> int:
        """Number of waiters currently queued."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when nothing holds or waits for the resource."""
        return self.in_use == 0 and not self._queue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} {self.in_use}/{self.capacity}"
            f" queued={len(self._queue)}>"
        )
