"""Generator-based cooperative processes on top of the event kernel.

Device models are much easier to read as sequential code ("program the page,
wait 1.3 ms, verify, ...") than as chains of callbacks.  A :class:`Process`
wraps a generator; the generator *yields* either

- an ``int`` — sleep that many microseconds, or
- a :class:`Signal` — park until the signal fires, or
- a :class:`Timeout` — park until the signal fires or the deadline passes.

Processes can be interrupted (used to model power loss killing an in-flight
NAND operation) via :meth:`Process.interrupt`, which raises
:class:`Interrupted` inside the generator at its current yield point.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Event, Kernel


class Interrupted(Exception):
    """Raised inside a process generator when it is interrupted.

    ``cause`` carries an arbitrary payload describing why (e.g. the supply
    voltage at the moment power collapsed).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Signal:
    """A broadcast wake-up primitive.

    Processes yield the signal to park on it; :meth:`fire` wakes all of them
    at the current simulation time.  A payload passed to ``fire`` becomes the
    value of the ``yield`` expression in each waiter.

    A *sticky* signal latches: once fired, any process that parks on it later
    wakes immediately with the latched payload (like a completed future).
    """

    def __init__(self, kernel: Kernel, name: str = "", sticky: bool = False) -> None:
        self.kernel = kernel
        self.name = name
        self.sticky = sticky
        self._waiters: List["Process"] = []
        self._latched = False
        self._latched_payload: Any = None

    def fire(self, payload: Any = None) -> int:
        """Wake every waiter now.  Returns the number of processes woken."""
        if self.sticky:
            self._latched = True
            self._latched_payload = payload
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._wake(payload)
        return len(waiters)

    def _park(self, proc: "Process") -> None:
        if self._latched:
            self.kernel.schedule(0, proc._wake, self._latched_payload)
            return
        self._waiters.append(proc)

    def _unpark(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def waiter_count(self) -> int:
        """Number of processes currently parked on the signal."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class Timeout:
    """Yieldable: wait on ``signal`` but give up after ``delay`` µs.

    The yield expression evaluates to the signal payload, or to
    :data:`TIMED_OUT` when the deadline fired first.
    """

    def __init__(self, signal: Signal, delay: int) -> None:
        if delay < 0:
            raise SimulationError("timeout delay must be non-negative")
        self.signal = signal
        self.delay = delay


TIMED_OUT = object()
"""Sentinel produced by a :class:`Timeout` yield when the deadline won."""


class Process:
    """A cooperative process driven by the kernel.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> k = Kernel()
    >>> log = []
    >>> def worker():
    ...     log.append(("start", k.now))
    ...     yield 100
    ...     log.append(("end", k.now))
    >>> p = Process(k, worker())
    >>> k.run()
    >>> log
    [('start', 0), ('end', 100)]
    """

    def __init__(self, kernel: Kernel, generator: Generator, name: str = "") -> None:
        self.kernel = kernel
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self.alive = True
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._pending_event: Optional[Event] = None
        self._parked_on: Optional[Signal] = None
        self.done_signal = Signal(kernel, f"{self.name}.done")
        # Start on the next kernel dispatch at the current time so that a
        # process created inside an event handler begins deterministically.
        self._pending_event = kernel.schedule(0, self._advance, None)

    # -- driving ---------------------------------------------------------------

    def _advance(self, send_value: Any) -> None:
        self._pending_event = None
        self._parked_on = None
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except Interrupted:
            self._finish(result=None)
            return
        self._arm(yielded)

    def _throw_interrupt(self, cause: Any) -> None:
        try:
            yielded = self._gen.throw(Interrupted(cause))
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except Interrupted:
            self._finish(result=None)
            return
        self._arm(yielded)

    def _arm(self, yielded: Any) -> None:
        if isinstance(yielded, int):
            if yielded < 0:
                self._crash(SimulationError("process yielded a negative delay"))
                return
            self._pending_event = self.kernel.schedule(yielded, self._advance, None)
        elif isinstance(yielded, Signal):
            self._parked_on = yielded
            yielded._park(self)
        elif isinstance(yielded, Timeout):
            self._parked_on = yielded.signal
            yielded.signal._park(self)
            self._pending_event = self.kernel.schedule(
                yielded.delay, self._timeout_fired
            )
        else:
            self._crash(
                SimulationError(f"process yielded unsupported value {yielded!r}")
            )

    def _timeout_fired(self) -> None:
        self._pending_event = None
        if self._parked_on is not None:
            self._parked_on._unpark(self)
            self._parked_on = None
        self._advance(TIMED_OUT)

    def _wake(self, payload: Any) -> None:
        if not self.alive:
            return
        if self._pending_event is not None:  # cancel a racing Timeout deadline
            self._pending_event.cancel()
            self._pending_event = None
        self._advance(payload)

    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        self.done_signal.fire(result)

    def _crash(self, exc: BaseException) -> None:
        self.alive = False
        self.exception = exc
        self.done_signal.fire(None)
        raise exc

    # -- public control ----------------------------------------------------------

    def interrupt(self, cause: Any = None) -> bool:
        """Interrupt the process at its current wait point.

        Returns True if the process was alive and has been interrupted.  The
        generator sees :class:`Interrupted` raised at its ``yield``; it may
        catch it to model partial work (e.g. a torn NAND program) or let it
        propagate to terminate.
        """
        if not self.alive:
            return False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._parked_on is not None:
            self._parked_on._unpark(self)
            self._parked_on = None
        self._throw_interrupt(cause)
        return True

    def kill(self) -> None:
        """Terminate the process without running any more of its body."""
        if not self.alive:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._parked_on is not None:
            self._parked_on._unpark(self)
            self._parked_on = None
        self._gen.close()
        self._finish(result=None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


def all_of(kernel: Kernel, processes: Iterable[Process]) -> Signal:
    """Return a signal that fires once every given process has finished."""
    procs = [p for p in processes]
    gate = Signal(kernel, "all_of", sticky=True)
    remaining = sum(1 for p in procs if p.alive)
    if remaining == 0:
        gate.fire(None)
        return gate

    state = {"remaining": remaining}

    def make_waiter(proc: Process) -> Generator:
        def waiter() -> Generator:
            yield proc.done_signal
            state["remaining"] -= 1
            if state["remaining"] == 0:
                gate.fire(None)

        return waiter()

    for proc in procs:
        if proc.alive:
            Process(kernel, make_waiter(proc), name=f"all_of[{proc.name}]")
    return gate
