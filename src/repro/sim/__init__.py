"""Discrete-event simulation kernel.

A minimal but complete event-driven core used by every substrate in the
testbed.  Time is an integer number of microseconds (see :mod:`repro.units`).

Public surface:

- :class:`~repro.sim.kernel.Kernel` — the event loop.
- :class:`~repro.sim.kernel.Event` — cancellable scheduled callback.
- :class:`~repro.sim.process.Process` — generator-based cooperative process.
- :class:`~repro.sim.process.Signal` — broadcast wake-up primitive.
- :class:`~repro.sim.resources.Resource` — FIFO counted resource (queues).
"""

from repro.sim.kernel import Event, Kernel
from repro.sim.process import Process, Signal, Timeout
from repro.sim.resources import Resource

__all__ = ["Kernel", "Event", "Process", "Signal", "Timeout", "Resource"]
