"""Storage-architecture extension: mirroring across power domains.

The paper's introduction motivates the study partly for "designers to
carefully architect storage systems" — knowing how SSDs fail under power
faults tells you where redundancy must live.  This package provides the
smallest such architecture: a RAID-1 mirror over two simulated SSDs, with
the two drives either **sharing one PSU** (a fault takes both) or on
**independent power domains** (a fault takes one).  The mirror example and
tests quantify the difference the paper's data implies: mirroring inside a
single power domain does *not* protect against power-fault data loss,
because both replicas see the same fault.

Public surface: :class:`~repro.raid.mirror.MirrorPair`,
:class:`~repro.raid.mirror.MirrorReadResult`.
"""

from repro.raid.mirror import MirrorPair, MirrorReadResult

__all__ = ["MirrorPair", "MirrorReadResult"]
