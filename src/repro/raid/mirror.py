"""RAID-1 over two simulated SSDs with configurable power domains.

A :class:`MirrorPair` owns two complete :class:`~repro.host.system.HostSystem`
stacks sharing one simulation kernel.  ``shared_power=True`` wires both
device loads to a single PSU (one fault hits both drives — the common
single-PDU rack); ``False`` gives each drive its own PSU so faults can be
injected per-domain.

Reads are verified reads: the mirror reads both replicas and can repair a
replica whose data is missing or corrupt from the healthy one, which is how
the architecture converts "at least one replica survived" into durability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.host.block_layer import BlockRequest
from repro.host.system import HostSystem
from repro.power.controller import PowerController
from repro.rand import RandomStreams
from repro.sim import Kernel
from repro.ssd.device import SsdConfig, SsdDevice
from repro.trace.blktrace import BlockTracer
from repro.host.block_layer import BlockLayer
from repro.units import SEC


def _contiguous_runs(offsets: List[int]):
    """Group sorted page offsets into ``(start, length)`` runs."""
    start = prev = offsets[0]
    for offset in offsets[1:]:
        if offset != prev + 1:
            yield start, prev - start + 1
            start = offset
        prev = offset
    yield start, prev - start + 1


@dataclass
class MirrorReadResult:
    """Outcome of a verified mirror read."""

    tokens: Optional[List[int]]
    healthy_replicas: int
    agreed: bool
    repaired_pages: int = 0

    @property
    def data_available(self) -> bool:
        """True when at least one replica produced the data."""
        return self.tokens is not None


class _Replica:
    """One leg of the mirror: its own power chain + device + block layer."""

    def __init__(self, kernel: Kernel, config: SsdConfig, seed: int, name: str,
                 power: Optional[PowerController] = None) -> None:
        self.kernel = kernel
        self.power = power if power is not None else PowerController(kernel)
        self.tracer = BlockTracer(kernel)
        self.ssd = SsdDevice(
            kernel, config, self.power.psu, RandomStreams(seed).fork(name), name=name
        )
        self.block = BlockLayer(kernel, self.ssd, self.tracer)


class MirrorPair:
    """RAID-1 across two devices.

    Example
    -------
    >>> mirror = MirrorPair(shared_power=False, seed=5)
    >>> mirror.boot()
    >>> _ = mirror.write(0, [11, 22])
    >>> mirror.run_for_ms(100)
    >>> mirror.read_verified(0, 2).tokens
    [11, 22]
    """

    def __init__(
        self,
        config: Optional[SsdConfig] = None,
        shared_power: bool = True,
        seed: int = 0,
        kernel: Optional[Kernel] = None,
        power: Optional[PowerController] = None,
    ) -> None:
        """``kernel`` embeds the pair in an existing simulation (topology
        stacks); ``power`` wires both legs to an external shared controller
        (e.g. a rack PDU also feeding other tiers) and implies
        ``shared_power=True``."""
        if power is not None and not shared_power:
            raise ConfigurationError(
                "an external shared power controller implies shared_power=True"
            )
        self.kernel = kernel if kernel is not None else Kernel()
        self.shared_power = shared_power
        config = config or SsdConfig()
        if power is not None:
            shared: Optional[PowerController] = power
        else:
            shared = PowerController(self.kernel) if shared_power else None
        self.replicas: Tuple[_Replica, _Replica] = (
            _Replica(self.kernel, config, seed, "mirror-a", power=shared),
            _Replica(self.kernel, config, seed + 1, "mirror-b", power=shared),
        )
        # Statistics.
        self.writes_submitted = 0
        self.repairs = 0
        self.repaired_pages = 0

    # -- lifecycle ---------------------------------------------------------------------

    def _pump_until(self, predicate, timeout_us: int = 10 * SEC) -> None:
        deadline = self.kernel.now + timeout_us
        while not predicate():
            if self.kernel.now >= deadline:
                raise SimulationError("mirror operation timed out")
            next_event = self.kernel.next_event_time()
            if next_event is None:
                raise SimulationError("simulation idle during mirror operation")
            self.kernel.run(until=min(next_event, deadline))

    def boot(self) -> None:
        """Power everything on and wait for both drives."""
        seen = set()
        for replica in self.replicas:
            if id(replica.power) not in seen:
                replica.power.power_on()
                seen.add(id(replica.power))
        self._pump_until(lambda: all(r.ssd.is_ready for r in self.replicas))

    def run_for_ms(self, milliseconds: float) -> None:
        """Advance simulated time."""
        self.kernel.run(until=self.kernel.now + round(milliseconds * 1000))

    # -- IO ---------------------------------------------------------------------------

    def write(self, lpn: int, tokens: List[int]) -> List[BlockRequest]:
        """Submit the write to both replicas."""
        if not tokens:
            raise ConfigurationError("empty mirror write")
        self.writes_submitted += 1
        requests = []
        for replica in self.replicas:
            request = BlockRequest(
                lpn=lpn, page_count=len(tokens), is_write=True, tokens=list(tokens)
            )
            replica.block.submit(request)
            requests.append(request)
        return requests

    def flush(self) -> None:
        """FLUSH barrier on both replicas."""
        from repro.ssd.command import IoCommand

        done = []
        for replica in self.replicas:
            if replica.ssd.is_ready:
                replica.ssd.submit(IoCommand.flush(on_complete=done.append))
        expected = sum(1 for r in self.replicas if r.ssd.is_ready)
        self._pump_until(lambda: len(done) >= expected)

    def _peek_replica(self, replica: _Replica, lpn: int, count: int) -> Optional[List[int]]:
        if not replica.ssd.is_ready:
            return None
        tokens = []
        for offset in range(count):
            token = replica.ssd.peek(lpn + offset)
            if token is None:
                token = 0
            if token == -1:  # CORRUPT_TOKEN
                return None
            tokens.append(token)
        return tokens

    def _peek_replica_raw(self, replica: _Replica, lpn: int, count: int) -> List[int]:
        """Per-page view for repair targeting: corrupt pages surface as the
        corrupt token (-1) instead of poisoning the whole span, so a repair
        can rewrite exactly the pages that deviate."""
        tokens = []
        for offset in range(count):
            token = replica.ssd.peek(lpn + offset)
            tokens.append(0 if token is None else token)
        return tokens

    def read_verified(self, lpn: int, count: int, expected: Optional[List[int]] = None) -> MirrorReadResult:
        """Read both replicas, compare, optionally repair.

        With ``expected`` given (verification mode), a replica whose content
        deviates is counted unhealthy and repaired from a healthy one.
        """
        views = [self._peek_replica(replica, lpn, count) for replica in self.replicas]
        reference = expected
        healthy = []
        for view in views:
            if view is None:
                continue
            if reference is None or view == reference:
                healthy.append(view)
        agreed = (
            views[0] is not None and views[0] == views[1]
        )
        chosen = healthy[0] if healthy else None
        repaired = 0
        if chosen is not None:
            for replica, view in zip(self.replicas, views):
                if view == chosen or not replica.ssd.is_ready:
                    continue
                raw = self._peek_replica_raw(replica, lpn, count)
                deviating = [
                    offset for offset in range(count) if raw[offset] != chosen[offset]
                ]
                if not deviating:
                    continue
                for start, length in _contiguous_runs(deviating):
                    request = BlockRequest(
                        lpn=lpn + start,
                        page_count=length,
                        is_write=True,
                        tokens=list(chosen[start : start + length]),
                    )
                    replica.block.submit(request)
                repaired += len(deviating)
                self.repairs += 1
        self.repaired_pages += repaired
        return MirrorReadResult(
            tokens=chosen,
            healthy_replicas=len(healthy),
            agreed=agreed,
            repaired_pages=repaired,
        )

    # -- faults ------------------------------------------------------------------------

    def fault_domain(self, replica_index: Optional[int] = None) -> None:
        """Cut power: the shared domain, or one replica's own domain."""
        if self.shared_power:
            self.replicas[0].power.power_off()
            return
        if replica_index is None:
            raise ConfigurationError("independent domains need a replica index")
        self.replicas[replica_index].power.power_off()

    def restore_all(self) -> None:
        """Power every domain back on and wait for readiness."""
        seen = set()
        for replica in self.replicas:
            if id(replica.power) not in seen:
                replica.power.power_on()
                seen.add(id(replica.power))
        self._pump_until(lambda: all(r.ssd.is_ready for r in self.replicas))
