"""A write-ahead-log database: begin/write/commit with redo recovery.

Protocol (one transaction per :meth:`WalDatabase.step`):

1. append one self-describing row record per row to ``wal.log``;
2. append the commit record (row count + transaction digest);
3. ``fsync(wal.log)`` — **the ack point**: only when the fsync returns is
   the transaction promised to the caller (``fsync_commits=False`` models
   the classic mis-configured database that acks at write return).

Every ``snapshot_every`` transactions the committed ledger is folded into
a snapshot file via the write-tmp → fsync → rename dance, giving redo
recovery a redundant copy: a transaction whose WAL record is torn but
that is covered by a readable snapshot is *torn-but-recovered*, not lost.

Redo recovery replays the WAL strictly prefix-wise — it stops at the
first damaged or foreign block (rolled-back pages from reused blocks
carry a different run id or segment tag and fail their CRC seal), the
same halt-at-tear contract :func:`repro.fs.journal.decode_transactions`
applies one layer down.  Every decision is made by pure functions over
decoded block lists so the Hypothesis suite can drive them without a
simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.audit import Observation
from repro.apps.base import (
    AppWorkload,
    Promise,
    canonical_json,
    content_digest,
    record_crc_ok,
    seal_record,
)
from repro.errors import AppAuditError

WAL_FILE = "wal.log"
TMP_FILE = "db.tmp"
SNAP_PREFIX = "snap-"
_SNAP_CHUNK_HEX = 3000  # hex chars of ledger JSON per snapshot block


def txn_digest(txid: int, rows: List[Dict[str, object]]) -> str:
    """The content fingerprint a committed transaction promises."""
    return content_digest(
        canonical_json([txid] + [[r["key"], r["val"]] for r in rows])
    )


# -- pure recovery core ----------------------------------------------------------------


@dataclass
class WalReplay:
    """Outcome of a prefix-wise redo scan over decoded WAL blocks."""

    committed: Dict[int, str] = field(default_factory=dict)  # txid -> digest
    tear_index: Optional[int] = None  # first untrusted block, None = clean


def replay_wal_records(
    records: List[Optional[Dict[str, object]]], run_id: str
) -> WalReplay:
    """Redo scan: committed transactions in the maximal trustworthy prefix.

    Stops at the first block that is unreadable, fails its CRC, carries a
    foreign run id, or breaks the row/commit sequencing — everything past
    that point is untrusted (never resurrect a later commit).
    """
    replay = WalReplay()
    open_rows: List[Dict[str, object]] = []
    open_txid: Optional[int] = None
    for index, record in enumerate(records):
        if record is None or not record_crc_ok(record):
            replay.tear_index = index
            return replay
        if record.get("run") != run_id:
            replay.tear_index = index
            return replay
        tag = record.get("a")
        if tag == "walrow":
            txid, row_index = record.get("tx"), record.get("i")
            if open_txid is None:
                if row_index != 0:
                    replay.tear_index = index
                    return replay
                open_txid, open_rows = txid, [record]
            else:
                if txid != open_txid or row_index != len(open_rows):
                    replay.tear_index = index
                    return replay
                open_rows.append(record)
        elif tag == "walcommit":
            if open_txid is None or record.get("tx") != open_txid:
                replay.tear_index = index
                return replay
            if record.get("n") != len(open_rows):
                replay.tear_index = index
                return replay
            digest = txn_digest(open_txid, open_rows)
            if record.get("dig") != digest:
                replay.tear_index = index
                return replay
            replay.committed[open_txid] = digest
            open_txid, open_rows = None, []
        else:
            replay.tear_index = index
            return replay
    if open_txid is not None:
        # Open transaction at end of file: torn tail, never acked.
        replay.tear_index = len(records)
    return replay


def load_snapshot_chunks(
    chunks: List[Optional[Dict[str, object]]], run_id: str
) -> Optional[Dict[int, str]]:
    """Decode one snapshot file; None unless every chunk checks out."""
    if not chunks:
        return None
    parts: List[str] = []
    digest = None
    for index, chunk in enumerate(chunks):
        if chunk is None or not record_crc_ok(chunk):
            return None
        if chunk.get("a") != "walsnap" or chunk.get("run") != run_id:
            return None
        if chunk.get("j") != index or chunk.get("m") != len(chunks):
            return None
        if digest is None:
            digest = chunk.get("dig")
        elif chunk.get("dig") != digest:
            return None
        parts.append(str(chunk.get("data", "")))
    try:
        payload = bytes.fromhex("".join(parts))
    except ValueError:
        return None
    if content_digest(payload) != digest:
        return None
    try:
        ledger = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return {int(txid): str(dig) for txid, dig in ledger}


def observe_wal_promises(
    promises: List[Promise],
    replay: WalReplay,
    snapshot: Optional[Dict[int, str]],
    snapshot_source: str,
) -> Dict[str, Observation]:
    """Pure observation map: WAL prefix first, snapshot as redundancy."""
    observations: Dict[str, Observation] = {}
    for promise in promises:
        txid = int(promise.detail.get("txid", promise.seq))
        if txid in replay.committed:
            observations[promise.pid] = Observation(
                digest=replay.committed[txid], damaged=False, source="wal redo"
            )
        elif snapshot is not None and txid in snapshot:
            observations[promise.pid] = Observation(
                digest=snapshot[txid], damaged=True, source=snapshot_source
            )
        else:
            observations[promise.pid] = Observation(
                digest=None, damaged=True, source="wal tear, no snapshot cover"
            )
    return observations


# -- the workload ----------------------------------------------------------------------


class WalDatabase(AppWorkload):
    """The WAL database model (see module docstring)."""

    name = "wal"

    def __init__(
        self,
        rng,
        run_id: str,
        *,
        txn_rows: int = 3,
        snapshot_every: int = 16,
        fsync_commits: bool = True,
        recorder=None,
    ) -> None:
        super().__init__(rng, run_id, recorder)
        if txn_rows <= 0 or snapshot_every <= 0:
            raise AppAuditError("txn_rows and snapshot_every must be positive")
        self.txn_rows = txn_rows
        self.snapshot_every = snapshot_every
        self.fsync_commits = fsync_commits
        self.ledger: List[Tuple[int, str]] = []  # acked (txid, digest), in order
        self._txid = 0
        self._wal_cursor = 0
        self._snap_seq = 0  # newest acked snapshot sequence (0 = none yet)
        self._inflight_rename: Optional[str] = None

    # -- forward path ------------------------------------------------------------------

    def setup(self, fs) -> None:
        fs.create(WAL_FILE, sync=True)

    def _make_rows(self, txid: int, count: int) -> List[Dict[str, object]]:
        rows = []
        for index in range(count):
            rows.append(
                seal_record(
                    {
                        "a": "walrow",
                        "run": self.run_id,
                        "tx": txid,
                        "i": index,
                        "n": count,
                        "key": f"k{self.rng.randrange(4096)}",
                        "val": bytes(
                            self.rng.getrandbits(8) for _ in range(24)
                        ).hex(),
                    }
                )
            )
        return rows

    def step(self, fs) -> None:
        """One transaction: rows, commit record, fsync, ack."""
        txid = self._txid + 1
        rows = self._make_rows(txid, 1 + self.rng.randrange(self.txn_rows))
        digest = txn_digest(txid, rows)
        blocks = []
        for offset, row in enumerate(rows):
            index = self._wal_cursor + offset
            self._write_block(fs, WAL_FILE, index, row)
            blocks.append(index)
        commit = seal_record(
            {
                "a": "walcommit",
                "run": self.run_id,
                "tx": txid,
                "n": len(rows),
                "dig": digest,
            }
        )
        commit_index = self._wal_cursor + len(rows)
        self._write_block(fs, WAL_FILE, commit_index, commit)
        blocks.append(commit_index)
        if self.fsync_commits:
            fs.fsync(WAL_FILE)
        # Ack point: everything before this line is torn-if-faulted, never lost.
        self._txid = txid
        self._wal_cursor = commit_index + 1
        self.ledger.append((txid, digest))
        self.promises.ack(
            Promise(
                pid=f"txn-{txid}",
                kind="commit",
                digest=digest,
                seq=txid,
                detail={"file": WAL_FILE, "blocks": tuple(blocks), "txid": txid},
            )
        )
        self.ops_completed += 1
        if txid % self.snapshot_every == 0:
            self._write_snapshot(fs)

    def _write_snapshot(self, fs) -> None:
        """Fold the ledger into ``snap-<n>`` via write-tmp/fsync/rename."""
        payload = canonical_json([[t, d] for t, d in self.ledger])
        digest = content_digest(payload)
        data = payload.hex()
        parts = [
            data[i : i + _SNAP_CHUNK_HEX] for i in range(0, len(data), _SNAP_CHUNK_HEX)
        ] or [""]
        if fs.exists(TMP_FILE):
            fs.delete(TMP_FILE)
            if self.recorder is not None:
                self.recorder.note_delete(TMP_FILE)
        fs.create(TMP_FILE)
        for index, part in enumerate(parts):
            self._write_block(
                fs,
                TMP_FILE,
                index,
                seal_record(
                    {
                        "a": "walsnap",
                        "run": self.run_id,
                        "j": index,
                        "m": len(parts),
                        "data": part,
                        "dig": digest,
                        "top": self._txid,
                    }
                ),
            )
        if self.fsync_commits:
            fs.fsync(TMP_FILE)
        seq = self._snap_seq + 1
        name = f"{SNAP_PREFIX}{seq}"
        self._inflight_rename = name
        fs.rename(TMP_FILE, name, sync=True)
        self._inflight_rename = None
        if self.recorder is not None:
            self.recorder.note_rename(TMP_FILE, name)
        previous = f"{SNAP_PREFIX}{self._snap_seq}"
        self._snap_seq = seq
        if fs.exists(previous):
            fs.delete(previous)
            if self.recorder is not None:
                self.recorder.note_delete(previous)

    # -- recovery path -----------------------------------------------------------------

    def recover(self, fs) -> Dict[str, Observation]:
        files = set(fs.list_files())
        # Rename atomicity: an in-flight snapshot swap either applied or
        # rolled back — both names visible at once is a half-applied rename.
        if self._inflight_rename is not None:
            if TMP_FILE in files and self._inflight_rename in files:
                raise AppAuditError(
                    f"rename half-applied: {TMP_FILE} and "
                    f"{self._inflight_rename} both exist after the fault"
                )
        # Durability of the synced swap: the newest *acked* snapshot rename
        # carried a FLUSH, so its name must have survived the power cycle.
        if self._snap_seq:
            newest = f"{SNAP_PREFIX}{self._snap_seq}"
            if newest not in files:
                raise AppAuditError(
                    f"synced rename lost: {newest} missing after remount"
                )
        wal_records = (
            self._read_blocks(fs, WAL_FILE) if WAL_FILE in files else []
        )
        replay = replay_wal_records(wal_records, self.run_id)
        snapshot, source = self._best_snapshot(fs, files)
        self.last_replay = replay  # explain support
        self.last_snapshot_source = source
        return observe_wal_promises(
            self.promises.outstanding(), replay, snapshot, source
        )

    def _best_snapshot(self, fs, files) -> Tuple[Optional[Dict[int, str]], str]:
        """Newest readable snapshot (highest sequence wins).

        A fully written but not-yet-renamed ``db.tmp`` is the newest
        candidate of all: its chunks are run-id bound, CRC sealed and
        whole-payload digested, so if it validates end to end its ledger is
        trustworthy even though the swap never happened — exactly how a real
        database scavenges an interrupted snapshot.
        """
        names = [TMP_FILE] if TMP_FILE in files else []
        names += [
            f"{SNAP_PREFIX}{seq}"
            for seq in sorted(
                (
                    int(name[len(SNAP_PREFIX) :])
                    for name in files
                    if name.startswith(SNAP_PREFIX)
                    and name[len(SNAP_PREFIX) :].isdigit()
                ),
                reverse=True,
            )
        ]
        for name in names:
            snapshot = load_snapshot_chunks(self._read_blocks(fs, name), self.run_id)
            if snapshot is not None:
                return snapshot, name
        return None, "no snapshot"
