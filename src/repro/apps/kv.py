"""A log-structured KV store: append-only segments, compaction, manifest swap.

Forward path: every put appends one sealed record to the active segment
file ``seg-<n>.log``; every ``flush_every`` puts the segment is fsynced
and the batch of puts since the last flush is acked (one promise per
*key*, superseding the key's earlier promise).  Every ``compact_every``
puts the live table is rewritten into a fresh segment, the segment is
fsynced, and a manifest naming the new segment set is published with the
write-tmp → fsync → rename dance; obsolete segments are deleted only
after the manifest rename returns.

Recovery: pick the newest manifest that decodes and checks out, replay
its segments prefix-wise (per segment, stopping that segment's replay at
its first damaged block), rebuild the table by highest sequence number.

``checksum_records=False`` models a store that trusts storage: records
are not CRC-sealed and replay accepts any well-formed block, so a page
the FTL rolled back to an *older generation of the same key* replays
silently — the application-level face of the paper's FWA failures.  With
checksums on, the same rollback is detected and surfaces as committed
loss instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.audit import Observation
from repro.apps.base import (
    AppWorkload,
    Promise,
    content_digest,
    canonical_json,
    record_crc_ok,
    seal_record,
)
from repro.errors import AppAuditError

SEG_PREFIX = "seg-"
SEG_SUFFIX = ".log"
MANIFEST_PREFIX = "manifest-"
MANIFEST_TMP = "manifest.tmp"


def _seg_name(seg: int) -> str:
    return f"{SEG_PREFIX}{seg}{SEG_SUFFIX}"


def kv_value_digest(key: str, val: str, seq: int) -> str:
    """The content fingerprint a put promises (binds key, value and version)."""
    return content_digest(canonical_json([key, val, seq]))


# -- pure recovery core ----------------------------------------------------------------


@dataclass
class KvReplay:
    """Rebuilt table plus per-segment damage map from a prefix replay."""

    table: Dict[str, Tuple[int, str]] = field(default_factory=dict)  # key -> (seq, digest)
    tears: Dict[int, int] = field(default_factory=dict)  # seg -> first damaged index
    seen: List[int] = field(default_factory=list)  # segments the replay read
    records_applied: int = 0


def replay_segments(
    segments: Dict[int, List[Optional[Dict[str, object]]]],
    run_id: str,
    *,
    checksums: bool = True,
) -> KvReplay:
    """Replay decoded segment blocks into a table, newest sequence wins.

    Each segment is replayed prefix-wise: its first damaged block ends
    *that segment's* replay (recorded in ``tears``), other segments are
    unaffected.  With ``checksums`` a record must carry a valid CRC, the
    right run id and its own segment number; without, any well-formed
    ``kv`` record is believed — including rolled-back older pages.
    """
    replay = KvReplay()
    replay.seen = sorted(segments)
    for seg in sorted(segments):
        for index, record in enumerate(segments[seg]):
            if record is None or record.get("a") != "kv":
                replay.tears[seg] = index
                break
            if checksums:
                if (
                    not record_crc_ok(record)
                    or record.get("run") != run_id
                    or record.get("seg") != seg
                ):
                    replay.tears[seg] = index
                    break
            key, val, seq = record.get("key"), record.get("val"), record.get("q")
            if not isinstance(key, str) or not isinstance(val, str) or not isinstance(seq, int):
                replay.tears[seg] = index
                break
            current = replay.table.get(key)
            if current is None or seq >= current[0]:
                replay.table[key] = (seq, kv_value_digest(key, val, seq))
            replay.records_applied += 1
    return replay


def decode_manifest(
    records: List[Optional[Dict[str, object]]], run_id: str, version: int
) -> Optional[List[int]]:
    """One manifest file -> its segment list; None unless it checks out."""
    if len(records) != 1:
        return None
    record = records[0]
    if record is None or record.get("a") != "kvman":
        return None
    if not record_crc_ok(record) or record.get("run") != run_id:
        return None
    if record.get("v") != version:
        return None
    segs = record.get("segs")
    if not isinstance(segs, list) or not all(isinstance(s, int) for s in segs):
        return None
    return list(segs)


def observe_kv_promises(
    promises: List[Promise], replay: KvReplay
) -> Dict[str, Observation]:
    """Pure observation map with expected-location damage attribution.

    A promise's ``detail`` carries the writer-side location of the key's
    newest acked record (segment, block index).  Damage is attributed when
    that location sits at-or-past its segment's tear (or the segment is
    gone entirely) — that is what separates *torn-but-recovered* (digest
    still right, e.g. restored by a compacted copy) from *silent
    corruption* (digest wrong with no damage to explain it).
    """
    observations: Dict[str, Observation] = {}
    for promise in promises:
        key = str(promise.detail.get("key", ""))
        seg = promise.detail.get("seg")
        block = promise.detail.get("block")
        tear = replay.tears.get(seg) if isinstance(seg, int) else None
        segment_missing = not isinstance(seg, int) or seg not in replay.seen
        location_damaged = segment_missing or (
            tear is not None and isinstance(block, int) and block >= tear
        )
        entry = replay.table.get(key)
        if entry is None:
            observations[promise.pid] = Observation(
                digest=None,
                damaged=True,
                source=f"key absent after replay (seg {seg})",
            )
        else:
            observations[promise.pid] = Observation(
                digest=entry[1],
                damaged=location_damaged,
                source=f"segment replay (seg {seg}, block {block})",
            )
    return observations


# -- the workload ----------------------------------------------------------------------


class KvStore(AppWorkload):
    """The log-structured KV store model (see module docstring)."""

    name = "kv"

    def __init__(
        self,
        rng,
        run_id: str,
        *,
        kv_keys: int = 64,
        flush_every: int = 4,
        compact_every: int = 48,
        checksum_records: bool = True,
        fsync_batches: bool = True,
        recorder=None,
    ) -> None:
        super().__init__(rng, run_id, recorder)
        if kv_keys <= 0 or flush_every <= 0 or compact_every <= 0:
            raise AppAuditError("kv_keys, flush_every, compact_every must be positive")
        self.kv_keys = kv_keys
        self.flush_every = flush_every
        self.compact_every = compact_every
        self.checksum_records = checksum_records
        self.fsync_batches = fsync_batches
        self.table: Dict[str, Tuple[int, str, int, int]] = {}  # key -> (seq, val, seg, block)
        self._seq = 0
        self._puts = 0
        self._active_seg = 1
        self._seg_cursor = 0
        self._live_segs: List[int] = [1]
        self._manifest_version = 0  # newest acked manifest (0 = none yet)
        self._pending: List[Tuple[str, int, str, int, int]] = []  # unflushed puts
        self._inflight_rename: Optional[str] = None

    # -- forward path ------------------------------------------------------------------

    def setup(self, fs) -> None:
        fs.create(_seg_name(self._active_seg), sync=True)

    def _record(self, key: str, val: str, seq: int, seg: int) -> Dict[str, object]:
        body = {
            "a": "kv",
            "run": self.run_id,
            "seg": seg,
            "q": seq,
            "key": key,
            "val": val,
        }
        return seal_record(body) if self.checksum_records else body

    def step(self, fs) -> None:
        """One put; every ``flush_every`` puts fsync + ack the batch."""
        self._seq += 1
        seq = self._seq
        key = f"key{self.rng.randrange(self.kv_keys):04d}"
        val = bytes(self.rng.getrandbits(8) for _ in range(16)).hex()
        seg, block = self._active_seg, self._seg_cursor
        self._write_block(fs, _seg_name(seg), block, self._record(key, val, seq, seg))
        self._seg_cursor += 1
        self._pending.append((key, seq, val, seg, block))
        self._puts += 1
        if self._puts % self.flush_every == 0:
            if self.fsync_batches:
                fs.fsync(_seg_name(seg))
            # Ack point: the whole batch became durable with that flush
            # (``fsync_batches=False`` acks on faith — the contrast leg).
            for pkey, pseq, pval, pseg, pblock in self._pending:
                self.table[pkey] = (pseq, pval, pseg, pblock)
                self.promises.ack(
                    Promise(
                        pid=f"key-{pkey}",
                        kind="put",
                        digest=kv_value_digest(pkey, pval, pseq),
                        seq=pseq,
                        detail={"key": pkey, "seg": pseg, "block": pblock},
                    )
                )
            self._pending.clear()
        self.ops_completed += 1
        if self._puts % self.compact_every == 0:
            self._compact(fs)

    def _compact(self, fs) -> None:
        """Rewrite the live table into a fresh segment, publish a manifest."""
        new_seg = self._active_seg + 1
        name = _seg_name(new_seg)
        if fs.exists(name):
            fs.delete(name)
            if self.recorder is not None:
                self.recorder.note_delete(name)
        fs.create(name)
        relocated: Dict[str, Tuple[int, str, int, int]] = {}
        cursor = 0
        for key in sorted(self.table):
            seq, val, _, _ = self.table[key]
            self._write_block(fs, name, cursor, self._record(key, val, seq, new_seg))
            relocated[key] = (seq, val, new_seg, cursor)
            cursor += 1
        if self.fsync_batches:
            fs.fsync(name)
        version = self._manifest_version + 1
        manifest = seal_record(
            {"a": "kvman", "run": self.run_id, "v": version, "segs": [new_seg, new_seg + 1]}
        )
        if fs.exists(MANIFEST_TMP):
            fs.delete(MANIFEST_TMP)
            if self.recorder is not None:
                self.recorder.note_delete(MANIFEST_TMP)
        fs.create(MANIFEST_TMP)
        self._write_block(fs, MANIFEST_TMP, 0, manifest)
        if self.fsync_batches:
            fs.fsync(MANIFEST_TMP)
        # The next active segment named by the manifest must exist (synced)
        # before the manifest points at it.
        next_name = _seg_name(new_seg + 1)
        if fs.exists(next_name):
            fs.delete(next_name)
            if self.recorder is not None:
                self.recorder.note_delete(next_name)
        fs.create(next_name, sync=self.fsync_batches)
        man_name = f"{MANIFEST_PREFIX}{version}"
        self._inflight_rename = man_name
        fs.rename(MANIFEST_TMP, man_name, sync=self.fsync_batches)
        self._inflight_rename = None
        if self.recorder is not None:
            self.recorder.note_rename(MANIFEST_TMP, man_name)
        # Ack point for the relocation: promises move to the compacted copy.
        old_segs = [s for s in self._live_segs if s != new_seg]
        old_manifest = f"{MANIFEST_PREFIX}{self._manifest_version}"
        self._manifest_version = version
        self._live_segs = [new_seg, new_seg + 1]
        self._active_seg = new_seg + 1
        self._seg_cursor = 0
        self.table = relocated
        for key, (seq, val, seg, block) in relocated.items():
            if self.promises.get(f"key-{key}") is not None:
                self.promises.ack(
                    Promise(
                        pid=f"key-{key}",
                        kind="put",
                        digest=kv_value_digest(key, val, seq),
                        seq=seq,
                        detail={"key": key, "seg": seg, "block": block},
                    )
                )
        # Cleanup (unsynced; stale files are harmless, recovery prefers the
        # newest manifest).
        for seg in old_segs:
            stale = _seg_name(seg)
            if fs.exists(stale):
                fs.delete(stale)
                if self.recorder is not None:
                    self.recorder.note_delete(stale)
        if fs.exists(old_manifest):
            fs.delete(old_manifest)
            if self.recorder is not None:
                self.recorder.note_delete(old_manifest)

    # -- recovery path -----------------------------------------------------------------

    def recover(self, fs) -> Dict[str, Observation]:
        files = set(fs.list_files())
        if self._inflight_rename is not None:
            if MANIFEST_TMP in files and self._inflight_rename in files:
                raise AppAuditError(
                    f"rename half-applied: {MANIFEST_TMP} and "
                    f"{self._inflight_rename} both exist after the fault"
                )
        if self._manifest_version and self.fsync_batches:
            # Only the safe protocol syncs its manifest swaps, so only it
            # may hold storage to the newest published name surviving.
            newest = f"{MANIFEST_PREFIX}{self._manifest_version}"
            if newest not in files:
                raise AppAuditError(
                    f"synced rename lost: {newest} missing after remount"
                )
        seg_list = self._recover_manifest(fs, files)
        if seg_list is None:
            # No usable manifest: replay every segment file present.
            seg_list = sorted(
                int(name[len(SEG_PREFIX) : -len(SEG_SUFFIX)])
                for name in files
                if name.startswith(SEG_PREFIX)
                and name.endswith(SEG_SUFFIX)
                and name[len(SEG_PREFIX) : -len(SEG_SUFFIX)].isdigit()
            )
        segments = {
            seg: self._read_blocks(fs, _seg_name(seg))
            for seg in seg_list
            if _seg_name(seg) in files
        }
        replay = replay_segments(segments, self.run_id, checksums=self.checksum_records)
        self.last_replay = replay  # explain support
        self.last_segments = sorted(segments)
        return observe_kv_promises(self.promises.outstanding(), replay)

    def _recover_manifest(self, fs, files) -> Optional[List[int]]:
        """Segment list from the newest manifest that decodes cleanly."""
        versions = sorted(
            (
                int(name[len(MANIFEST_PREFIX) :])
                for name in files
                if name.startswith(MANIFEST_PREFIX)
                and name[len(MANIFEST_PREFIX) :].isdigit()
            ),
            reverse=True,
        )
        for version in versions:
            name = f"{MANIFEST_PREFIX}{version}"
            segs = decode_manifest(self._read_blocks(fs, name), self.run_id, version)
            if segs is not None:
                self.last_manifest = name
                return segs
        self.last_manifest = "no manifest"
        return None
