"""Application fault campaigns as engine plans.

:class:`AppPlan` packages repeated application power-fault cycles as a
:class:`~repro.engine.plan.CampaignPlan` subclass, so the entire engine
surface — sharding, ``--jobs`` process pools, checkpoint/``--resume``,
retry, quarantine, ``--trace`` — applies to app campaigns unchanged, and
``jobs=1`` and ``jobs=N`` produce bit-identical merged results by
construction (executors only ever call :meth:`AppPlan.run_shard`).

One cycle: boot a fresh host + :class:`~repro.fs.FileSystem`, run the
app's operation loop, cut power at an instant drawn from a dedicated
fault stream, let the rails decay, power back on, remount a *fresh*
filesystem object over the surviving device state, run the app's own
recovery, and classify every acked promise with the semantic auditor
(:mod:`repro.apps.audit`).  Each cycle is a pure function of
``(shard seed, cycle index, fault delay)`` — a fresh host per cycle, the
fault delay drawn up front — which is also what makes
``repro apps run --explain N`` cheap: any single cycle can be replayed
in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.apps.audit import SemanticAudit, audit_app
from repro.apps.base import AppRecorder, AppWorkload
from repro.apps.hpc import CheckpointLoop
from repro.apps.kv import KvStore
from repro.apps.wal import WalDatabase
from repro.core.results import CampaignResult, FaultCycleResult
from repro.engine.plan import CampaignPlan, ShardSpec, derive_shard_seed
from repro.errors import CampaignError, ReproError
from repro.fs import FileSystem, FsError
from repro.host.system import HostSystem
from repro.rand import RandomStreams
from repro.units import MSEC

APPS = ("wal", "kv", "hpc")


@dataclass(frozen=True)
class AppPlan(CampaignPlan):
    """A :class:`CampaignPlan` whose shards run application fault cycles.

    ``faults`` is the number of power-fault cycles.  Extra knobs:

    - ``app``: which workload model, one of ``wal`` / ``kv`` / ``hpc``;
    - ``journal_blocks``: filesystem journal size (small values exercise
      journal wrap + checkpoint durability under the apps);
    - ``app_fsync``: the app's durability discipline — ``False`` models
      the classic mis-configured application (ack before flush), the
      committed-loss contrast leg;
    - ``app_checksums``: KV record sealing — ``False`` models a store
      that trusts storage, the silent-corruption contrast leg;
    - ``fault_window_us``: the fault instant is drawn uniformly from
      ``[warmup_us, warmup_us + fault_window_us)`` of each cycle;
    - per-app shape knobs (``txn_rows`` … ``keep_generations``).

    The inherited ``spec`` is carried for engine bookkeeping (labels,
    fingerprints) but app cycles generate their own operation stream.
    """

    app: str = "wal"
    fault_window_us: int = 150 * MSEC
    journal_blocks: int = 64
    app_fsync: bool = True
    app_checksums: bool = True
    # WAL shape.
    txn_rows: int = 3
    snapshot_every: int = 8
    # KV shape.
    kv_keys: int = 48
    flush_every: int = 4
    compact_every: int = 40
    # HPC shape.
    state_blocks: int = 6
    keep_generations: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.app not in APPS:
            raise CampaignError(
                f"app must be one of {'/'.join(APPS)}, got {self.app!r}"
            )
        if self.fault_window_us <= 0:
            raise CampaignError("fault window must be positive")
        if self.journal_blocks <= 0:
            raise CampaignError("journal_blocks must be positive")
        for name in (
            "txn_rows",
            "snapshot_every",
            "kv_keys",
            "flush_every",
            "compact_every",
            "state_blocks",
            "keep_generations",
        ):
            if getattr(self, name) <= 0:
                raise CampaignError(f"{name} must be positive")

    def display_label(self) -> str:
        if self.label:
            return self.label
        device = self.device.name if self.device is not None else "generic"
        fsync = "fsync" if self.app_fsync else "nofsync"
        return f"apps {self.app} {fsync} device={device}"

    def build_app(
        self, rng, run_id: str, recorder: Optional[AppRecorder] = None
    ) -> AppWorkload:
        """A fresh workload model instance for one cycle."""
        if self.app == "wal":
            return WalDatabase(
                rng,
                run_id,
                txn_rows=self.txn_rows,
                snapshot_every=self.snapshot_every,
                fsync_commits=self.app_fsync,
                recorder=recorder,
            )
        if self.app == "kv":
            return KvStore(
                rng,
                run_id,
                kv_keys=self.kv_keys,
                flush_every=self.flush_every,
                compact_every=self.compact_every,
                checksum_records=self.app_checksums,
                fsync_batches=self.app_fsync,
                recorder=recorder,
            )
        return CheckpointLoop(
            rng,
            run_id,
            state_blocks=self.state_blocks,
            keep_generations=self.keep_generations,
            fsync_data=self.app_fsync,
            recorder=recorder,
        )

    def run_shard(self, shard: ShardSpec) -> CampaignResult:
        return run_app_shard(self, shard)


@dataclass
class CycleDebris:
    """Post-cycle wreckage kept for ``--explain`` (never for results)."""

    app: AppWorkload
    audit: SemanticAudit
    fs: Optional[FileSystem]  # the recovery-mounted view (None if mount failed)
    mount_error: str = ""
    fault_time_us: int = 0


def run_app_cycle(
    plan: AppPlan,
    shard_seed: int,
    local_index: int,
    fault_delay: int,
    recorder: Optional[AppRecorder] = None,
) -> Tuple[FaultCycleResult, CycleDebris]:
    """One complete app fault cycle, a pure function of its arguments.

    ``fault_delay`` is the offset past warmup at which power is cut (the
    shard loop draws it from the shard's fault stream; ``--explain``
    replays the same draws to reproduce any one cycle in isolation).
    """
    host = HostSystem(
        config=plan.device,
        seed=derive_shard_seed(shard_seed, local_index + 1),
        max_segment_pages=plan.max_segment_pages,
    )
    host.boot(plan.ready_timeout_us)
    fs = FileSystem(host, journal_blocks=plan.journal_blocks)
    fs.format()

    run_id = f"{shard_seed:x}.{local_index}"
    app = plan.build_app(host.streams.stream("apps-io"), run_id, recorder)
    app.setup(fs)

    fault_at = host.kernel.now + plan.warmup_us + fault_delay
    host.kernel.schedule_at(fault_at, host.cut_power)
    try:
        while True:
            app.step(fs)
    except ReproError:
        if host.kernel.now < fault_at:
            raise  # a real failure before the fault ever fired
    host.wait_until_dead()
    host.run_for(plan.settle_us)
    host.restore_power()
    host.wait_until_ready(plan.ready_timeout_us)

    # The app's recovery sees only what survived on the device: a fresh
    # filesystem object (no volatile state carried over) sharing the CAS.
    recovered: Optional[FileSystem] = FileSystem(
        host, journal_blocks=plan.journal_blocks, cas=fs.cas
    )
    mount_error = ""
    try:
        recovered.mount()
    except FsError as exc:
        mount_error = str(exc)
        audit = SemanticAudit.all_failed(
            app.promises.outstanding(), f"mount failed: {exc}"
        )
        recovered = None
    else:
        audit = audit_app(app, recovered)

    cycle = FaultCycleResult(
        cycle_index=local_index,
        fault_time_us=fault_at,
        requests_completed=app.ops_completed,
        writes_completed=app.promises.acks,
        reads_completed=0,
        data_failures=audit.silent_corruption,
        fwa_failures=audit.committed_loss,
        io_errors=audit.recovery_failed,
        unsafe_shutdowns=1,
        intact_writes=audit.intact,
        topology_recovered=audit.torn_recovered,
        app_promises=audit.promises,
        app_intact=audit.intact,
        app_torn_recovered=audit.torn_recovered,
        app_committed_loss=audit.committed_loss,
        app_silent_corruption=audit.silent_corruption,
        app_recovery_failed=audit.recovery_failed,
    )
    debris = CycleDebris(
        app=app,
        audit=audit,
        fs=recovered,
        mount_error=mount_error,
        fault_time_us=fault_at,
    )
    return cycle, debris


def run_app_shard(plan: AppPlan, shard: ShardSpec) -> CampaignResult:
    """Execute one shard's app fault cycles; the engine's entry point.

    Cycle indices in the result are shard-local;
    :func:`repro.engine.plan.merge_shard_results` renumbers them into one
    campaign-wide sequence.  The fault schedule comes from a dedicated
    per-shard stream, so it is identical across app configurations for a
    given seed (the fsync/no-fsync contrast sees the same fault instants).
    """
    fault_rng = RandomStreams(shard.seed).stream("apps-fault")
    result = CampaignResult(label=plan.shard_label(shard))
    traffic_time = 0
    for local_index in range(shard.faults):
        fault_delay = fault_rng.randrange(plan.fault_window_us)
        cycle, _ = run_app_cycle(plan, shard.seed, local_index, fault_delay)
        result.add_cycle(cycle)
        result.requests_issued += cycle.requests_completed
        traffic_time += plan.warmup_us + fault_delay
    result.traffic_time_us = traffic_time
    return result
