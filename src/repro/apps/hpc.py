"""An HPC checkpoint/restart loop: write-tmp, fsync, rename, retire.

Each generation ``g`` the job serialises its (synthetic) state into
``ckpt.tmp`` — a header block naming the generation, the data block count
and the assembled-state digest, followed by the data blocks — fsyncs it,
then publishes it with an atomic rename to ``ckpt-<g>``.  The rename
return is the ack point: the scheduler is told generation ``g`` is
restartable.  Generations older than ``keep_generations`` are then
deleted and their promises *retracted* — the app deliberately withdrew
them, so the audit no longer holds storage to them.

``fsync_data=False`` models the classic crash-consistency bug this
archetype exists to expose: rename-before-data-reaches-media.  The
rename itself still carries a FLUSH (it is the publish barrier), but the
*next* generation's data rides unflushed until that next rename — so a
fault between renames can tear the newest published checkpoint, which
has no redundant copy and audits as committed loss.

Recovery validates every outstanding generation end to end (header CRC,
run id, per-block CRC and sequence, assembled digest) and restarts from
the newest valid one, exactly like a restart script probing checkpoint
files newest-first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.audit import Observation
from repro.apps.base import (
    AppWorkload,
    Promise,
    canonical_json,
    content_digest,
    record_crc_ok,
    seal_record,
)
from repro.errors import AppAuditError

TMP_FILE = "ckpt.tmp"
CKPT_PREFIX = "ckpt-"


def ckpt_name(generation: int) -> str:
    return f"{CKPT_PREFIX}{generation}"


# -- pure recovery core ----------------------------------------------------------------


def validate_checkpoint(
    records: List[Optional[Dict[str, object]]], run_id: str, generation: int
) -> Optional[str]:
    """End-to-end validation of one checkpoint file.

    Returns the assembled-state digest when the file is exactly a valid
    generation-``generation`` checkpoint, ``None`` otherwise (any damaged
    block, foreign run id, wrong generation, block count mismatch, or
    assembled digest disagreeing with the header).
    """
    if not records:
        return None
    header = records[0]
    if header is None or header.get("a") != "hpchdr" or not record_crc_ok(header):
        return None
    if header.get("run") != run_id or header.get("g") != generation:
        return None
    count = header.get("m")
    if not isinstance(count, int) or count != len(records) - 1:
        return None
    parts: List[str] = []
    for index, record in enumerate(records[1:]):
        if record is None or record.get("a") != "hpcdat" or not record_crc_ok(record):
            return None
        if record.get("run") != run_id or record.get("g") != generation:
            return None
        if record.get("j") != index:
            return None
        parts.append(str(record.get("data", "")))
    digest = content_digest(canonical_json([generation, parts]))
    if header.get("dig") != digest:
        return None
    return digest


def observe_hpc_promises(
    promises: List[Promise], digests: Dict[int, Optional[str]]
) -> Dict[str, Observation]:
    """Pure observation map: each generation stands entirely on its own.

    A checkpoint has no redundant copy, so a generation either validates
    end to end (digest reported, no damage) or it is gone (recovery can
    tell — validation failed — so the loss is detected, never silent).
    """
    observations: Dict[str, Observation] = {}
    for promise in promises:
        generation = int(promise.detail.get("generation", promise.seq))
        digest = digests.get(generation)
        if digest is None:
            observations[promise.pid] = Observation(
                digest=None,
                damaged=True,
                source=f"{ckpt_name(generation)} failed validation",
            )
        else:
            observations[promise.pid] = Observation(
                digest=digest, damaged=False, source=ckpt_name(generation)
            )
    return observations


# -- the workload ----------------------------------------------------------------------


class CheckpointLoop(AppWorkload):
    """The HPC checkpoint/restart model (see module docstring)."""

    name = "hpc"

    def __init__(
        self,
        rng,
        run_id: str,
        *,
        state_blocks: int = 6,
        keep_generations: int = 3,
        fsync_data: bool = True,
        recorder=None,
    ) -> None:
        super().__init__(rng, run_id, recorder)
        if state_blocks <= 0 or keep_generations <= 0:
            raise AppAuditError("state_blocks and keep_generations must be positive")
        self.state_blocks = state_blocks
        self.keep_generations = keep_generations
        self.fsync_data = fsync_data
        self._generation = 0
        self._inflight_rename: Optional[str] = None

    # -- forward path ------------------------------------------------------------------

    def setup(self, fs) -> None:
        pass  # each generation creates its own tmp file

    def step(self, fs) -> None:
        """One generation: tmp, data, header, fsync, rename, ack, retire."""
        generation = self._generation + 1
        parts = [
            bytes(self.rng.getrandbits(8) for _ in range(48)).hex()
            for _ in range(self.state_blocks)
        ]
        digest = content_digest(canonical_json([generation, parts]))
        if fs.exists(TMP_FILE):
            fs.delete(TMP_FILE)
            if self.recorder is not None:
                self.recorder.note_delete(TMP_FILE)
        fs.create(TMP_FILE)
        header = seal_record(
            {
                "a": "hpchdr",
                "run": self.run_id,
                "g": generation,
                "m": self.state_blocks,
                "dig": digest,
            }
        )
        self._write_block(fs, TMP_FILE, 0, header)
        for index, part in enumerate(parts):
            self._write_block(
                fs,
                TMP_FILE,
                1 + index,
                seal_record(
                    {
                        "a": "hpcdat",
                        "run": self.run_id,
                        "g": generation,
                        "j": index,
                        "data": part,
                    }
                ),
            )
        if self.fsync_data:
            fs.fsync(TMP_FILE)
        name = ckpt_name(generation)
        self._inflight_rename = name
        # In the buggy mode the rename is not synced either — a synced
        # rename is a device-wide FLUSH barrier and would make the
        # unfsynced data durable as a side effect, hiding the bug.
        fs.rename(TMP_FILE, name, sync=self.fsync_data)
        self._inflight_rename = None
        if self.recorder is not None:
            self.recorder.note_rename(TMP_FILE, name)
        # Ack point: the scheduler now believes generation g is restartable.
        self._generation = generation
        self.promises.ack(
            Promise(
                pid=f"gen-{generation}",
                kind="checkpoint",
                digest=digest,
                seq=generation,
                detail={"generation": generation, "file": name},
            )
        )
        self.ops_completed += 1
        retire = generation - self.keep_generations
        if retire >= 1:
            stale = ckpt_name(retire)
            if fs.exists(stale):
                fs.delete(stale)
                if self.recorder is not None:
                    self.recorder.note_delete(stale)
            if self.promises.get(f"gen-{retire}") is not None:
                self.promises.retract(f"gen-{retire}")

    # -- recovery path -----------------------------------------------------------------

    def recover(self, fs) -> Dict[str, Observation]:
        files = set(fs.list_files())
        if self._inflight_rename is not None:
            if TMP_FILE in files and self._inflight_rename in files:
                raise AppAuditError(
                    f"rename half-applied: {TMP_FILE} and "
                    f"{self._inflight_rename} both exist after the fault"
                )
        if self._generation and self.fsync_data:
            # Only the safe protocol syncs its renames, so only it may
            # hold storage to the newest published name surviving.
            newest = ckpt_name(self._generation)
            if newest not in files:
                raise AppAuditError(
                    f"synced rename lost: {newest} missing after remount"
                )
        digests: Dict[int, Optional[str]] = {}
        for promise in self.promises.outstanding():
            generation = int(promise.detail.get("generation", promise.seq))
            name = ckpt_name(generation)
            if name in files:
                digests[generation] = validate_checkpoint(
                    self._read_blocks(fs, name), self.run_id, generation
                )
            else:
                digests[generation] = None
        self.restart_generation = max(
            (g for g, d in digests.items() if d is not None), default=0
        )  # explain support
        return observe_hpc_promises(self.promises.outstanding(), digests)
