"""The semantic auditor: from per-IO damage to application verdicts.

After every power cycle the harness remounts the filesystem and runs the
app's *own* recovery path; :func:`classify_promises` then partitions the
promise log into exactly one verdict per acked promise:

=====================  ===========================================================
verdict                meaning
=====================  ===========================================================
``INTACT``             promised content recovered exactly from its primary record
``TORN_RECOVERED``     primary on-disk record damaged, but the app's recovery
                       restored the exact content from a redundant copy
                       (WAL snapshot, compacted segment, older manifest)
``COMMITTED_LOSS``     acked content is gone, and the app can tell (torn tail,
                       failed checksum, missing file)
``SILENT_CORRUPTION``  recovery served *wrong* content with no error — the
                       app-level face of the paper's FWA / serializability
                       failures
``RECOVERY_FAILED``    the recovery path itself failed; every promise of the
                       cycle is orphaned
=====================  ===========================================================

The partition is asserted exact — every outstanding promise classified
once, no observation for a promise that was never made — and any
violation raises :class:`~repro.errors.AppAuditError` rather than being
absorbed into a count.  That assertion *is* the test-archetype contract:
the auditor cannot silently disagree with the oracle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.apps.base import Promise
from repro.errors import AppAuditError, ReproError


class AppVerdict(enum.Enum):
    """Semantic outcome classes for one acked application promise."""

    INTACT = "intact"
    TORN_RECOVERED = "torn_recovered"
    COMMITTED_LOSS = "committed_loss"
    SILENT_CORRUPTION = "silent_corruption"
    RECOVERY_FAILED = "recovery_failed"


@dataclass(frozen=True)
class Observation:
    """What the app's recovery found for one promise.

    ``digest`` is the fingerprint of the content recovery would serve for
    this promise (``None`` when recovery knows the content is gone);
    ``damaged`` is True when recovery *detected* damage to the promise's
    primary record (tear, checksum failure, missing file) — it decides
    between intact/torn-recovered on a digest match and between
    committed-loss/silent-corruption on a mismatch.
    """

    digest: Optional[str]
    damaged: bool = False
    source: str = ""


def classify(promise: Promise, observation: Optional[Observation]):
    """One promise's verdict (and a human-readable reason)."""
    if observation is None or observation.digest is None:
        source = observation.source if observation is not None else "no observation"
        return AppVerdict.COMMITTED_LOSS, f"content gone ({source or 'missing'})"
    if observation.digest == promise.digest:
        if observation.damaged:
            return (
                AppVerdict.TORN_RECOVERED,
                f"primary record damaged, content restored from {observation.source}",
            )
        return AppVerdict.INTACT, f"recovered exactly from {observation.source}"
    if observation.damaged:
        return (
            AppVerdict.COMMITTED_LOSS,
            f"damage detected, stale content from {observation.source}",
        )
    return (
        AppVerdict.SILENT_CORRUPTION,
        f"wrong content served without error from {observation.source}",
    )


@dataclass
class SemanticAudit:
    """The exact verdict partition over one cycle's promise log."""

    verdicts: Dict[str, AppVerdict] = field(default_factory=dict)
    reasons: Dict[str, str] = field(default_factory=dict)
    promises: int = 0

    def _count(self, verdict: AppVerdict) -> int:
        return sum(1 for v in self.verdicts.values() if v is verdict)

    @property
    def intact(self) -> int:
        return self._count(AppVerdict.INTACT)

    @property
    def torn_recovered(self) -> int:
        return self._count(AppVerdict.TORN_RECOVERED)

    @property
    def committed_loss(self) -> int:
        return self._count(AppVerdict.COMMITTED_LOSS)

    @property
    def silent_corruption(self) -> int:
        return self._count(AppVerdict.SILENT_CORRUPTION)

    @property
    def recovery_failed(self) -> int:
        return self._count(AppVerdict.RECOVERY_FAILED)

    def counts(self) -> Dict[str, int]:
        return {
            "promises": self.promises,
            "intact": self.intact,
            "torn_recovered": self.torn_recovered,
            "committed_loss": self.committed_loss,
            "silent_corruption": self.silent_corruption,
            "recovery_failed": self.recovery_failed,
        }

    def assert_exact(self, promises: List[Promise]) -> None:
        """The partition invariant: every promise classified exactly once."""
        pids = [p.pid for p in promises]
        if len(set(pids)) != len(pids):
            raise AppAuditError(f"duplicate promise ids in oracle: {sorted(pids)}")
        if set(self.verdicts) != set(pids):
            missing = sorted(set(pids) - set(self.verdicts))
            extra = sorted(set(self.verdicts) - set(pids))
            raise AppAuditError(
                f"verdict partition not exact: missing={missing} extra={extra}"
            )
        total = sum(self.counts()[v.value] for v in AppVerdict)
        if total != self.promises or self.promises != len(pids):
            raise AppAuditError(
                f"verdict counts {self.counts()} do not sum to {len(pids)} promises"
            )

    @classmethod
    def all_failed(cls, promises: List[Promise], reason: str) -> "SemanticAudit":
        """Every promise orphaned: the recovery path itself failed."""
        audit = cls(promises=len(promises))
        for promise in promises:
            audit.verdicts[promise.pid] = AppVerdict.RECOVERY_FAILED
            audit.reasons[promise.pid] = reason
        audit.assert_exact(promises)
        return audit


def classify_promises(
    promises: List[Promise], observations: Mapping[str, Optional[Observation]]
) -> SemanticAudit:
    """Pure classification of a promise log against recovery observations.

    ``observations`` may omit promises (classified as committed loss) but
    must never contain a pid the oracle does not know — that would mean
    recovery invented a promise, an audit bug worth failing loudly over.
    """
    known = {p.pid for p in promises}
    unknown = sorted(set(observations) - known)
    if unknown:
        raise AppAuditError(f"observations for unknown promises: {unknown}")
    audit = SemanticAudit(promises=len(promises))
    for promise in promises:
        verdict, reason = classify(promise, observations.get(promise.pid))
        audit.verdicts[promise.pid] = verdict
        audit.reasons[promise.pid] = reason
    audit.assert_exact(promises)
    return audit


def audit_app(app, fs) -> SemanticAudit:
    """Run ``app``'s own recovery over a freshly mounted ``fs`` and classify.

    Protocol-invariant violations (:class:`AppAuditError`) propagate — they
    are harness assertions, not storage outcomes.  Any other library error
    out of the recovery path orphans the whole cycle as RECOVERY_FAILED.
    """
    outstanding = app.promises.outstanding()
    try:
        observations = app.recover(fs)
    except AppAuditError:
        raise
    except ReproError as exc:
        return SemanticAudit.all_failed(outstanding, f"recovery failed: {exc}")
    return classify_promises(outstanding, observations)
