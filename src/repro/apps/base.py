"""Shared plumbing for application workload models.

Every app in :mod:`repro.apps` follows the same shape:

- it runs an endless stream of operations against a mounted
  :class:`repro.fs.FileSystem`, persisting self-describing 4 KiB records
  (JSON, zero-padded to one filesystem block);
- the instant an operation is *acknowledged durable by the app's own
  protocol* (fsync returned, rename returned), it records a
  :class:`Promise` — the oracle entry the post-fault audit will hold the
  storage stack to;
- after the power cycle it runs its own recovery path over a freshly
  mounted view and reports one :class:`~repro.apps.audit.Observation` per
  outstanding promise.

The promise log is *writer-side ground truth*: it lives in host memory,
never on the device under test, exactly like the expectation ledgers the
paper's testbed keeps on the workload generator machine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import AppAuditError
from repro.fs.inode import BLOCK


def content_digest(data: bytes) -> str:
    """Short, stable content fingerprint used for promises and records."""
    return hashlib.blake2b(data, digest_size=8).hexdigest()


def canonical_json(obj: object) -> bytes:
    """Canonical JSON encoding (stable across processes and versions)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def seal_record(record: Dict[str, object]) -> Dict[str, object]:
    """Return ``record`` with a ``crc`` field covering every other field."""
    body = {k: v for k, v in record.items() if k != "crc"}
    sealed = dict(body)
    sealed["crc"] = content_digest(canonical_json(body))
    return sealed


def record_crc_ok(record: Mapping[str, object]) -> bool:
    """True when a sealed record's ``crc`` matches its content."""
    crc = record.get("crc")
    if not isinstance(crc, str):
        return False
    body = {k: v for k, v in record.items() if k != "crc"}
    return content_digest(canonical_json(body)) == crc


def pack_record(record: Mapping[str, object]) -> bytes:
    """One record as a full 4 KiB filesystem block (JSON, zero padded)."""
    blob = canonical_json(record)
    if len(blob) > BLOCK:
        raise AppAuditError(f"app record exceeds one block ({len(blob)} bytes)")
    return blob.ljust(BLOCK, b"\0")


def unpack_record(raw: Optional[bytes]) -> Optional[Dict[str, object]]:
    """Decode one block back into a record; ``None`` for damaged blocks."""
    if raw is None:
        return None
    try:
        data = json.loads(raw.rstrip(b"\0").decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return data if isinstance(data, dict) else None


@dataclass(frozen=True)
class Promise:
    """One durability promise the application made to its caller.

    ``digest`` fingerprints the promised content; ``seq`` orders promises
    (txid, put sequence number, checkpoint generation); ``detail`` carries
    writer-side location metadata (file name, block indices) used by the
    audit's damage attribution and by ``--explain``.
    """

    pid: str
    kind: str
    digest: str
    seq: int
    detail: Mapping[str, object] = field(default_factory=dict)


class PromiseLog:
    """The app's oracle: an exact, writer-side log of acked promises.

    ``ack`` records (or supersedes — a KV store re-promising a key) a
    promise; ``retract`` removes one the app deliberately withdrew (an HPC
    loop deleting an expired checkpoint generation).  ``outstanding()`` is
    the set the post-fault audit must partition exactly.
    """

    def __init__(self) -> None:
        self._promises: Dict[str, Promise] = {}
        self.acks = 0
        self.retractions = 0

    def ack(self, promise: Promise) -> None:
        self._promises[promise.pid] = promise
        self.acks += 1

    def retract(self, pid: str) -> None:
        if pid not in self._promises:
            raise AppAuditError(f"retracting unknown promise {pid!r}")
        del self._promises[pid]
        self.retractions += 1

    def outstanding(self) -> List[Promise]:
        """Outstanding promises in ``seq`` order."""
        return sorted(self._promises.values(), key=lambda p: (p.seq, p.pid))

    def get(self, pid: str) -> Optional[Promise]:
        return self._promises.get(pid)

    def __len__(self) -> int:
        return len(self._promises)


class AppRecorder:
    """Optional writer-side capture of every block an app persists.

    Used only by ``repro apps run --explain``: keeping the raw bytes lets
    the report recompute the expected CAS token per device block and render
    per-LBA device verdicts next to the semantic ones.  Recording must
    never influence app behaviour (no RNG draws, no IO).
    """

    def __init__(self) -> None:
        self.blocks: Dict[Tuple[str, int], bytes] = {}

    def note_block(self, file: str, index: int, content: bytes) -> None:
        self.blocks[(file, index)] = content

    def note_rename(self, old: str, new: str) -> None:
        for (file, index), content in list(self.blocks.items()):
            if file == old:
                del self.blocks[(file, index)]
                self.blocks[(new, index)] = content

    def note_delete(self, name: str) -> None:
        for key in [k for k in self.blocks if k[0] == name]:
            del self.blocks[key]


class AppWorkload:
    """Base class for the application models (WAL / KV / HPC).

    Subclasses implement :meth:`setup` (create files, all synced),
    :meth:`step` (one operation batch; record promises only after the
    protocol's own ack point) and :meth:`recover` (the app's genuine
    recovery path over a freshly mounted filesystem, returning one
    observation per outstanding promise).
    """

    name = "app"

    def __init__(self, rng, run_id: str, recorder: Optional[AppRecorder] = None):
        self.rng = rng
        self.run_id = run_id
        self.recorder = recorder
        self.promises = PromiseLog()
        self.ops_completed = 0

    # -- persistence helpers ---------------------------------------------------------

    def _write_block(self, fs, name: str, index: int, record: Mapping[str, object]) -> None:
        packed = pack_record(record)
        fs.write_file(name, packed, offset=index * BLOCK)
        if self.recorder is not None:
            self.recorder.note_block(name, index, packed)

    def _read_blocks(self, fs, name: str) -> List[Optional[Dict[str, object]]]:
        """Per-block prefix read of ``name``; damaged blocks decode to None.

        Apps always write whole blocks, so the file size is a block
        multiple; a single bad block must not make its neighbours
        unreadable (the whole point of per-record recovery).
        """
        from repro.fs import FsCorruption

        size = fs.stat(name).size_bytes
        records: List[Optional[Dict[str, object]]] = []
        for index in range(size // BLOCK):
            try:
                raw = fs.read_file(name, offset=index * BLOCK, length=BLOCK)
            except FsCorruption:
                raw = None
            records.append(unpack_record(raw))
        return records

    # -- protocol hooks ----------------------------------------------------------------

    def setup(self, fs) -> None:
        raise NotImplementedError

    def step(self, fs) -> None:
        raise NotImplementedError

    def recover(self, fs) -> Dict[str, "object"]:
        raise NotImplementedError
