"""The ``repro apps run --explain <cycle>`` mini-report.

Because every app fault cycle is a pure function of ``(shard seed, cycle
index, fault delay)`` — see :func:`repro.apps.plan.run_app_cycle` — any
one cycle of a campaign can be replayed in isolation: locate the shard
that owns the campaign-wide cycle index, re-draw that shard's fault
schedule up to the cycle, and run the single cycle with an
:class:`~repro.apps.base.AppRecorder` attached.  The report then chains
three views of the same fault:

1. the **promise log** — what the app acked, in order;
2. **per-LBA device verdicts** — for every block the app wrote, whether
   the device still holds the expected content token (the recorder keeps
   the writer-side bytes, so the expected token is recomputable);
3. the **semantic verdict chain** — each promise's verdict with its
   reason and the device-level state of the exact blocks it staked its
   durability claim on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.base import AppRecorder, Promise
from repro.apps.kv import SEG_PREFIX, SEG_SUFFIX
from repro.apps.plan import AppPlan, CycleDebris, run_app_cycle
from repro.core.results import FaultCycleResult
from repro.engine.plan import ShardSpec
from repro.errors import CampaignError
from repro.fs import FileNotFound
from repro.rand import RandomStreams


def locate_cycle(plan: AppPlan, cycle_index: int) -> Tuple[ShardSpec, int]:
    """Map a campaign-wide cycle index to ``(shard, shard-local index)``.

    Mirrors :func:`repro.engine.plan.merge_shard_results`, which
    renumbers cycles by concatenating shard results in shard order.
    """
    if cycle_index < 0 or cycle_index >= plan.faults:
        raise CampaignError(
            f"cycle {cycle_index} outside campaign (0..{plan.faults - 1})"
        )
    consumed = 0
    for shard in plan.shards():
        if cycle_index < consumed + shard.faults:
            return shard, cycle_index - consumed
        consumed += shard.faults
    raise CampaignError("shard decomposition does not cover the fault budget")


def replay_fault_delay(plan: AppPlan, shard: ShardSpec, local_index: int) -> int:
    """Re-draw the shard's fault schedule up to ``local_index``.

    Must consume the stream exactly like :func:`repro.apps.plan.run_app_shard`
    does (one draw per cycle, in order) so the replayed cycle sees the
    identical fault instant.
    """
    fault_rng = RandomStreams(shard.seed).stream("apps-fault")
    delay = 0
    for _ in range(local_index + 1):
        delay = fault_rng.randrange(plan.fault_window_us)
    return delay


def _device_verdict(fs, file: str, index: int, expected: bytes) -> Tuple[str, str]:
    """``(lba, verdict)`` for one recorded app block on the recovered view."""
    try:
        inode = fs.stat(file)
    except FileNotFound:
        return "-", "file missing"
    blocks = inode.blocks()
    if index >= len(blocks):
        return "-", "beyond recovered size"
    lba = blocks[index]
    token = fs._read_block_token(lba)
    expected_token = fs.cas.address_of(expected)
    if token == expected_token:
        return str(lba), "match"
    if token is None or fs.cas.bytes_for(token) is None:
        return str(lba), "unreadable (torn/rolled back)"
    return str(lba), "WRONG CONTENT (old/other page)"


def _promise_blocks(promise: Promise) -> List[Tuple[str, int]]:
    """The (file, block-index) locations a promise staked its claim on."""
    detail = promise.detail
    if "blocks" in detail and "file" in detail:
        return [(str(detail["file"]), int(b)) for b in detail["blocks"]]  # wal
    if "seg" in detail and "block" in detail:
        seg = detail["seg"]
        return [(f"{SEG_PREFIX}{seg}{SEG_SUFFIX}", int(detail["block"]))]  # kv
    if "file" in detail:
        return [(str(detail["file"]), -1)]  # hpc: whole file
    return []


def explain_cycle(plan: AppPlan, cycle_index: int) -> str:
    """Replay one cycle with a recorder and render the mini-report."""
    shard, local_index = locate_cycle(plan, cycle_index)
    fault_delay = replay_fault_delay(plan, shard, local_index)
    recorder = AppRecorder()
    cycle, debris = run_app_cycle(
        plan, shard.seed, local_index, fault_delay, recorder=recorder
    )
    return render_report(plan, cycle_index, shard, cycle, debris, recorder)


def render_report(
    plan: AppPlan,
    cycle_index: int,
    shard: ShardSpec,
    cycle: FaultCycleResult,
    debris: CycleDebris,
    recorder: AppRecorder,
) -> str:
    """The three-view report (pure formatting; no further simulation)."""
    app = debris.app
    audit = debris.audit
    lines: List[str] = []
    lines.append(
        f"cycle {cycle_index} of {plan.display_label()} "
        f"(shard {shard.index}, local cycle {local_label(shard, cycle)})"
    )
    lines.append(
        f"power cut at t={debris.fault_time_us} us; "
        f"{app.ops_completed} ops completed, "
        f"{app.promises.acks} acks / {app.promises.retractions} retractions"
    )
    if debris.mount_error:
        lines.append(f"remount FAILED: {debris.mount_error}")
    lines.append("")

    lines.append("promise log (outstanding at the fault, in ack order):")
    for promise in app.promises.outstanding():
        lines.append(
            f"  {promise.pid:<14} {promise.kind:<10} seq={promise.seq:<6} "
            f"digest={promise.digest} {_detail_str(promise)}"
        )
    lines.append("")

    lines.append("device verdicts (every live app block, writer-side expectation):")
    if debris.fs is None:
        lines.append("  (unavailable: remount failed)")
    else:
        for (file, index) in sorted(recorder.blocks):
            lba, verdict = _device_verdict(
                debris.fs, file, index, recorder.blocks[(file, index)]
            )
            lines.append(f"  {file:<16} block {index:<4} lba {lba:<6} {verdict}")
    lines.append("")

    lines.append("semantic verdict chain:")
    for promise in app.promises.outstanding():
        verdict = audit.verdicts.get(promise.pid)
        reason = audit.reasons.get(promise.pid, "")
        name = verdict.value if verdict is not None else "?"
        lines.append(f"  {promise.pid:<14} -> {name:<18} {reason}")
        if debris.fs is not None:
            for file, index in _promise_blocks(promise):
                indices = (
                    [index]
                    if index >= 0
                    else sorted(i for (f, i) in recorder.blocks if f == file)
                )
                for block_index in indices:
                    expected = recorder.blocks.get((file, block_index))
                    if expected is None:
                        continue
                    lba, dverdict = _device_verdict(
                        debris.fs, file, block_index, expected
                    )
                    lines.append(
                        f"      {file} block {block_index} lba {lba}: {dverdict}"
                    )
    lines.append("")

    lines.append("recovery summary:")
    replay = getattr(app, "last_replay", None)
    if replay is not None and hasattr(replay, "tear_index"):  # wal
        tear = "clean" if replay.tear_index is None else f"tear at block {replay.tear_index}"
        lines.append(
            f"  wal redo: {len(replay.committed)} committed txns, {tear}; "
            f"snapshot source: {getattr(app, 'last_snapshot_source', 'n/a')}"
        )
    elif replay is not None and hasattr(replay, "tears"):  # kv
        tears = (
            ", ".join(f"seg {s} @ {i}" for s, i in sorted(replay.tears.items()))
            or "none"
        )
        lines.append(
            f"  kv replay: {replay.records_applied} records over segments "
            f"{getattr(app, 'last_segments', [])} "
            f"(manifest: {getattr(app, 'last_manifest', 'n/a')}); tears: {tears}"
        )
    restart = getattr(app, "restart_generation", None)
    if restart is not None:  # hpc
        lines.append(f"  hpc restart generation: {restart}")
    lines.append(f"  verdict counts: {audit.counts()}")
    return "\n".join(lines)


def local_label(shard: ShardSpec, cycle: FaultCycleResult) -> str:
    return f"{cycle.cycle_index}/{shard.faults}"


def _detail_str(promise: Promise) -> str:
    pairs = ", ".join(f"{k}={v}" for k, v in sorted(promise.detail.items()))
    return f"[{pairs}]" if pairs else ""
