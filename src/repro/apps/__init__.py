"""Application workload models and the semantic-outcome auditor.

The paper measures what power faults do to *devices*; this package
measures what those device outcomes mean to *applications*.  Three
crash-consistency workload models run atop :class:`repro.fs.FileSystem`:

- :class:`~repro.apps.wal.WalDatabase` — a WAL database
  (begin/write/commit with an fsync protocol and redo recovery);
- :class:`~repro.apps.kv.KvStore` — a log-structured KV store
  (append-only segments, compaction, manifest swap via atomic rename);
- :class:`~repro.apps.hpc.CheckpointLoop` — an HPC checkpoint/restart
  loop (write-tmp / fsync / rename generations).

Each maintains a deterministic **oracle**: the exact set of operations
it promised durable (its :class:`~repro.apps.base.PromiseLog`).  After
every power cycle the auditor (:mod:`repro.apps.audit`) remounts, runs
the app's own recovery path, and partitions the promise log *exactly*
into intact / torn-but-recovered / committed-loss / silently-corrupt /
recovery-failed.  :class:`~repro.apps.plan.AppPlan` packages the cycles
as an engine campaign (sharding, jobs, checkpoint/resume, quarantine,
trace all apply unchanged).
"""

from repro.apps.audit import (
    AppVerdict,
    Observation,
    SemanticAudit,
    audit_app,
    classify,
    classify_promises,
)
from repro.apps.base import AppRecorder, AppWorkload, Promise, PromiseLog
from repro.apps.explain import explain_cycle
from repro.apps.hpc import CheckpointLoop
from repro.apps.kv import KvStore
from repro.apps.plan import APPS, AppPlan, CycleDebris, run_app_cycle, run_app_shard
from repro.apps.wal import WalDatabase

__all__ = [
    "APPS",
    "AppPlan",
    "AppRecorder",
    "AppVerdict",
    "AppWorkload",
    "CheckpointLoop",
    "CycleDebris",
    "KvStore",
    "Observation",
    "Promise",
    "PromiseLog",
    "SemanticAudit",
    "WalDatabase",
    "audit_app",
    "classify",
    "classify_promises",
    "explain_cycle",
    "run_app_cycle",
    "run_app_shard",
]
