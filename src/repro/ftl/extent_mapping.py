"""Extent (run-length) mapping for sequential streams.

The paper's §IV-D: "in the workloads with sequential access pattern, FTL
only keeps the first address in the mapping table where such scheme reduces
the amount of table entries but ... may have significant impact on the
failure rate due to power loss (particularly in case of map table failure)".

An extent ``(start_lpn, start_ppa, length)`` maps ``length`` consecutive
logical pages to consecutive physical pages with a single table entry; the
physical contiguity is guaranteed by the FTL's allocator when it detects a
sequential stream.  Losing one extent entry orphans the whole run — the
mechanism behind the ~14 % failure excess of sequential workloads.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import AddressError


@dataclass
class Extent:
    """One mapped run of consecutive logical pages."""

    start_lpn: int
    start_ppa: int
    length: int

    @property
    def end_lpn(self) -> int:
        """First LPN *after* the run."""
        return self.start_lpn + self.length

    def covers(self, lpn: int) -> bool:
        """True when ``lpn`` falls inside the run."""
        return self.start_lpn <= lpn < self.end_lpn

    def translate(self, lpn: int) -> int:
        """PPA for an LPN inside the run."""
        if not self.covers(lpn):
            raise AddressError(f"LPN {lpn} outside extent {self}")
        return self.start_ppa + (lpn - self.start_lpn)

    def lpns(self) -> Iterator[int]:
        """Iterate every LPN in the run."""
        return iter(range(self.start_lpn, self.end_lpn))


class ExtentMap:
    """Sorted, non-overlapping extent table.

    Example
    -------
    >>> m = ExtentMap()
    >>> m.insert(Extent(100, 5000, 8))
    []
    >>> m.lookup(104)
    5004
    >>> m.entry_count()
    1
    """

    def __init__(self) -> None:
        self._starts: List[int] = []  # sorted start_lpns
        self._extents: Dict[int, Extent] = {}  # keyed by start_lpn

    # -- queries --------------------------------------------------------------------

    def _extent_at(self, lpn: int) -> Optional[Extent]:
        idx = bisect.bisect_right(self._starts, lpn) - 1
        if idx < 0:
            return None
        extent = self._extents[self._starts[idx]]
        return extent if extent.covers(lpn) else None

    def lookup(self, lpn: int) -> Optional[int]:
        """PPA for ``lpn`` or None when no extent covers it."""
        if lpn < 0:
            raise AddressError(f"negative LPN {lpn}")
        extent = self._extent_at(lpn)
        return extent.translate(lpn) if extent is not None else None

    def covering_extent(self, lpn: int) -> Optional[Extent]:
        """The extent containing ``lpn``, if any."""
        if lpn < 0:
            raise AddressError(f"negative LPN {lpn}")
        return self._extent_at(lpn)

    def entry_count(self) -> int:
        """Number of table entries (one per run — the space saving of §IV-D)."""
        return len(self._extents)

    def mapped_page_count(self) -> int:
        """Total logical pages covered by all extents."""
        return sum(e.length for e in self._extents.values())

    def extents(self) -> Iterator[Extent]:
        """Iterate extents in LPN order."""
        return iter(self._extents[s] for s in self._starts)

    # -- mutation --------------------------------------------------------------------

    def insert(self, extent: Extent) -> List[Extent]:
        """Insert a run, punching out any overlapped older runs.

        Returns the list of (possibly trimmed) extents that were displaced,
        so the caller can invalidate their physical pages and journal the
        change reversibly.
        """
        if extent.length <= 0:
            raise AddressError("extent length must be positive")
        if extent.start_lpn < 0 or extent.start_ppa < 0:
            raise AddressError("extent addresses must be non-negative")
        displaced = self._punch_hole(extent.start_lpn, extent.end_lpn)
        self._add(extent)
        return displaced

    def try_extend(self, next_lpn: int, next_ppa: int, length: int) -> Optional[Extent]:
        """Grow a run in place when the new pages continue it exactly.

        The FTL calls this for stream appends: if an extent ends at
        ``next_lpn`` *and* its physical run ends at ``next_ppa``, the entry
        absorbs the new pages and no new table entry is created.  Returns the
        grown extent or None if no extension was possible.
        """
        if length <= 0:
            raise AddressError("extension length must be positive")
        idx = bisect.bisect_right(self._starts, next_lpn - 1) - 1
        if idx < 0:
            return None
        extent = self._extents[self._starts[idx]]
        if extent.end_lpn != next_lpn:
            return None
        if extent.start_ppa + extent.length != next_ppa:
            return None
        # The whole extension range must be free of other extents, otherwise
        # growing in place would create overlap; the insert path (which
        # displaces) handles that case instead.
        if idx + 1 < len(self._starts) and self._starts[idx + 1] < next_lpn + length:
            return None
        extent.length += length
        return extent

    def remove(self, start_lpn: int) -> Extent:
        """Remove the extent starting at ``start_lpn`` (used by recovery)."""
        extent = self._extents.pop(start_lpn, None)
        if extent is None:
            raise AddressError(f"no extent starts at LPN {start_lpn}")
        self._starts.remove(start_lpn)
        return extent

    def unmap_range(self, start_lpn: int, end_lpn: int) -> List[Extent]:
        """Remove all mappings in ``[start_lpn, end_lpn)``; returns displaced runs."""
        return self._punch_hole(start_lpn, end_lpn)

    # -- internals --------------------------------------------------------------------

    def _add(self, extent: Extent) -> None:
        if extent.start_lpn in self._extents:
            raise AddressError(f"duplicate extent start {extent.start_lpn}")
        bisect.insort(self._starts, extent.start_lpn)
        self._extents[extent.start_lpn] = extent

    def _punch_hole(self, start: int, end: int) -> List[Extent]:
        """Remove coverage of ``[start, end)``, splitting boundary extents."""
        displaced: List[Extent] = []
        idx = bisect.bisect_right(self._starts, start) - 1
        if idx < 0:
            idx = 0
        while idx < len(self._starts):
            key = self._starts[idx]
            extent = self._extents[key]
            if extent.start_lpn >= end:
                break
            if extent.end_lpn <= start:
                idx += 1
                continue
            # Overlap: remove and re-add the non-overlapping fringes.
            self.remove(key)
            overlap_start = max(extent.start_lpn, start)
            overlap_end = min(extent.end_lpn, end)
            displaced.append(
                Extent(
                    overlap_start,
                    extent.translate(overlap_start),
                    overlap_end - overlap_start,
                )
            )
            if extent.start_lpn < start:
                self._add(
                    Extent(extent.start_lpn, extent.start_ppa, start - extent.start_lpn)
                )
            if extent.end_lpn > end:
                self._add(Extent(end, extent.translate(end), extent.end_lpn - end))
            idx = bisect.bisect_right(self._starts, start) - 1
            if idx < 0:
                idx = 0
        return displaced
