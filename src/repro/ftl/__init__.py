"""Flash Translation Layer substrate.

Implements the FTL functionality the paper's introduction enumerates —
address mapping, garbage collection, and wear levelling — plus the two
pieces its failure analysis hinges on:

- the **mapping table lives in volatile DRAM** and is persisted to flash only
  at journal commits, so a power fault strands the updates made since the
  last commit (§IV-A's post-ACK vulnerability window, §IV-D's map-table
  failure);
- **sequential runs are stored as extents** ("FTL only keeps the first
  address in the mapping table", §IV-D), so losing one table entry takes a
  whole run of data with it.

Public surface: :class:`~repro.ftl.ftl.Ftl`,
:class:`~repro.ftl.mapping.PageMap`, :class:`~repro.ftl.extent_mapping.ExtentMap`,
:class:`~repro.ftl.journal.MapJournal`, :class:`~repro.ftl.gc.GarbageCollector`,
:class:`~repro.ftl.wear.WearLeveler`, :class:`~repro.ftl.recovery.RecoveryEngine`.
"""

from repro.ftl.extent_mapping import Extent, ExtentMap
from repro.ftl.ftl import Ftl, FtlConfig
from repro.ftl.gc import GarbageCollector
from repro.ftl.journal import MapJournal, MapUpdate
from repro.ftl.mapping import PageMap
from repro.ftl.recovery import RecoveryEngine, RecoveryReport
from repro.ftl.wear import WearLeveler

__all__ = [
    "Extent",
    "ExtentMap",
    "Ftl",
    "FtlConfig",
    "GarbageCollector",
    "MapJournal",
    "MapUpdate",
    "PageMap",
    "RecoveryEngine",
    "RecoveryReport",
    "WearLeveler",
]
