"""The FTL facade: allocation, translation, journaling, GC, and recovery.

Write path (driven by the device's cache flusher):

1. :meth:`Ftl.prepare_write` allocates physical pages for a run of LPNs,
   keeping sequential streams physically contiguous (so they can live in the
   extent table) and random traffic in its own open block.
2. The flusher models the batch latency, then calls :meth:`Ftl.commit_write`
   with the rail voltage each page committed at; the FTL programs the chip,
   updates the RAM map, journals the update, and invalidates displaced pages.
3. On power loss the flusher never calls ``commit_write`` for the pages that
   were still in flight; their allocated pages are simply burned (the
   allocator's cursor never revisits a page before its block is erased).

Translation precedence: the page map and extent map are kept disjoint (each
bind punches a hole in the other), so lookup order is irrelevant.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AddressError, ConfigurationError, RecoveryError
from repro.ftl.extent_mapping import Extent, ExtentMap
from repro.ftl.gc import GarbageCollector
from repro.ftl.journal import MapJournal, MapUpdate
from repro.ftl.mapping import PageMap
from repro.ftl.recovery import RecoveryEngine, RecoveryReport
from repro.ftl.wear import WearLeveler
from repro.nand.chip import FlashChip, PageState
from repro.sim.kernel import Kernel
from repro.units import MSEC

TOKEN_JOURNAL = 0
"""Reserved token value marking FTL metadata pages."""

STREAM_RANDOM = "random"
STREAM_SEQUENTIAL = "sequential"
STREAM_META = "meta"


@dataclass(frozen=True)
class FtlConfig:
    """Behavioural knobs of the FTL.

    Attributes
    ----------
    mapping_policy:
        ``"page"`` — always page-granular entries; ``"extent"`` — every
        contiguous write becomes a run entry; ``"auto"`` — detect sequential
        streams (a write starting exactly where the previous one ended) and
        store those as extents, everything else page-granular.
    journal_commit_interval_us:
        Volatile-map staleness bound; calibrated to the paper's ~700 ms
        post-ACK failure window (§IV-A).
    page_recovery_prob / extent_recovery_prob:
        OOB-scan success probabilities used by recovery (see
        :mod:`repro.ftl.recovery`).
    journal_entries_per_page:
        Map updates serialised into one flash page at commit time.
    gc_low_watermark / gc_high_watermark:
        Free-block thresholds for the collector.
    gc_commit_on_relocate:
        When ``True``, the collector forces a map-journal commit after
        relocating a victim block's valid pages and *before* erasing the
        block, closing the window in which a power fault strands volatile
        relocation updates whose rollback targets point into the erased
        block (flushed data lost despite a durable-looking write).  Off by
        default: the paper's §IV stranded-update statistics — and the
        calibrated tests built on them — assume the commit cadence is the
        periodic timer alone.
    """

    mapping_policy: str = "auto"
    journal_commit_interval_us: int = 700 * MSEC
    page_recovery_prob: float = 0.985
    extent_recovery_prob: float = 0.962
    journal_entries_per_page: int = 512
    gc_low_watermark: int = 4
    gc_high_watermark: int = 8
    gc_commit_on_relocate: bool = False

    def __post_init__(self) -> None:
        if self.mapping_policy not in ("page", "extent", "auto"):
            raise ConfigurationError(f"unknown mapping policy {self.mapping_policy!r}")
        if self.journal_commit_interval_us <= 0:
            raise ConfigurationError("journal interval must be positive")
        if self.journal_entries_per_page <= 0:
            raise ConfigurationError("journal entries per page must be positive")


@dataclass
class WritePlan:
    """Physical placement for one batch of logical pages.

    ``assignments`` preserves input order: ``(lpn, ppa)`` per page.
    ``stream`` records which open block family served the allocation.
    """

    assignments: List[Tuple[int, int]]
    stream: str

    @property
    def page_count(self) -> int:
        """Pages in the batch."""
        return len(self.assignments)


class Ftl:
    """Flash Translation Layer over one :class:`~repro.nand.chip.FlashChip`.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> from repro.nand import FlashChip, NandGeometry
    >>> from random import Random
    >>> k = Kernel()
    >>> chip = FlashChip(k, NandGeometry(blocks_per_plane=16), rng=Random(0))
    >>> ftl = Ftl(k, chip, FtlConfig(), Random(1))
    >>> plan = ftl.prepare_write([7, 8], STREAM_RANDOM)
    >>> ftl.commit_write(plan, tokens=[101, 102])
    >>> ftl.read(7).token
    101
    """

    def __init__(
        self,
        kernel: Kernel,
        chip: FlashChip,
        config: FtlConfig,
        rng: Random,
    ) -> None:
        self.kernel = kernel
        self.chip = chip
        self.config = config
        self.rng = rng
        self.page_map = PageMap()
        self.extent_map = ExtentMap()
        self.journal = MapJournal(
            kernel,
            config.journal_commit_interval_us,
            on_commit=self._write_journal_pages,
        )
        self.wear = WearLeveler(chip.geometry.blocks)
        self.wear.free_blocks(range(chip.geometry.blocks))
        self.gc = GarbageCollector(
            self, config.gc_low_watermark, config.gc_high_watermark
        )
        self.recovery = RecoveryEngine(
            self, rng, config.page_recovery_prob, config.extent_recovery_prob
        )
        self.valid_counts: Dict[int, int] = {}
        self._ppa_owner: Dict[int, int] = {}
        self._open: Dict[str, Tuple[int, int]] = {}  # stream -> (block, next page)
        self._last_seq_end: Optional[int] = None
        self._growing_extent: Optional[Extent] = None
        # Background flash work (journal writes, GC copies) owed to the
        # device's time budget, in microseconds.
        self.pending_background_us = 0
        # Statistics.
        self.host_pages_written = 0
        self.journal_pages_written = 0

    def start(self) -> None:
        """Arm the periodic journal commit timer."""
        self.journal.start()

    # ------------------------------------------------------------------ allocation --

    def open_blocks(self) -> List[int]:
        """Blocks currently open for appending (excluded from GC)."""
        return [block for block, _ in self._open.values()]

    def _open_new_block(self, stream: str) -> Tuple[int, int]:
        if self.gc.needed():
            self.gc.run()
        if self.wear.free_count == 0:
            self.gc.run()
            if self.wear.free_count == 0:
                raise AddressError("flash array is full (GC found nothing to reclaim)")
        block = self.wear.take_freest()
        state = (block, 0)
        self._open[stream] = state
        self.valid_counts.setdefault(block, 0)
        return state

    def _allocate_run(self, count: int, stream: str) -> List[int]:
        """Allocate ``count`` pages; contiguous within each block."""
        geometry = self.chip.geometry
        ppas: List[int] = []
        remaining = count
        while remaining > 0:
            block, cursor = self._open.get(stream) or self._open_new_block(stream)
            if cursor >= geometry.pages_per_block:
                block, cursor = self._open_new_block(stream)
            take = min(remaining, geometry.pages_per_block - cursor)
            base = geometry.first_page_of_block(block) + cursor
            ppas.extend(range(base, base + take))
            self._open[stream] = (block, cursor + take)
            remaining -= take
        return ppas

    # ------------------------------------------------------------------ write path --

    def classify_stream(self, start_lpn: int, length: int) -> str:
        """Decide which open-block family a write belongs to."""
        if self.config.mapping_policy == "page":
            return STREAM_RANDOM
        if self.config.mapping_policy == "extent":
            return STREAM_SEQUENTIAL
        if self._last_seq_end is not None and start_lpn == self._last_seq_end:
            return STREAM_SEQUENTIAL
        return STREAM_RANDOM

    def prepare_write(self, lpns: Sequence[int], stream: Optional[str] = None) -> WritePlan:
        """Allocate physical pages for ``lpns`` (in order)."""
        if not lpns:
            raise AddressError("empty write")
        if any(lpn < 0 for lpn in lpns):
            raise AddressError("negative LPN in write")
        if stream is None:
            contiguous = all(b == a + 1 for a, b in zip(lpns, lpns[1:]))
            stream = (
                self.classify_stream(lpns[0], len(lpns))
                if contiguous
                else STREAM_RANDOM
            )
        ppas = self._allocate_run(len(lpns), stream)
        return WritePlan(assignments=list(zip(lpns, ppas)), stream=stream)

    def commit_write(
        self,
        plan: WritePlan,
        tokens: Sequence[int],
        volts: Optional[Sequence[float]] = None,
    ) -> None:
        """Program the chip and publish the new translations.

        ``volts`` optionally gives the rail voltage at each page's true
        commit instant (see :meth:`FlashChip.commit_program_now`).
        """
        if len(tokens) != plan.page_count:
            raise AddressError("token count does not match plan")
        self.commit_write_slice(plan, tokens, 0, plan.page_count, volts)

    def commit_write_slice(
        self,
        plan: WritePlan,
        tokens: Sequence[int],
        start: int,
        stop: int,
        volts: Optional[Sequence[float]] = None,
    ) -> None:
        """Commit pages ``start:stop`` of a plan (partial batch at power loss)."""
        if not 0 <= start <= stop <= plan.page_count:
            raise AddressError("bad plan slice")
        if stop == start:
            return
        committed = plan.assignments[start:stop]
        self.chip.program_pages(
            [ppa for _, ppa in committed],
            tokens[start:stop],
            None if volts is None else volts[start:stop],
        )
        block_of = self.chip.geometry.block_of
        valid_counts = self.valid_counts
        owner = self._ppa_owner
        for lpn, ppa in committed:
            block = block_of(ppa)
            valid_counts[block] = valid_counts.get(block, 0) + 1
            owner[ppa] = lpn
        self.host_pages_written += len(committed)
        self._publish_mapping(plan, start, stop)

    def _publish_mapping(self, plan: WritePlan, start: int, stop: int) -> None:
        """Update RAM map + journal for committed pages of the plan."""
        committed = plan.assignments[start:stop]
        sequential_physical = all(
            (b_lpn == a_lpn + 1 and b_ppa == a_ppa + 1)
            for (a_lpn, a_ppa), (b_lpn, b_ppa) in zip(committed, committed[1:])
        )
        use_extent = (
            plan.stream == STREAM_SEQUENTIAL
            and sequential_physical
            and len(committed) > 0
        )
        if use_extent:
            self._publish_extent(committed)
        else:
            self._publish_pages(committed)
        if plan.stream == STREAM_SEQUENTIAL and committed:
            self._last_seq_end = committed[-1][0] + 1
        elif committed:
            self._last_seq_end = (
                committed[-1][0] + 1
            )  # random writes can still seed a stream

    def _publish_pages(self, committed: List[Tuple[int, int]]) -> None:
        now = self.kernel.now
        old_bindings: Dict[int, Optional[int]] = {}
        lpns: List[int] = []
        for lpn, ppa in committed:
            displaced_extents = self.extent_map.unmap_range(lpn, lpn + 1)
            old: Optional[int] = None
            if displaced_extents:
                old = displaced_extents[0].start_ppa
                self._invalidate_ppa_range(displaced_extents)
            page_old = self.page_map.bind(lpn, ppa)
            if page_old is not None:
                old = page_old
                self._invalidate(page_old)
            old_bindings[lpn] = old
            lpns.append(lpn)
        self.journal.record(
            MapUpdate(kind="page", time_us=now, lpns=lpns, old_bindings=old_bindings)
        )

    def _publish_extent(self, committed: List[Tuple[int, int]]) -> None:
        now = self.kernel.now
        start_lpn, start_ppa = committed[0]
        length = len(committed)
        old_bindings: Dict[int, Optional[int]] = {}
        for lpn, _ in committed:
            page_old = self.page_map.unbind(lpn)
            if page_old is not None:
                old_bindings[lpn] = page_old
                self._invalidate(page_old)
        grown = self.extent_map.try_extend(start_lpn, start_ppa, length)
        if grown is None:
            displaced = self.extent_map.insert(Extent(start_lpn, start_ppa, length))
            self._invalidate_ppa_range(displaced)
            for run in displaced:
                for offset, lpn in enumerate(run.lpns()):
                    old_bindings.setdefault(lpn, run.start_ppa + offset)
            entry_start = start_lpn
            self._growing_extent = self.extent_map.covering_extent(start_lpn)
        else:
            entry_start = grown.start_lpn
        self.journal.record(
            MapUpdate(
                kind="extent",
                time_us=now,
                lpns=[lpn for lpn, _ in committed],
                old_bindings=old_bindings,
                extent_start=entry_start,
            )
        )

    def _invalidate(self, ppa: int) -> None:
        block = self.chip.geometry.block_of(ppa)
        count = self.valid_counts.get(block, 0)
        if count > 0:
            self.valid_counts[block] = count - 1
        self._ppa_owner.pop(ppa, None)

    def _invalidate_ppa_range(self, extents: List[Extent]) -> None:
        for run in extents:
            for offset in range(run.length):
                self._invalidate(run.start_ppa + offset)

    # ------------------------------------------------------------------ trim path --

    def trim_range(self, start_lpn: int, count: int) -> int:
        """Unmap a logical range (TRIM/discard).  Returns pages unmapped.

        The unmapping is a *map mutation like any other*: it lives in DRAM
        until the journal commits, so a power fault can roll a trim back —
        the "trimmed data comes back" anomaly observed on real drives.
        """
        if start_lpn < 0 or count <= 0:
            raise AddressError("bad trim range")
        now = self.kernel.now
        old_bindings: Dict[int, Optional[int]] = {}
        lpns: List[int] = []
        displaced = self.extent_map.unmap_range(start_lpn, start_lpn + count)
        for run in displaced:
            for offset, lpn in enumerate(run.lpns()):
                old_bindings[lpn] = run.start_ppa + offset
                lpns.append(lpn)
        self._invalidate_ppa_range(displaced)
        for lpn in range(start_lpn, start_lpn + count):
            old = self.page_map.unbind(lpn)
            if old is not None:
                old_bindings[lpn] = old
                lpns.append(lpn)
                self._invalidate(old)
        if lpns:
            self.journal.record(
                MapUpdate(kind="trim", time_us=now, lpns=lpns, old_bindings=old_bindings)
            )
        return len(lpns)

    # ------------------------------------------------------------------ read path --

    def lookup(self, lpn: int) -> Optional[int]:
        """Current translation for ``lpn`` (page map and extent map are disjoint)."""
        ppa = self.page_map.lookup(lpn)
        if ppa is not None:
            return ppa
        return self.extent_map.lookup(lpn)

    def read(self, lpn: int):
        """Read the data mapped at ``lpn``; unmapped LPNs read as erased."""
        ppa = self.lookup(lpn)
        if ppa is None:
            from repro.nand.chip import ReadResult

            return ReadResult(-1, PageState.ERASED, None, correctable=True)
        return self.chip.read_page(ppa)

    # ------------------------------------------------------------------ journal IO --

    def _write_journal_pages(self, batch: List[MapUpdate]) -> None:
        entries = sum(max(1, update.page_count) for update in batch)
        pages = -(-entries // self.config.journal_entries_per_page)
        ppas = self._allocate_run(pages, STREAM_META)
        self.chip.program_pages(ppas, [TOKEN_JOURNAL] * len(ppas))
        block_of = self.chip.geometry.block_of
        for ppa in ppas:
            block = block_of(ppa)
            self.valid_counts[block] = self.valid_counts.get(block, 0) + 1
        self.journal_pages_written += len(ppas)
        write_cost = pages * self.chip.timing.page_write_us(
            self.chip.cell, self.chip.geometry.page_size
        )
        self.pending_background_us += write_cost

    def checkpoint(self) -> None:
        """Commit the journal immediately (barrier / recovery checkpoint)."""
        self.journal.commit()

    def consume_background_us(self) -> int:
        """Hand the accumulated background flash time to the caller."""
        owed, self.pending_background_us = self.pending_background_us, 0
        return owed

    # ------------------------------------------------------------------ GC plumbing --

    def relocate_block(self, block: int) -> int:
        """Move every still-valid page out of ``block``.  Returns pages moved."""
        geometry = self.chip.geometry
        moved = 0
        for ppa in geometry.iter_block_pages(block):
            lpn = self._ppa_owner.get(ppa)
            if lpn is None:
                continue
            if self.lookup(lpn) != ppa:
                self._ppa_owner.pop(ppa, None)
                continue
            result = self.chip.read_page(ppa)
            if not result.ok:
                # Data unrecoverable; drop the translation (reads as erased).
                self._drop_mapping(lpn)
                self._invalidate(ppa)
                continue
            plan = self.prepare_write([lpn], STREAM_RANDOM)
            self.commit_write(plan, tokens=[result.token])
            moved += 1
            self.pending_background_us += self.chip.timing.page_read_us(
                geometry.page_size
            ) + self.chip.timing.page_write_us(self.chip.cell, geometry.page_size)
        return moved

    def _drop_mapping(self, lpn: int) -> None:
        old = self.page_map.unbind(lpn)
        if old is None:
            displaced = self.extent_map.unmap_range(lpn, lpn + 1)
            if displaced:
                old = displaced[0].start_ppa
        self.journal.record(
            MapUpdate(
                kind="page",
                time_us=self.kernel.now,
                lpns=[lpn],
                old_bindings={lpn: old},
            )
        )

    def erase_and_free(self, block: int) -> None:
        """Erase a reclaimed block and return it to the allocator pool."""
        self.chip.erase_block_now(block)
        self.wear.note_erase(block)
        self.valid_counts[block] = 0
        self.wear.free_block(block)
        self.pending_background_us += self.chip.timing.erase_us

    # ------------------------------------------------------------------ power events --

    def power_loss(self) -> None:
        """Volatile state freezes; the journal timer stops."""
        self.journal.stop()
        self._growing_extent = None
        self._last_seq_end = None
        # Open blocks are abandoned: their unwritten tail pages may hold
        # partial charge, so the allocator must not append to them again.
        self._open.clear()

    def power_on_recover(self) -> RecoveryReport:
        """Rebuild the map after an unclean shutdown."""
        if not self.chip.powered:
            raise RecoveryError("chip must be powered before FTL recovery")
        report = self.recovery.recover()
        self.journal.start()
        return report

    # ------------------------------------------------------------------ statistics --

    def map_entry_count(self) -> int:
        """Total translation-table entries (page entries + extent entries)."""
        return self.page_map.entry_count() + self.extent_map.entry_count()

    def stats(self) -> dict:
        """Counters snapshot for reports."""
        return {
            "host_pages_written": self.host_pages_written,
            "journal_pages_written": self.journal_pages_written,
            "page_map_entries": self.page_map.entry_count(),
            "extent_entries": self.extent_map.entry_count(),
            "free_blocks": self.wear.free_count,
            "gc": self.gc.stats(),
            "wear_spread": self.wear.wear_spread(),
        }
