"""Garbage collection.

Log-structured writing never updates in place, so overwritten pages leave
stale copies behind; when the free-block pool runs low the collector picks
the emptiest victim blocks, relocates their still-valid pages, and erases
them.  The collector charges its relocation traffic through the same FTL
write path as host data, so a GC burst competes for the flash array exactly
as it would in a real drive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ftl.ftl import Ftl


class GarbageCollector:
    """Greedy (min-valid-pages) victim selection with a watermark trigger.

    Parameters
    ----------
    ftl:
        The owning FTL (provides valid counts, relocation, and erase).
    low_watermark:
        GC starts when the free pool drops below this many blocks.
    high_watermark:
        GC stops once the free pool recovers to this level.
    """

    def __init__(self, ftl: "Ftl", low_watermark: int = 4, high_watermark: int = 8) -> None:
        if low_watermark < 1 or high_watermark <= low_watermark:
            raise ConfigurationError("watermarks must satisfy 1 <= low < high")
        self.ftl = ftl
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        # Statistics.
        self.collections = 0
        self.pages_relocated = 0
        self.blocks_reclaimed = 0

    def needed(self) -> bool:
        """True when the free pool is below the low watermark."""
        return self.ftl.wear.free_count < self.low_watermark

    def select_victim(self) -> Optional[int]:
        """The in-use block with the fewest valid pages (cheapest to reclaim)."""
        best_block: Optional[int] = None
        best_valid: Optional[int] = None
        for block, valid in self.ftl.valid_counts.items():
            if self.ftl.wear.is_free(block) or block in self.ftl.open_blocks():
                continue
            if best_valid is None or valid < best_valid:
                best_block, best_valid = block, valid
        return best_block

    def run(self) -> int:
        """Collect until the high watermark is met.  Returns blocks reclaimed.

        Synchronous state-wise; the caller is responsible for charging the
        simulated latency (the FTL returns the microsecond cost).
        """
        reclaimed = 0
        while self.ftl.wear.free_count < self.high_watermark:
            victim = self.select_victim()
            if victim is None:
                break
            self.collections += 1
            moved = self.ftl.relocate_block(victim)
            self.pages_relocated += moved
            if self.ftl.config.gc_commit_on_relocate:
                # Make the relocation bindings durable before the only other
                # copy of the data is erased.  Without this barrier a power
                # fault between the erase and the next periodic commit rolls
                # the map back to bindings inside the erased block — flushed
                # data is lost (the ROADMAP's known FTL durability hole).
                self.ftl.checkpoint()
            self.ftl.erase_and_free(victim)
            self.blocks_reclaimed += 1
            reclaimed += 1
        return reclaimed

    def stats(self) -> dict:
        """Counters snapshot for reports."""
        return {
            "collections": self.collections,
            "pages_relocated": self.pages_relocated,
            "blocks_reclaimed": self.blocks_reclaimed,
        }
