"""Page-level logical-to-physical mapping table.

The straightforward fine-grained map: one entry per 4 KiB logical page.
Random-write workloads exercise this table; the sequential-run variant is in
:mod:`repro.ftl.extent_mapping`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import AddressError


class PageMap:
    """Sparse LPN -> PPA dictionary with explicit old-value reporting.

    ``bind`` returns the displaced PPA (if any) so the caller can journal the
    update reversibly and decrement the victim block's valid-page count.

    Example
    -------
    >>> m = PageMap()
    >>> m.bind(10, 500) is None
    True
    >>> m.bind(10, 600)
    500
    >>> m.lookup(10)
    600
    """

    def __init__(self) -> None:
        self._table: Dict[int, int] = {}

    def lookup(self, lpn: int) -> Optional[int]:
        """PPA currently bound to ``lpn`` or None when unmapped."""
        if lpn < 0:
            raise AddressError(f"negative LPN {lpn}")
        return self._table.get(lpn)

    def bind(self, lpn: int, ppa: int) -> Optional[int]:
        """Map ``lpn`` to ``ppa``; returns the displaced PPA, if any."""
        if lpn < 0:
            raise AddressError(f"negative LPN {lpn}")
        if ppa < 0:
            raise AddressError(f"negative PPA {ppa}")
        old = self._table.get(lpn)
        self._table[lpn] = ppa
        return old

    def unbind(self, lpn: int) -> Optional[int]:
        """Remove the mapping for ``lpn``; returns the displaced PPA."""
        if lpn < 0:
            raise AddressError(f"negative LPN {lpn}")
        return self._table.pop(lpn, None)

    def restore(self, lpn: int, old_ppa: Optional[int]) -> None:
        """Put back a journal-recorded previous state (None means unmapped)."""
        if old_ppa is None:
            self._table.pop(lpn, None)
        else:
            self._table[lpn] = old_ppa

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._table

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(lpn, ppa)`` pairs (snapshot order not guaranteed)."""
        return iter(self._table.items())

    def entry_count(self) -> int:
        """Number of live entries (table footprint — WSS scales this,
        which is exactly the parameter Fig. 6 shows does *not* drive failures)."""
        return len(self._table)
