"""Mapping-table journal.

The FTL's RAM-resident map is persisted to flash at *commit* points (every
``commit_interval_us`` or on an explicit barrier).  Map updates made after
the last commit exist only in volatile DRAM; a power fault puts them at the
mercy of the recovery engine's out-of-band scan.  The commit interval is
therefore the single most important calibration constant in the model: it
bounds the post-ACK window in which the paper observed completed, ACKed
writes being corrupted (~700 ms, §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Event, Kernel


@dataclass
class MapUpdate:
    """One reversible mapping-table mutation awaiting a journal commit.

    ``kind`` is "page" for single-LPN bindings or "extent" for run insertions.
    ``old_bindings`` maps each touched LPN to its previous PPA (None when the
    LPN was unmapped before) so recovery can roll the update back if the
    out-of-band scan fails to reconstruct it.
    """

    kind: str
    time_us: int
    lpns: List[int]
    old_bindings: Dict[int, Optional[int]] = field(default_factory=dict)
    extent_start: Optional[int] = None

    @property
    def page_count(self) -> int:
        """Logical pages whose translation this update carries."""
        return len(self.lpns)


class MapJournal:
    """Accumulates map updates and commits them to flash periodically.

    Parameters
    ----------
    kernel:
        Simulation kernel (for the periodic commit timer).
    commit_interval_us:
        Budgeted gap between commits.  The real firmware piggybacks commits
        on idle time and cache flush barriers; a fixed interval reproduces
        the same *bounded staleness* behaviour.
    on_commit:
        Callback receiving the list of updates being made durable; the FTL
        uses it to charge the flash programs the journal write costs.
    """

    def __init__(
        self,
        kernel: Kernel,
        commit_interval_us: int,
        on_commit: Optional[Callable[[List[MapUpdate]], None]] = None,
    ) -> None:
        if commit_interval_us <= 0:
            raise ConfigurationError("journal commit interval must be positive")
        self.kernel = kernel
        self.commit_interval_us = commit_interval_us
        self.on_commit = on_commit
        self._pending: List[MapUpdate] = []
        self._timer: Optional[Event] = None
        self._running = False
        # Statistics.
        self.commits = 0
        self.updates_committed = 0
        self.updates_recorded = 0

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        """Enable the commit cycle.

        The deadline timer is armed lazily — only while updates are pending —
        so an idle device schedules no events (important for simulations that
        run the kernel to quiescence).  The staleness bound is unchanged: the
        oldest volatile update is never older than ``commit_interval_us``.
        """
        if self._running:
            return
        self._running = True
        if self._pending:
            self._arm_timer()

    def stop(self) -> None:
        """Halt the commit cycle (power loss); pending updates stay stranded."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm_timer(self) -> None:
        if self._timer is None:
            self._timer = self.kernel.schedule(self.commit_interval_us, self._timer_fired)

    def _timer_fired(self) -> None:
        self._timer = None
        if not self._running:
            return
        self.commit()

    # -- recording --------------------------------------------------------------------

    def record(self, update: MapUpdate) -> None:
        """Note a map mutation that has happened in RAM but not on flash."""
        self._pending.append(update)
        self.updates_recorded += 1
        if self._running:
            self._arm_timer()

    def commit(self) -> int:
        """Make all pending updates durable.  Returns the number committed."""
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        self.commits += 1
        self.updates_committed += len(batch)
        if self.on_commit is not None:
            self.on_commit(batch)
        return len(batch)

    # -- power-fault interface -----------------------------------------------------------

    def stranded_updates(self) -> List[MapUpdate]:
        """Updates that were still volatile when power collapsed."""
        return list(self._pending)

    def clear_stranded(self) -> None:
        """Forget stranded updates after recovery has resolved them."""
        self._pending.clear()

    @property
    def pending_count(self) -> int:
        """Updates awaiting the next commit."""
        return len(self._pending)

    def oldest_pending_age_us(self, now: int) -> Optional[int]:
        """Age of the oldest uncommitted update (None when drained).

        This is the quantity bounded by ``commit_interval_us`` and measured
        by the paper's §IV-A experiment (failures up to ~700 ms after ACK).
        """
        if not self._pending:
            return None
        return now - self._pending[0].time_us
