"""Wear levelling.

Tracks per-block erase counts and steers allocation toward the least-worn
free blocks.  Wear is not a failure mechanism in the paper's experiments
(campaigns are far too short to wear anything out), but the FTL the paper
describes implements it, downstream users expect it, and the allocator needs
*some* policy — so it is a real component with its own statistics.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError


class WearLeveler:
    """Erase-count accounting plus a min-wear free-block pool.

    Example
    -------
    >>> wl = WearLeveler(block_count=4)
    >>> wl.free_blocks(range(4))
    >>> wl.note_erase(1), wl.note_erase(1)
    (1, 2)
    >>> wl.take_freest()   # every block still has zero *recorded* wear
    0
    """

    def __init__(self, block_count: int) -> None:
        if block_count <= 0:
            raise ConfigurationError("block count must be positive")
        self.block_count = block_count
        self.erase_counts: Dict[int, int] = {}
        self._free_heap: List[Tuple[int, int]] = []  # (erase_count, block)
        self._free_set: set = set()

    def _check(self, block: int) -> None:
        if not 0 <= block < self.block_count:
            raise ConfigurationError(f"block {block} out of range")

    # -- erase accounting ---------------------------------------------------------------

    def note_erase(self, block: int) -> int:
        """Record one erase of ``block``; returns its new count."""
        self._check(block)
        count = self.erase_counts.get(block, 0) + 1
        self.erase_counts[block] = count
        return count

    def erases_of(self, block: int) -> int:
        """Lifetime erase count of ``block``."""
        self._check(block)
        return self.erase_counts.get(block, 0)

    # -- free pool ------------------------------------------------------------------------

    def free_block(self, block: int) -> None:
        """Return an erased block to the allocatable pool."""
        self._check(block)
        if block in self._free_set:
            raise ConfigurationError(f"block {block} freed twice")
        self._free_set.add(block)
        heapq.heappush(self._free_heap, (self.erases_of(block), block))

    def free_blocks(self, blocks: Iterable[int]) -> None:
        """Bulk :meth:`free_block`."""
        for block in blocks:
            self.free_block(block)

    def take_freest(self) -> int:
        """Pop the least-worn free block (ties broken by lowest index)."""
        while self._free_heap:
            _, block = heapq.heappop(self._free_heap)
            if block in self._free_set:
                self._free_set.remove(block)
                return block
        raise ConfigurationError("no free blocks available")

    @property
    def free_count(self) -> int:
        """Blocks currently in the free pool."""
        return len(self._free_set)

    def is_free(self, block: int) -> bool:
        """True when ``block`` sits in the free pool."""
        return block in self._free_set

    # -- statistics -------------------------------------------------------------------------

    def wear_spread(self) -> int:
        """Max-minus-min erase count over all blocks (0 = perfectly level)."""
        if not self.erase_counts:
            return 0
        counts = [self.erase_counts.get(b, 0) for b in range(self.block_count)]
        return max(counts) - min(counts)

    def total_erases(self) -> int:
        """Sum of all erase operations ever performed."""
        return sum(self.erase_counts.values())
