"""Power-on recovery of the mapping table.

After an unclean power loss the FTL reloads the last journal commit and then
scans block out-of-band (OOB) areas trying to reconstruct the mapping
updates that were still volatile.  Real controllers differ wildly in how
well this works — the paper (and Zheng et al. before it) observed that many
devices silently lose some of these updates, which the host perceives as
*False Write-Acknowledge* (old data intact at the address) or as data
failures.

The model draws one Bernoulli per stranded update group:

- **page-map updates** are independent entries; each is reconstructed with
  probability ``page_recovery_prob``;
- **extent updates sharing one table entry live or die together** — a
  sequential run is a single DRAM object, so if the scan cannot rebuild it,
  *every* page the run gained since the last commit is lost at once.  This
  is the amplification behind §IV-D's ~14 % sequential excess.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Dict, List

from repro.errors import ConfigurationError
from repro.ftl.journal import MapUpdate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ftl.ftl import Ftl


@dataclass
class RecoveryReport:
    """Outcome of one power-on recovery pass.

    ``pass_index`` counts completed recoveries on this engine (1-based);
    ``resumed_after_interrupt`` is True when at least one earlier attempt
    was cut short by another power loss before this pass could apply — the
    double-fault-during-recovery scenario the stress harness exercises.
    """

    stranded_updates: int = 0
    recovered_updates: int = 0
    lost_updates: int = 0
    lost_lpns: List[int] = field(default_factory=list)
    lost_extent_runs: int = 0
    pass_index: int = 0
    resumed_after_interrupt: bool = False

    @property
    def lost_page_count(self) -> int:
        """Logical pages whose latest translation was lost."""
        return len(self.lost_lpns)


class RecoveryEngine:
    """Replays the journal and arbitrates stranded updates.

    Example
    -------
    The engine is exercised through :meth:`repro.ftl.ftl.Ftl.power_on_recover`;
    see the FTL tests for end-to-end scenarios.
    """

    def __init__(
        self,
        ftl: "Ftl",
        rng: Random,
        page_recovery_prob: float,
        extent_recovery_prob: float,
    ) -> None:
        for name, value in (
            ("page_recovery_prob", page_recovery_prob),
            ("extent_recovery_prob", extent_recovery_prob),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be a probability")
        self.ftl = ftl
        self.rng = rng
        self.page_recovery_prob = page_recovery_prob
        self.extent_recovery_prob = extent_recovery_prob
        self.passes_completed = 0
        self.interruptions = 0
        self._interrupted_since_last_pass = 0

    def note_interrupted(self) -> None:
        """Record a recovery attempt cut short by another power loss.

        Nothing is rolled back or cleared: the scan had not applied yet, so
        the stranded updates remain journaled on media and the next
        :meth:`recover` sees exactly the same population (rebuilt from
        media, with fresh per-update draws).
        """
        self.interruptions += 1
        self._interrupted_since_last_pass += 1

    def recover(self) -> RecoveryReport:
        """Resolve every stranded update; returns what was lost.

        Updates are processed newest-first so that rolling one back restores
        the state the *previous* stranded update left (matching how an OOB
        scan walks write order).
        """
        stranded = self.ftl.journal.stranded_updates()
        self.passes_completed += 1
        report = RecoveryReport(
            stranded_updates=len(stranded),
            pass_index=self.passes_completed,
            resumed_after_interrupt=self._interrupted_since_last_pass > 0,
        )
        self._interrupted_since_last_pass = 0

        # Extent updates sharing a table entry share one fate.
        extent_fate: Dict[int, bool] = {}
        for update in stranded:
            if update.kind == "extent" and update.extent_start is not None:
                if update.extent_start not in extent_fate:
                    extent_fate[update.extent_start] = (
                        self.rng.random() < self.extent_recovery_prob
                    )

        lost_runs: set = set()
        for update in reversed(stranded):
            if update.kind == "extent":
                survived = extent_fate.get(update.extent_start, True)
                if not survived:
                    lost_runs.add(update.extent_start)
            else:
                survived = self.rng.random() < self.page_recovery_prob
            if survived:
                report.recovered_updates += 1
                continue
            report.lost_updates += 1
            self._rollback(update)
            report.lost_lpns.extend(update.lpns)
        report.lost_extent_runs = len(lost_runs)

        self.ftl.journal.clear_stranded()
        # The recovered state is checkpointed before the device goes ready.
        self.ftl.checkpoint()
        return report

    def _rollback(self, update: MapUpdate) -> None:
        """Return the mapping of every LPN in ``update`` to its prior state."""
        if update.kind == "extent":
            if update.lpns:
                self.ftl.extent_map.unmap_range(min(update.lpns), max(update.lpns) + 1)
        for lpn in update.lpns:
            old = update.old_bindings.get(lpn)
            if update.kind == "extent":
                # The page map may hold the pre-extent binding.
                if old is not None:
                    self.ftl.page_map.restore(lpn, old)
            else:
                self.ftl.page_map.restore(lpn, old)
