"""Unit helpers and constants used across the repro package.

The discrete-event kernel keeps time as an integer number of **microseconds**
so event ordering is exact (no floating-point tie ambiguity).  All byte sizes
are plain integers of bytes.  This module centralises the conversion helpers
so magic numbers never appear inline in device models.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Time units (the simulation clock is an ``int`` count of microseconds).
# --------------------------------------------------------------------------

USEC = 1
MSEC = 1_000 * USEC
SEC = 1_000 * MSEC
MINUTE = 60 * SEC


def usec(value: float) -> int:
    """Convert a value expressed in microseconds to clock ticks."""
    return round(value)


def msec(value: float) -> int:
    """Convert a value expressed in milliseconds to clock ticks."""
    return round(value * MSEC)


def sec(value: float) -> int:
    """Convert a value expressed in seconds to clock ticks."""
    return round(value * SEC)


def to_msec(ticks: int) -> float:
    """Convert clock ticks back to (float) milliseconds."""
    return ticks / MSEC


def to_sec(ticks: int) -> float:
    """Convert clock ticks back to (float) seconds."""
    return ticks / SEC


# --------------------------------------------------------------------------
# Byte sizes.  Sizes follow IEC binary prefixes; the paper writes "4KB" and
# "1MB" meaning 4 KiB and 1 MiB (block-device convention).
# --------------------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def kib(value: float) -> int:
    """Convert a value expressed in KiB to bytes."""
    return round(value * KIB)


def mib(value: float) -> int:
    """Convert a value expressed in MiB to bytes."""
    return round(value * MIB)


def gib(value: float) -> int:
    """Convert a value expressed in GiB to bytes."""
    return round(value * GIB)


def to_kib(nbytes: int) -> float:
    """Convert bytes back to (float) KiB."""
    return nbytes / KIB


def to_mib(nbytes: int) -> float:
    """Convert bytes back to (float) MiB."""
    return nbytes / MIB


def to_gib(nbytes: int) -> float:
    """Convert bytes back to (float) GiB."""
    return nbytes / GIB


# --------------------------------------------------------------------------
# Block-device constants.
# --------------------------------------------------------------------------

SECTOR = 512
"""Size of a logical sector in bytes (SATA convention)."""

PAGE_4K = 4 * KIB
"""The flash page / logical page size used throughout the device models."""


def sectors(nbytes: int) -> int:
    """Number of 512-byte sectors covering ``nbytes`` (must be aligned)."""
    if nbytes % SECTOR:
        raise ValueError(f"size {nbytes} is not sector aligned")
    return nbytes // SECTOR


def align_up(value: int, granule: int) -> int:
    """Round ``value`` up to the next multiple of ``granule``."""
    if granule <= 0:
        raise ValueError("granule must be positive")
    return -(-value // granule) * granule


def align_down(value: int, granule: int) -> int:
    """Round ``value`` down to the previous multiple of ``granule``."""
    if granule <= 0:
        raise ValueError("granule must be positive")
    return (value // granule) * granule


def pages_in(nbytes: int, page_size: int = PAGE_4K) -> int:
    """Number of ``page_size`` pages needed to hold ``nbytes``."""
    if nbytes < 0:
        raise ValueError("size must be non-negative")
    return -(-nbytes // page_size)


# --------------------------------------------------------------------------
# Electrical units (volts are plain floats; these are documentation aliases).
# --------------------------------------------------------------------------

VOLT = 1.0
ATX_5V_RAIL = 5.0
"""Nominal output of the ATX 5 V rail that powers a SATA SSD."""

SSD_DETACH_VOLTAGE = 4.5
"""Host-visible detach threshold measured by the paper (Fig. 4b)."""
