"""Seeded random-stream management.

Every stochastic component of the testbed (workload generator, fault
scheduler, NAND corruption model, ...) draws from its own named child stream
so that experiments are reproducible and adding randomness to one component
does not perturb the draws seen by another.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator


class RandomStreams:
    """A tree of named, independently-seeded ``random.Random`` streams.

    Child streams are derived deterministically from the root seed and the
    stream name, so ``RandomStreams(42).stream("nand")`` always yields the
    same sequence regardless of which other streams exist or the order in
    which they were created.

    Example
    -------
    >>> streams = RandomStreams(seed=7)
    >>> a = streams.stream("workload")
    >>> b = streams.stream("faults")
    >>> a is streams.stream("workload")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) child stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        child = random.Random(self._derive(name))
        self._streams[name] = child
        return child

    def fork(self, name: str) -> "RandomStreams":
        """Derive an independent sub-tree of streams (for nested components)."""
        return RandomStreams(self._derive(name))

    def _derive(self, name: str) -> int:
        # Stable across processes: hash() is salted, so use a simple FNV-1a
        # over the name mixed with the root seed instead.
        acc = 0xCBF29CE484222325 ^ (self.seed & 0xFFFFFFFFFFFFFFFF)
        for byte in name.encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))


def exponential_interarrival(rng: random.Random, rate_per_sec: float) -> float:
    """Draw one exponential inter-arrival gap (in seconds) for a Poisson flow.

    Used by the IO generator when a target IOPS is requested (paper Fig. 8).
    """
    if rate_per_sec <= 0:
        raise ValueError("rate must be positive")
    return rng.expovariate(rate_per_sec)


def uniform_int(rng: random.Random, low: int, high: int, step: int = 1) -> int:
    """Uniform integer in ``[low, high]`` restricted to multiples of ``step``.

    The paper draws request sizes "between 4KB and 1MB"; block sizes must be
    sector aligned, hence the ``step`` parameter.
    """
    if low > high:
        raise ValueError("low must not exceed high")
    if step <= 0:
        raise ValueError("step must be positive")
    slots = (high - low) // step
    return low + step * rng.randint(0, slots)
