"""NAND array geometry and physical address arithmetic.

A physical page address (PPA) is a dense integer enumerating pages in
``channel -> die -> plane -> block -> page`` order; the helpers here convert
between the dense form and the structured tuple form and derive capacity
figures used for device presets (Table I drives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.units import KIB


@dataclass(frozen=True)
class PhysicalPageAddress:
    """Structured form of a physical page address."""

    channel: int
    die: int
    plane: int
    block: int
    page: int


@dataclass(frozen=True)
class NandGeometry:
    """Shape of the flash array.

    Defaults give a 16-die, 4-channel array of 2 MiB blocks totalling 128 GiB
    — a plausible client-SATA layout circa the paper's drives (Table I,
    120-256 GB).

    Example
    -------
    >>> geo = NandGeometry()
    >>> geo.capacity_bytes // (1024 ** 3)
    128
    >>> ppa = geo.encode(PhysicalPageAddress(1, 0, 0, 5, 17))
    >>> geo.decode(ppa).block
    5
    """

    channels: int = 4
    dies_per_channel: int = 4
    planes_per_die: int = 2
    blocks_per_plane: int = 2048
    pages_per_block: int = 512
    page_size: int = 4 * KIB

    def __post_init__(self) -> None:
        for field_name in (
            "channels",
            "dies_per_channel",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{field_name} must be positive")
        if self.page_size % 512:
            raise ConfigurationError("page_size must be a multiple of 512")

    # -- derived sizes -------------------------------------------------------------

    @property
    def dies(self) -> int:
        """Total die count across all channels."""
        return self.channels * self.dies_per_channel

    @property
    def planes(self) -> int:
        """Total plane count."""
        return self.dies * self.planes_per_die

    @property
    def blocks(self) -> int:
        """Total block count."""
        return self.planes * self.blocks_per_plane

    @property
    def total_pages(self) -> int:
        """Total physical page count."""
        return self.blocks * self.pages_per_block

    @property
    def block_size(self) -> int:
        """Bytes per erase block."""
        return self.pages_per_block * self.page_size

    @property
    def capacity_bytes(self) -> int:
        """Raw array capacity in bytes."""
        return self.total_pages * self.page_size

    # -- address math ----------------------------------------------------------------

    def encode(self, addr: PhysicalPageAddress) -> int:
        """Dense PPA for a structured address."""
        self._check(addr)
        ppa = addr.channel
        ppa = ppa * self.dies_per_channel + addr.die
        ppa = ppa * self.planes_per_die + addr.plane
        ppa = ppa * self.blocks_per_plane + addr.block
        ppa = ppa * self.pages_per_block + addr.page
        return ppa

    def decode(self, ppa: int) -> PhysicalPageAddress:
        """Structured address for a dense PPA."""
        if not 0 <= ppa < self.total_pages:
            raise ConfigurationError(f"PPA {ppa} out of range")
        ppa, page = divmod(ppa, self.pages_per_block)
        ppa, block = divmod(ppa, self.blocks_per_plane)
        ppa, plane = divmod(ppa, self.planes_per_die)
        channel, die = divmod(ppa, self.dies_per_channel)
        return PhysicalPageAddress(channel, die, plane, block, page)

    def block_of(self, ppa: int) -> int:
        """Dense block index containing ``ppa``."""
        if not 0 <= ppa < self.total_pages:
            raise ConfigurationError(f"PPA {ppa} out of range")
        return ppa // self.pages_per_block

    def page_in_block(self, ppa: int) -> int:
        """Page offset of ``ppa`` within its block."""
        if not 0 <= ppa < self.total_pages:
            raise ConfigurationError(f"PPA {ppa} out of range")
        return ppa % self.pages_per_block

    def first_page_of_block(self, block: int) -> int:
        """Dense PPA of page 0 of dense block index ``block``."""
        if not 0 <= block < self.blocks:
            raise ConfigurationError(f"block {block} out of range")
        return block * self.pages_per_block

    def channel_of(self, ppa: int) -> int:
        """Channel index owning ``ppa``."""
        return self.decode(ppa).channel

    def die_of(self, ppa: int) -> int:
        """Dense die index (across channels) owning ``ppa``."""
        addr = self.decode(ppa)
        return addr.channel * self.dies_per_channel + addr.die

    def iter_block_pages(self, block: int) -> Iterator[int]:
        """Iterate dense PPAs of every page in dense block ``block``."""
        start = self.first_page_of_block(block)
        return iter(range(start, start + self.pages_per_block))

    def _check(self, addr: PhysicalPageAddress) -> None:
        if not (
            0 <= addr.channel < self.channels
            and 0 <= addr.die < self.dies_per_channel
            and 0 <= addr.plane < self.planes_per_die
            and 0 <= addr.block < self.blocks_per_plane
            and 0 <= addr.page < self.pages_per_block
        ):
            raise ConfigurationError(f"address {addr} outside geometry")

    @classmethod
    def for_capacity(cls, capacity_bytes: int, **overrides) -> "NandGeometry":
        """Geometry sized (by scaling block count) to at least ``capacity_bytes``.

        Used by the Table I device presets (120 GB vs 256 GB drives).
        """
        base = cls(**overrides)
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        per_plane_block_bytes = base.block_size
        planes = base.planes
        blocks_per_plane = -(-capacity_bytes // (per_plane_block_bytes * planes))
        return cls(
            channels=base.channels,
            dies_per_channel=base.dies_per_channel,
            planes_per_die=base.planes_per_die,
            blocks_per_plane=max(blocks_per_plane, 8),
            pages_per_block=base.pages_per_block,
            page_size=base.page_size,
        )
