"""Error-correcting-code models.

Table I of the paper distinguishes drives by ECC: the MLC drives (A, C) use
conventional (BCH-style) codes while the TLC drive (B) uses LDPC.  For the
failure statistics only one property matters: **how many raw bit errors per
page the decoder can remove**.  We model a scheme as a correction budget in
bits per page; a page whose stored raw-bit-error count exceeds the budget is
uncorrectable (the host sees a read failure / garbage, i.e. a data failure).

Raw-bit-error counts are attached to pages at *program commit* time by
:class:`~repro.nand.corruption.CorruptionModel`, so reads are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EccScheme:
    """A per-page correction budget.

    ``read_retry_factor`` models the firmware's re-read escalation: when the
    first decode fails, the controller re-centres its read references onto
    the actual (shifted) threshold distributions and tries again, which
    reduces the raw error count by roughly this factor.  The default (1.0)
    means no retry; the calibrated value for retry-capable controllers
    (~0.45) comes from :mod:`repro.nand.threshold`'s optimal-reference gain.

    Example
    -------
    >>> EccScheme.bch().can_correct(40)
    True
    >>> EccScheme.bch().can_correct(100)
    False
    >>> EccScheme.ldpc().can_correct(100)
    True
    """

    name: str
    correctable_bits_per_page: int
    read_retry_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.correctable_bits_per_page < 0:
            raise ConfigurationError("correction budget must be non-negative")
        if not self.name:
            raise ConfigurationError("ECC scheme needs a name")
        if not 0.0 < self.read_retry_factor <= 1.0:
            raise ConfigurationError("read retry factor must be in (0, 1]")

    def can_correct(self, raw_error_bits: int) -> bool:
        """True when a page with ``raw_error_bits`` decodes cleanly
        (first-pass read, factory references)."""
        if raw_error_bits < 0:
            raise ConfigurationError("raw error count must be non-negative")
        return raw_error_bits <= self.correctable_bits_per_page

    def can_correct_with_retry(self, raw_error_bits: int) -> bool:
        """True when the page decodes after the read-retry escalation."""
        if self.can_correct(raw_error_bits):
            return True
        if self.read_retry_factor >= 1.0:
            return False
        effective = round(raw_error_bits * self.read_retry_factor)
        return effective <= self.correctable_bits_per_page

    def margin(self, raw_error_bits: int) -> int:
        """Remaining budget (negative when uncorrectable)."""
        return self.correctable_bits_per_page - raw_error_bits

    # -- presets matching Table I -----------------------------------------------------

    @classmethod
    def bch(cls) -> "EccScheme":
        """BCH-class budget typical of the paper's MLC drives (A, C)."""
        return cls(name="BCH", correctable_bits_per_page=60)

    @classmethod
    def ldpc(cls) -> "EccScheme":
        """LDPC budget of the TLC drive (B): ~2x the BCH correction power,
        with soft-read retry (LDPC decoders re-read at shifted references
        for soft information)."""
        return cls(name="LDPC", correctable_bits_per_page=130, read_retry_factor=0.45)

    @classmethod
    def none(cls) -> "EccScheme":
        """No correction at all (chip-level experiments, Tseng et al.)."""
        return cls(name="none", correctable_bits_per_page=0)
